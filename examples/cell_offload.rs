//! Targeting the IBM Cell B.E. — the heterogeneous architecture the paper's
//! introduction leads with. An expert registers a `CellSDK` task variant, the
//! same annotated program maps onto the 8 SPE workers, and the compilation
//! plan switches to `xlc`/`gcc-spu`, all driven by swapping the PDL
//! descriptor.
//!
//! Run with: `cargo run --example cell_offload`

use cascabel::codegen::ProblemSpec;
use cascabel::driver::Cascabel;
use cascabel::repository::{ImplOrigin, TaskImpl};
use hetero_rt::data::AccessMode;
use hetero_rt::prelude::*;
use simhw::machine::SimMachine;

const ANNOTATED_SOURCE: &str = r#"
#pragma cascabel task : x86 : I_filter : filter_serial : (X: readwrite)
void filter(double *X) { for (int i = 0; i < N; i++) X[i] = X[i] * 0.5 + 1.0; }

#pragma cascabel execute I_filter : spes (X:BLOCK:N)
filter(X);
"#;

fn main() {
    let platform = pdl_discover::synthetic::cell_be();
    println!("=== target platform ===\n{platform}");

    let mut cc = Cascabel::with_empty_repository(platform.clone());

    // Expert programmer contributes the SPE implementation (Figure 1 role).
    cc.repository_mut()
        .register_expert(
            "I_filter",
            TaskImpl {
                name: "filter_spe".into(),
                target_platforms: vec!["CellSDK".into()],
                params: vec![("X".to_string(), AccessMode::ReadWrite)],
                source: "/* SPE-intrinsics filter kernel, DMA via EIB */".into(),
                origin: ImplOrigin::Repository,
                speedup: 1.0,
            },
        )
        .expect("fresh repository");

    let mut spec = ProblemSpec::with_size("N", 1 << 20);
    spec.flops_hints.insert("I_filter".into(), 2e9);
    let result = cc.compile(ANNOTATED_SOURCE, &spec).expect("compiles");

    println!("=== pre-selection on the Cell ===");
    for sel in &result.selections {
        for d in &sel.decisions {
            println!(
                "  {}::{} -> {}",
                sel.interface,
                d.implementation,
                if d.kept {
                    format!("kept (PUs: {})", d.eligible_pus.join(", "))
                } else {
                    format!("pruned ({})", d.reason.as_deref().unwrap_or("?"))
                }
            );
        }
    }

    println!("\n=== compilation plan (from PDL COMPILER properties) ===");
    print!("{}", result.plan);

    // Execute in virtual time on the simulated Cell.
    let machine = SimMachine::from_platform(&platform);
    let report = simulate(
        &result.output.graph,
        &machine,
        &mut EagerScheduler,
        &SimOptions::default(),
    )
    .expect("runnable");
    println!(
        "\nsimulated on the Cell: {:.3} ms across {} SPE(s)",
        report.makespan.seconds() * 1e3,
        report
            .assignments
            .iter()
            .map(|(_, d)| d.0)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    );
    println!("{}", report.gantt(60));
}
