//! Dynamic resource tracking — the paper's future-work scenario: "tracking
//! dynamically changing system resources via platform descriptors". A
//! monitoring loop takes platform snapshots, diffs them, and re-plans the
//! running workload on the changed machine.
//!
//! Run with: `cargo run --example dynamic_tracking`

use hetero_rt::prelude::*;
use pdl_core::platform::Platform;
use pdl_discover::synthetic::{build_testbed, TestbedOptions};
use pdl_query::diff::diff;
use simhw::machine::SimMachine;

fn plan(platform: &Platform) -> (f64, usize) {
    let machine = SimMachine::from_platform(platform);
    let graph = kernels::graphs::dgemm_graph(8192, 1024, None);
    let report = simulate(&graph, &machine, &mut HeftScheduler, &SimOptions::default())
        .expect("dgemm always has a CPU fall-back");
    (report.makespan.seconds(), machine.len())
}

fn main() {
    // t0: the full testbed — both GPUs healthy.
    let snapshots: Vec<(&str, Platform)> = vec![
        (
            "t0: both GPUs online",
            build_testbed(
                "testbed",
                &TestbedOptions {
                    cpu_cores: 8,
                    gpus: vec!["GeForce GTX 480", "GeForce GTX 285"],
                    dedicate_driver_cores: true,
                    nvlink_gpus: false,
                },
            ),
        ),
        (
            "t1: GTX 285 taken offline (thermal event)",
            build_testbed(
                "testbed",
                &TestbedOptions {
                    cpu_cores: 8,
                    gpus: vec!["GeForce GTX 480"],
                    dedicate_driver_cores: true,
                    nvlink_gpus: false,
                },
            ),
        ),
        (
            "t2: all accelerators gone — CPU-only degraded mode",
            build_testbed(
                "testbed",
                &TestbedOptions {
                    cpu_cores: 8,
                    gpus: vec![],
                    dedicate_driver_cores: true,
                    nvlink_gpus: false,
                },
            ),
        ),
    ];

    let mut previous: Option<&Platform> = None;
    let mut baseline = None;
    for (label, snapshot) in &snapshots {
        println!("=== {label} ===");
        if let Some(prev) = previous {
            let changes = diff(prev, snapshot);
            println!("descriptor changes since last snapshot:");
            for c in &changes {
                println!("  {c}");
            }
        }
        let (makespan, devices) = plan(snapshot);
        let base = *baseline.get_or_insert(makespan);
        println!(
            "replanned DGEMM 8192: {makespan:.3}s on {devices} devices ({:.2}x of t0)\n",
            makespan / base
        );
        previous = Some(snapshot);
    }

    println!(
        "The scheduler never saw hardware APIs — every replanning decision\n\
         came from the updated PDL descriptor alone."
    );
}
