/* expect[platform=xeon-x5550-8core]: C005 */
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite)
void fa(double *X) { }
#pragma cascabel execute I_a : @bogus (X:BLOCK:N)
fa(X);
