/* expect: C001 */
#pragma cascabel execute I_nope : (A:BLOCK:N)
f(A);
