/* expect: C004 */
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite, Y: read)
void fa(double *X) { }
