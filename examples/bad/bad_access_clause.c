/* expect: C010 */
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite) : access(in: Z)
void fa(double *X) { }
