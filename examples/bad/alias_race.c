/* expect: C008 */
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite, Y: read)
void fa(double *X, double *Y) { }
#pragma cascabel execute I_a : (X:BLOCK:N, Y:BLOCK:N)
fa(A, A);
