/* expect[platform=xeon-x5550-8core]: C006 C007 */
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite)
void fa(double *X) { }
#pragma cascabel task : Cuda : I_a : a02 : (X: readwrite)
void fa_gpu(double *X) { }
#pragma cascabel execute I_a : gpus (X:BLOCK:N)
fa(X);
