/* expect: C009 */
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite) : access(out: X)
void fa(double *X) { }
#pragma cascabel task : x86 : I_b : b01 : (X: readwrite) : access(out: X)
void fb(double *X) { }
#pragma cascabel execute I_a : (X:BLOCK:N)
fa(A);
#pragma cascabel execute I_b : (X:BLOCK:N)
fb(A);
