/* expect: C002 */
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite)
void fa(double *X) { }
#pragma cascabel task : x86 : I_b : b01 : (X: readwrite)
void fb(double *X) { }
#pragma cascabel execute I_b : (X:BLOCK:N)
fa(X);
