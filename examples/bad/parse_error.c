/* expect: C100 */
#pragma cascabel task : : :
