/* Annotated tiled DGEMM: the Figure 5 input program. */
#include <cblas.h>

#pragma cascabel task : x86 : I_dgemm : dgemm_serial : (A: read, B: read, C: readwrite)
void my_dgemm(double *A, double *B, double *C) { }

#pragma cascabel execute I_dgemm : (A:BLOCK:N, B:BLOCK:N, C:BLOCK:N)
my_dgemm(A, B, C);
