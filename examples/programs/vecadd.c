/* Annotated vector-add: one input-program variant for I_vecadd. */
#pragma cascabel task : x86 : I_vecadd : vecadd01 : (A: readwrite, B: read) : access(inout: A, in: B)
void vector_add(double *A, double *B) { }

#pragma cascabel execute I_vecadd : (A:BLOCK:N, B:BLOCK:N)
vector_add(A, B);
