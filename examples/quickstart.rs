//! Quickstart: author a platform description (the paper's Listing 1),
//! serialize it to PDL XML, read it back, and query it.
//!
//! Run with: `cargo run --example quickstart`

use pdl_core::prelude::*;
use pdl_query::{detected_patterns, query, route};

fn main() {
    // --- 1. Author the Listing-1 platform: x86 Master + GPU Worker. ------
    let mut b = Platform::builder("gpgpu-node");
    let master = b.master("0");
    b.prop(master, Property::fixed(wellknown::ARCHITECTURE, "x86"));
    let worker = b.worker(master, "1").expect("masters control workers");
    b.prop(worker, Property::fixed(wellknown::ARCHITECTURE, "gpu"));
    b.prop(
        worker,
        Property::typed(
            "DEVICE_NAME",
            PropertyValue::text("GeForce GTX 480"),
            SubschemaRef::new("ocl", "oclDevicePropertyType"),
        ),
    );
    b.group(worker, "gpus");
    b.interconnect(
        Interconnect::new("rDMA", "0", "1").with_descriptor(
            Descriptor::new()
                .with(Property::fixed(wellknown::BANDWIDTH, "6").with_unit(Unit::GigaBytePerSec))
                .with(Property::fixed(wellknown::LATENCY, "15").with_unit(Unit::MicroSecond)),
        ),
    );
    let platform = b.build().expect("structurally valid");

    println!("=== The platform, as a tree ===\n{platform}");

    // --- 2. Serialize to PDL XML and round-trip. --------------------------
    let xml = pdl_xml::to_xml(&platform);
    println!("=== PDL XML ===\n{xml}");
    let read_back = pdl_xml::from_xml(&xml).expect("our own output re-parses");
    assert_eq!(read_back, platform);
    println!("round-trip: OK\n");

    // --- 3. Query it. ------------------------------------------------------
    let gpus = query(&platform, "//Worker[@ARCHITECTURE='gpu']").unwrap();
    println!(
        "selector //Worker[@ARCHITECTURE='gpu'] -> {:?}",
        gpus.iter()
            .map(|&i| platform.pu(i).id.to_string())
            .collect::<Vec<_>>()
    );

    println!("detected patterns: {:?}", detected_patterns(&platform));

    // Data path derivation over the explicit interconnect (paper §IV-C):
    let r = route(&platform, "0", "1", 512e6).expect("rDMA link routes");
    println!(
        "transfer 512 MB host->gpu: {:.1} ms over {} hop(s), bottleneck {:.0} GB/s",
        r.time_s * 1e3,
        r.hops.len(),
        r.bottleneck_bps / 1e9
    );
}
