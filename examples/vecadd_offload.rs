//! The paper's §IV-A running example: an annotated vecadd, translated by
//! Cascabel against a GPU platform descriptor, then (a) simulated on the
//! PDL-derived machine and (b) actually executed with real data through the
//! threaded engine to verify functional correctness.
//!
//! Run with: `cargo run --example vecadd_offload`

use cascabel::codegen::ProblemSpec;
use cascabel::driver::Cascabel;
use hetero_rt::prelude::*;
use kernels::vecadd::{block_ranges, vecadd_chunk};
use parking_lot::Mutex;
use simhw::machine::SimMachine;
use std::sync::Arc;

/// Verbatim structure of the paper's task definition/execution listings.
const ANNOTATED_SOURCE: &str = r#"
// Task definition
#pragma cascabel task : x86 : I_vecadd : vecadd01 : (A: readwrite, B: read)
void vector_add(double *A, double *B) { for (int i = 0; i < N; i++) A[i] += B[i]; };

// Task execution
#pragma cascabel execute I_vecadd : gpus (A:BLOCK:N, B:BLOCK:N)
vector_add(A, B);
"#;

const N: usize = 1 << 22; // 4M doubles

fn main() {
    // --- Translate against the 2-GPU testbed PDL. --------------------------
    let platform = pdl_discover::synthetic::xeon_2gpu_testbed();
    let mut cc = Cascabel::new(platform.clone());
    let result = cc
        .compile(ANNOTATED_SOURCE, &ProblemSpec::with_size("N", N))
        .expect("translation succeeds");

    println!("=== Cascabel translation ===");
    for m in &result.output.mappings {
        println!(
            "call of {} (group {:?}) mapped to PUs {:?} using variants {:?}",
            m.interface, m.execution_group, m.target_pus, m.usable_variants
        );
    }
    println!("\n=== Generated host program (excerpt) ===");
    for line in result.output.main_source.lines().take(12) {
        println!("  {line}");
    }

    // --- Simulate on the PDL-derived machine. ------------------------------
    let machine = SimMachine::from_platform(&platform);
    let report = simulate(
        &result.output.graph,
        &machine,
        &mut HeftScheduler,
        &SimOptions::default(),
    )
    .expect("graph is runnable");
    println!(
        "\nsimulated: {} tasks in {:.3} ms on {:?}",
        result.output.graph.len(),
        report.makespan.seconds() * 1e3,
        platform.name,
    );
    println!("{}", report.gantt(60));

    // --- Execute for real on the work-stealing threaded engine. ------------
    // The execution groups Cascabel mapped become thread placement: the
    // "gpus" logic group of the PDL gets its own dedicated workers, and the
    // vecadd chunks are pinned to them.
    let placement = cascabel::mapping::thread_placement(&result.output.mappings, &platform)
        .expect("mapped groups resolve");
    println!("\nthread placement from PDL logic groups: {placement:?}");

    let a: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new((0..N).map(|i| i as f64).collect()));
    let b: Arc<Vec<f64>> = Arc::new((0..N).map(|i| (2 * i) as f64).collect());

    let group = result.output.mappings[0].execution_group.clone();
    let chunks = result.output.graph.len();
    let tasks: Vec<ThreadTask> = block_ranges(N, chunks)
        .into_iter()
        .enumerate()
        .map(|(idx, (lo, hi))| {
            let a = a.clone();
            let b = b.clone();
            ThreadTask::new(format!("vecadd[{idx}]"), move || {
                vecadd_chunk(&mut a.lock(), &b, lo, hi);
            })
            .in_group(group.clone())
        })
        .collect();

    let exec = ThreadedExecutor::with_placement(placement)
        .run(tasks)
        .expect("dependency-free graph");
    println!(
        "executed {} chunk tasks for real in {:?} on {} worker thread(s)",
        exec.tasks.len(),
        exec.wall,
        exec.workers
    );
    println!(
        "engine counters: {} steals ({} cross-group), {} failed steal scans, {:?} total busy",
        exec.total_steals(),
        exec.total_cross_group_steals(),
        exec.total_failed_steals(),
        exec.total_busy()
    );
    for w in &exec.worker_stats {
        println!(
            "  worker {} (group {}): {} tasks, {} stolen, busy {:?}",
            w.worker, w.group, w.executed, w.steals, w.busy
        );
    }

    // Verify: A[i] == i + 2i.
    let a = a.lock();
    for (i, v) in a.iter().enumerate().step_by(N / 13) {
        assert_eq!(*v, (3 * i) as f64, "A[{i}]");
    }
    println!("numerics verified: A[i] = 3*i for all sampled i");
}
