//! Platform exploration: discover the host machine à la hwloc, emit its PDL
//! descriptor, compare platform snapshots (the paper's dynamic-resources
//! future work), and inspect the synthetic platform library.
//!
//! Run with: `cargo run --example platform_explorer`

use pdl_discover::{device_database, discover_host, synthetic};
use pdl_query::diff::diff;
use pdl_query::{detected_patterns, resolve_groups};

fn main() {
    // --- 1. Discover the machine we are running on. -------------------------
    match discover_host() {
        Some(host) => {
            println!("=== discovered host ===\n{host}");
            println!("=== its PDL descriptor ===");
            let xml = pdl_xml::to_xml(&host);
            for line in xml.lines().take(24) {
                println!("{line}");
            }
            if xml.lines().count() > 24 {
                println!("… ({} lines total)", xml.lines().count());
            }
        }
        None => println!("(not a Linux host — skipping live discovery)"),
    }

    // --- 2. The simulated OpenCL device database (Listing 2 source). --------
    println!("\n=== simulated OpenCL device database ===");
    for d in device_database() {
        println!(
            "{:<18} {:>3} CUs  {:>7.1} GF/s DP  {:>6.1} GB/s  {:>4.0} W",
            d.device_name, d.max_compute_units, d.peak_gflops_dp, d.mem_bandwidth_gbs, d.tdp_w
        );
    }

    // --- 3. The synthetic platform library. ---------------------------------
    println!("\n=== synthetic platforms ===");
    for p in [
        synthetic::xeon_x5550_host(),
        synthetic::xeon_2gpu_testbed(),
        synthetic::cell_be(),
        synthetic::gpgpu_cluster(2, 2),
    ] {
        println!(
            "{:<28} {:>3} PUs  height {}  patterns {:?}",
            p.name,
            p.total_units(),
            p.height(),
            detected_patterns(&p)
        );
        let workers = resolve_groups(&p, "@workers").unwrap();
        println!("  workers: {}", workers.len());
    }

    // --- 4. Snapshot diffing (dynamic resource tracking). --------------------
    println!("\n=== snapshot diff: GPU hot-unplug ===");
    let before = synthetic::xeon_2gpu_testbed();
    let after = synthetic::build_testbed(
        "xeon-x5550-gtx480-gtx285",
        &synthetic::TestbedOptions {
            cpu_cores: 8,
            gpus: vec!["GeForce GTX 480"], // GTX 285 vanished
            dedicate_driver_cores: true,
            nvlink_gpus: false,
        },
    );
    for change in diff(&before, &after) {
        println!("  {change}");
    }
}
