//! The paper's §IV-D experiment end to end: one serial DGEMM input program
//! translated against two PDL descriptors — without modifying the source —
//! and executed in virtual time; prints the Figure 5 speedups. Also runs a
//! small *functional* tiled DGEMM to show the decomposition computes the
//! right answer.
//!
//! Run with: `cargo run --example dgemm_translate`

use kernels::dgemm::{dgemm_naive, dgemm_tile, Matrix};

fn main() {
    // --- Figure 5 at paper scale (virtual time). ---------------------------
    let results = bench::fig5::run(8192, 2048);
    println!("{}", results.render());
    println!("compilation plans differ per PDL:");
    {
        use cascabel::codegen::ProblemSpec;
        use cascabel::driver::Cascabel;
        let mut spec = ProblemSpec::with_size("N", 8192);
        spec.tile = Some(2048);
        for platform in [
            pdl_discover::synthetic::xeon_x5550_host(),
            pdl_discover::synthetic::xeon_2gpu_testbed(),
        ] {
            let name = platform.name.clone();
            let mut cc = Cascabel::new(platform);
            let r = cc.compile(bench::fig5::DGEMM_INPUT, &spec).unwrap();
            println!("--- {name} ---\n{}", r.plan);
        }
    }

    // --- Functional check at small scale (real math). ----------------------
    let n = 96;
    let tile = 32;
    let a = Matrix::from_fn(n, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
    let b = Matrix::from_fn(n, |i, j| ((i * 5 + j * 13) % 9) as f64 - 4.0);

    let mut reference = Matrix::zeros(n);
    dgemm_naive(&a, &b, &mut reference);

    let tiles = n / tile;
    let mut tiled = Matrix::zeros(n);
    for ti in 0..tiles {
        for tj in 0..tiles {
            for tk in 0..tiles {
                dgemm_tile(&a, &b, &mut tiled, tile, ti, tj, tk);
            }
        }
    }
    let diff = tiled.max_abs_diff(&reference);
    assert!(diff < 1e-9);
    println!(
        "functional check: tiled ({tiles}x{tiles}x{tiles} tasks) vs naive DGEMM on {n}x{n}: max |diff| = {diff:.1e} — OK"
    );
}
