//! Acceptance tests for the differential-profiling subsystem: a perf diff
//! must decompose the wall-clock delta into blame-category deltas that sum
//! *exactly* to the measured delta, and the committed regression fixtures
//! must be attributed to the transfer layer (with the matching `A004`
//! anomaly on the head run).

use hetero_trace::anomaly::{detect, AnomalyConfig};
use hetero_trace::diff::{perf_diff, CategoryDelta, PERF_DIFF_SCHEMA};
use hetero_trace::json::Json;
use hetero_trace::{codec, RunTrace};

fn fixture(name: &str) -> (RunTrace, Vec<(u32, u32)>) {
    let path = format!("{}/examples/traces/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    codec::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn category_deltas_sum_exactly_to_wall_clock_delta() {
    let (base, base_deps) = fixture("perf_diff_base.trace.json");
    let (head, head_deps) = fixture("perf_diff_regressed.trace.json");
    let d = perf_diff(&base, &base_deps, &head, &head_deps).unwrap();

    assert_eq!(d.base_wall_ns, 160);
    assert_eq!(d.head_wall_ns, 1200);
    assert_eq!(d.delta_ns(), 1040);
    let sum: i64 = d.categories.iter().map(CategoryDelta::delta_ns).sum();
    assert_eq!(sum, d.delta_ns(), "blame deltas must tile the wall delta");

    // The diff is direction-symmetric: swapping base and head negates the
    // wall delta and every category delta, so the sum stays exact.
    let rev = perf_diff(&head, &head_deps, &base, &base_deps).unwrap();
    assert_eq!(rev.delta_ns(), -d.delta_ns());
    let rev_sum: i64 = rev.categories.iter().map(CategoryDelta::delta_ns).sum();
    assert_eq!(rev_sum, rev.delta_ns());
}

#[test]
fn injected_transfer_regression_is_attributed_to_the_link() {
    let (base, base_deps) = fixture("perf_diff_base.trace.json");
    let (head, head_deps) = fixture("perf_diff_regressed.trace.json");
    let d = perf_diff(&base, &base_deps, &head, &head_deps).unwrap();

    let top = d.top_regression().expect("a regression exists");
    assert_eq!(top.category, "transfer/PCIe:host-gpu0");
    assert_eq!(top.delta_ns(), d.delta_ns(), "the link absorbs all of it");

    // The compute category is untouched by the injected regression.
    let compute = d
        .categories
        .iter()
        .find(|c| c.category == "compute/gpus")
        .expect("compute category present");
    assert_eq!(compute.delta_ns(), 0);

    // The anomaly detector agrees: the head run saturates the same link.
    let anomalies = detect(&head, &AnomalyConfig::default());
    assert!(
        anomalies
            .iter()
            .any(|a| a.code == "A004" && a.subject == "PCIe:host-gpu0"),
        "expected A004 on PCIe:host-gpu0, got {anomalies:?}"
    );
    assert!(detect(&base, &AnomalyConfig::default()).is_empty());
}

#[test]
fn perf_diff_json_document_is_schema_versioned_and_reparses() {
    let (base, base_deps) = fixture("perf_diff_base.trace.json");
    let (head, head_deps) = fixture("perf_diff_regressed.trace.json");
    let d = perf_diff(&base, &base_deps, &head, &head_deps).unwrap();

    let doc = Json::parse(&d.to_json().to_pretty()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(PERF_DIFF_SCHEMA)
    );
    assert_eq!(doc.get("delta_ns").and_then(Json::as_f64), Some(1040.0));
    let categories = doc.get("categories").unwrap().items();
    let json_sum: f64 = categories
        .iter()
        .filter_map(|c| c.get("delta_ns").and_then(Json::as_f64))
        .sum();
    assert_eq!(json_sum, 1040.0, "the exported document stays sum-exact");
}
