//! End-to-end tests of the `pdl` command-line tool, driving the real
//! binary (Cargo provides its path via `CARGO_BIN_EXE_pdl`).

use std::process::Command;

fn pdl(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pdl"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_commands() {
    let (ok, stdout, _) = pdl(&["help"]);
    assert!(ok);
    for cmd in [
        "validate",
        "discover",
        "query",
        "route",
        "diff",
        "simulate",
        "perf-diff",
    ] {
        assert!(stdout.contains(cmd), "missing {cmd}");
    }
}

#[test]
fn unknown_command_fails() {
    let (ok, _, stderr) = pdl(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn validate_builtin_platform() {
    let (ok, stdout, _) = pdl(&["validate", "cell-be"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("valid"));
    assert!(stdout.contains("9 PUs"));
}

#[test]
fn validate_file_round_trip() {
    let dir = std::env::temp_dir().join(format!("pdl-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("box.pdl.xml");

    // Write a descriptor, validate it, then corrupt it and watch it fail.
    let platform = pdl_discover::synthetic::xeon_2gpu_testbed();
    std::fs::write(&file, pdl_xml::to_xml(&platform)).unwrap();
    let (ok, stdout, _) = pdl(&["validate", file.to_str().unwrap()]);
    assert!(ok, "{stdout}");

    std::fs::write(&file, "<Master id=\"0\"><Worker id=\"0\"/></Master>").unwrap();
    let (ok, _, stderr) = pdl(&["validate", file.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("duplicate"), "{stderr}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn query_selector_over_builtin() {
    let (ok, stdout, _) = pdl(&["query", "cell-be", "//Worker[@ARCHITECTURE='spe']"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("(8 match(es))"), "{stdout}");
}

#[test]
fn groups_expression() {
    let (ok, stdout, _) = pdl(&["groups", "xeon-x5550-gtx480-gtx285", "gpus+cpus"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("(8 member(s))"), "{stdout}");
}

#[test]
fn route_between_pus() {
    let (ok, stdout, _) = pdl(&["route", "xeon-x5550-gtx480-gtx285", "host", "gpu0", "512"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("PCIe"));
    assert!(stdout.contains("bottleneck 6.00 GB/s"));
}

#[test]
fn diff_two_builtins() {
    let (ok, stdout, _) = pdl(&["diff", "xeon-x5550-8core", "xeon-x5550-gtx480-gtx285"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("+ PU gpu0"));
}

#[test]
fn simulate_dgemm_on_builtin() {
    let (ok, stdout, _) = pdl(&["simulate", "xeon-x5550-gtx480-gtx285", "2048", "512"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("makespan"));
    assert!(stdout.contains("GFLOP/s effective"));
}

#[test]
fn discover_emits_valid_xml() {
    if !std::path::Path::new("/proc/cpuinfo").exists() {
        return;
    }
    let (ok, stdout, _) = pdl(&["discover"]);
    assert!(ok);
    let platform = pdl_xml::from_xml(&stdout).expect("CLI output is valid PDL");
    assert!(platform.workers().count() >= 1);
}

#[test]
fn catalog_lists_builtins() {
    let (ok, stdout, _) = pdl(&["catalog"]);
    assert!(ok);
    assert!(stdout.contains("cell-be"));
    assert!(stdout.contains("gpgpu-cluster-4x2"));
}

#[test]
fn missing_arguments_reported() {
    let (ok, _, stderr) = pdl(&["route", "cell-be"]);
    assert!(!ok);
    assert!(stderr.contains("missing argument"));
}

#[test]
fn model_check_clean_run_succeeds() {
    let (ok, stdout, stderr) = pdl(&["model-check", "--pending", "1"]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("all invariants hold"), "{stdout}");
    assert!(stdout.contains("xeon-2gpu-pcie"), "{stdout}");
    assert!(stdout.contains("xeon-2gpu-nvlink"), "{stdout}");
}

#[test]
fn model_check_catches_injected_single_writer_bug() {
    let (ok, stdout, stderr) = pdl(&["model-check", "--pending", "1", "--mutate", "m001"]);
    assert!(!ok, "an injected bug must fail the run");
    assert!(stdout.contains("error[M001]"), "{stdout}");
    assert!(
        stdout.contains("minimized counterexample (2 actions)"),
        "{stdout}"
    );
    assert!(stderr.contains("invariant violation"), "{stderr}");
}

#[test]
fn model_check_writes_schema_versioned_json() {
    let dir = std::env::temp_dir().join(format!("pdl-mc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("model-check.json");
    let (ok, stdout, stderr) = pdl(&[
        "model-check",
        "--pending",
        "1",
        "--json",
        file.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    let text = std::fs::read_to_string(&file).unwrap();
    assert!(text.contains("\"schema\": \"pdl-model-check/1\""), "{text}");
    assert!(text.contains("\"invariants\""), "{text}");
    assert!(text.contains("\"elapsed_seconds\""), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn model_check_rejects_unknown_mutation() {
    let (ok, _, stderr) = pdl(&["model-check", "--mutate", "m999"]);
    assert!(!ok);
    assert!(stderr.contains("unknown mutation"), "{stderr}");
}

#[test]
fn perf_diff_attributes_fixture_regression() {
    let dir = std::env::temp_dir().join(format!("pdl-pd-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("diff.json");
    let (ok, stdout, stderr) = pdl(&[
        "perf-diff",
        "examples/traces/perf_diff_base.trace.json",
        "examples/traces/perf_diff_regressed.trace.json",
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(
        stdout.contains("top regression: transfer/PCIe:host-gpu0"),
        "{stdout}"
    );
    assert!(stdout.contains("A004 [PCIe:host-gpu0]"), "{stdout}");
    let text = std::fs::read_to_string(&json).unwrap();
    assert!(text.contains("\"schema\": \"pdl-perf-diff/1\""), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn perf_diff_requires_two_traces() {
    let (ok, _, stderr) = pdl(&["perf-diff", "examples/traces/perf_diff_base.trace.json"]);
    assert!(!ok);
    assert!(stderr.contains("two traces"), "{stderr}");
}
