//! Property tests for the hetero-trace event collection: whatever random
//! DAG the engines execute, the drained trace must satisfy the structural
//! invariants and reconcile with the engine's own counters.
//!
//! Checked per random (DAG, worker count, placement) sample:
//!
//! * `RunTrace::validate` passes — lossless rings, per-lane monotonic
//!   timestamps, exactly one start/end pair per task, properly nested
//!   spans, balanced phases;
//! * trace steal events equal `ExecReport::total_steals()` and the
//!   cross-group subset equals `ExecReport::total_cross_group_steals()`;
//! * every task became ready exactly once, and busy time per worker agrees
//!   with `WorkerStats::busy` (both sides read the same clock).

use hetero_rt::prelude::*;
use proptest::prelude::*;

/// Dependency mask decoding shared with `tests/work_stealing.rs`: task `i`
/// may depend on any of the 64 preceding tasks.
fn masked_deps(masks: &[u64], i: usize) -> Vec<usize> {
    (i.saturating_sub(64)..i)
        .filter(|&j| masks[i] & (1u64 << (i - 1 - j)) != 0)
        .collect()
}

fn dag_tasks(masks: &[u64], group_of: impl Fn(usize) -> Option<&'static str>) -> Vec<ThreadTask> {
    masks
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let mut t = ThreadTask::new(format!("t{i}"), move || {
                std::hint::black_box(i.wrapping_mul(0x9e37));
            })
            .after(masked_deps(masks, i));
            if let Some(g) = group_of(i) {
                t = t.in_group(g);
            }
            t
        })
        .collect()
}

/// Asserts the invariants shared by every traced run.
fn check_trace(report: &ExecReport, n: usize) {
    let trace = report.trace.as_ref().expect("ring sink collects a trace");
    let stats = trace
        .validate()
        .unwrap_or_else(|e| panic!("trace invariant broken: {e}"));
    assert_eq!(stats.tasks, n, "one start/end pair per task");
    assert_eq!(stats.readies, n as u64, "each task readied exactly once");
    assert_eq!(stats.dequeues, n as u64, "each task dequeued exactly once");
    assert_eq!(
        stats.steals,
        report.total_steals() as u64,
        "steal events match report counter"
    );
    assert_eq!(
        stats.cross_group_steals,
        report.total_cross_group_steals() as u64,
        "cross-group steal events match report counter"
    );
    // Per-worker busy time from trace spans equals the engine's own stats
    // exactly: both are computed from the same clock readings.
    for ws in &report.worker_stats {
        let from_trace = stats.busy_ns.get(ws.worker).copied().unwrap_or(0);
        assert_eq!(
            from_trace,
            ws.busy.as_nanos() as u64,
            "worker {} busy mismatch",
            ws.worker
        );
    }
    // Timestamps are monotonic per worker lane (validate() enforces it, but
    // assert the raw ordering too so a validate() regression is caught).
    for w in &trace.workers {
        for pair in w.events.windows(2) {
            assert!(pair[0].ts <= pair[1].ts);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn traced_random_dags_validate(
        masks in proptest::collection::vec(any::<u64>(), 1..48),
        workers in 1usize..9,
    ) {
        let n = masks.len();
        let report = ThreadedExecutor::new(workers)
            .with_trace(TraceSink::ring())
            .run(dag_tasks(&masks, |_| None))
            .unwrap();
        check_trace(&report, n);
    }

    #[test]
    fn traced_grouped_dags_validate(
        masks in proptest::collection::vec(any::<u64>(), 1..40),
        split in 1usize..4,
    ) {
        // Two placement groups; tasks alternate between them and ungrouped,
        // which exercises injector hand-offs and cross-group steals.
        let n = masks.len();
        let placement = Placement::new().with_group("a", split).with_group("b", 2);
        let report = ThreadedExecutor::with_placement(placement)
            .with_trace(TraceSink::ring())
            .run(dag_tasks(&masks, |i| match i % 3 {
                0 => Some("a"),
                1 => Some("b"),
                _ => None,
            }))
            .unwrap();
        check_trace(&report, n);
        // Cross-group steal provenance is per-span recoverable.
        let trace = report.trace.as_ref().unwrap();
        let cross = trace
            .task_spans()
            .iter()
            .filter(|s| {
                s.provenance
                    .as_ref()
                    .is_some_and(hetero_trace::Provenance::is_cross_group)
            })
            .count();
        prop_assert_eq!(cross, report.total_cross_group_steals());
    }

    #[test]
    fn traced_single_queue_validates(
        masks in proptest::collection::vec(any::<u64>(), 1..32),
        workers in 1usize..5,
    ) {
        let n = masks.len();
        let report = SingleQueueExecutor::new(workers)
            .with_trace(TraceSink::ring())
            .run(dag_tasks(&masks, |_| None))
            .unwrap();
        check_trace(&report, n);
    }

    /// The codec is lossless even on *lossy* traces: whatever spans, ring
    /// overflow counts, and dependency edges a trace carries, export →
    /// parse must reproduce the trace verbatim — including each worker's
    /// `overwritten` tally (the analyzer's `A005` input) and every dep
    /// edge (the profiler's critical-path input).
    #[test]
    fn codec_round_trips_lossy_traces_and_deps(
        worker_spans in proptest::collection::vec(
            (0u64..1000, proptest::collection::vec((1u64..50, 1u64..50), 0..6)),
            1..4,
        ),
        dep_seeds in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..8),
    ) {
        use hetero_trace::{codec, EventKind, TraceEvent};
        use hetero_trace::{LaneLabel, RunTrace, TaskInfo, TraceMeta, WorkerTrace};

        let mut tasks = Vec::new();
        let mut workers = Vec::new();
        let mut lanes = Vec::new();
        for (w, (overwritten, spans)) in worker_spans.iter().enumerate() {
            lanes.push(LaneLabel {
                name: format!("cpu{w}"),
                group: (w % 2 == 0).then(|| "cpus".to_string()),
            });
            let mut events = Vec::new();
            let mut ts = 0u64;
            for &(gap, dur) in spans {
                let task = tasks.len() as u32;
                tasks.push(TaskInfo {
                    label: format!("t{task}"),
                    category: "task".to_string(),
                    group: None,
                });
                ts += gap;
                events.push(TraceEvent { ts, kind: EventKind::TaskStart { task } });
                ts += dur;
                events.push(TraceEvent { ts, kind: EventKind::TaskEnd { task } });
            }
            workers.push(WorkerTrace { worker: w, events, overwritten: *overwritten });
        }
        let n = tasks.len() as u32;
        let deps: Vec<(u32, u32)> = dep_seeds
            .iter()
            .filter(|_| n > 0)
            .map(|&(a, b)| (a % n, b % n))
            .collect();
        let trace = RunTrace {
            meta: TraceMeta {
                platform: Some("prop-machine".to_string()),
                lanes,
                tasks,
                ..Default::default()
            },
            prelude: Vec::new(),
            workers,
        };

        let exported = codec::export(&trace, &deps);
        let (parsed, parsed_deps) = codec::parse(&exported)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}"));
        prop_assert_eq!(&parsed, &trace, "trace must survive the codec verbatim");
        prop_assert_eq!(parsed_deps, deps, "dep edges must survive the codec");
        for (orig, back) in trace.workers.iter().zip(&parsed.workers) {
            prop_assert_eq!(orig.overwritten, back.overwritten);
        }
    }
}
