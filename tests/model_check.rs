//! Integration tests of the exhaustive coherence model checker over
//! topologies projected from real platform descriptions (the same bounded
//! configs `pdl model-check` and the CI smoke gate explore).

use hetero_model::explore::{explore, replay_violates, shrink, Bounds, Invariant};
use hetero_model::model::{Action, Mutation};
use hetero_model::proto::{AccessMode, Routing};
use pdl_analyze::bounded_configs;

fn bounds() -> Bounds {
    Bounds {
        max_pending: 1,
        max_states: 1 << 21,
    }
}

#[test]
fn real_platform_configs_hold_all_invariants() {
    for config in bounded_configs() {
        let ex = explore(&config.model, &bounds());
        assert!(
            ex.violation.is_none(),
            "{}: {:?}",
            config.name,
            ex.violation
        );
        assert!(ex.complete, "{}: state cap hit", config.name);
        assert!(ex.states > 1_000, "{}: {} states", config.name, ex.states);
    }
}

#[test]
fn every_mutation_is_caught_on_real_platforms_with_minimal_trace() {
    // The injected-bug sweep of the acceptance criteria: each named
    // mutation must be found by the explorer on the PDL-derived configs,
    // reported under its stable code, with a counterexample no longer
    // than the known minimum (BFS guarantees shortest; shrink can only
    // keep or reduce).
    let configs = bounded_configs();
    for (mutation, max_len) in [
        (Mutation::SkipWriteInvalidate, 2),
        (Mutation::DropWriteUpdate, 2),
        (Mutation::VanishOnWrite, 2),
        (Mutation::UnderCharge, 1),
        (Mutation::MoveNotCopy, 1),
    ] {
        for config in &configs {
            let model = config.model.clone().with_mutation(mutation);
            let ex = explore(&model, &bounds());
            let v = ex
                .violation
                .unwrap_or_else(|| panic!("{}: {mutation:?} not caught", config.name));
            assert_eq!(v.invariant.code(), mutation.expected_code().unwrap());
            assert!(
                v.trace.len() <= max_len,
                "{}: {mutation:?} trace not minimal: {:?}",
                config.name,
                v.trace
            );
            // Minimized counterexamples must still reproduce.
            assert!(
                replay_violates(&model, &bounds(), &v.trace, v.invariant).is_some(),
                "{}: {mutation:?} minimized trace does not replay",
                config.name
            );
        }
    }
}

#[test]
fn shrink_reduces_noisy_traces_on_real_platforms() {
    let config = &bounded_configs()[0];
    let model = config.model.clone().with_mutation(Mutation::VanishOnWrite);
    // A padded trace: unrelated reads and flushes around the write pair
    // that triggers the vanish.
    let noisy = vec![
        Action::Acquire {
            handle: 1,
            dev: 1,
            mode: AccessMode::Read,
            routing: Routing::HostStaged,
        },
        Action::Finish {
            handle: 1,
            dev: 1,
            mode: AccessMode::Read,
        },
        Action::Flush { handle: 1 },
        Action::Acquire {
            handle: 0,
            dev: 2,
            mode: AccessMode::Write,
            routing: Routing::HostStaged,
        },
        Action::Flush { handle: 0 },
        Action::Finish {
            handle: 0,
            dev: 2,
            mode: AccessMode::Write,
        },
    ];
    assert!(
        replay_violates(&model, &bounds(), &noisy, Invariant::ValidSomewhere).is_some(),
        "noisy trace must violate before shrinking"
    );
    let minimal = shrink(&model, &bounds(), &noisy, Invariant::ValidSomewhere);
    assert_eq!(minimal.len(), 2, "{minimal:?}");
    assert!(
        replay_violates(&model, &bounds(), &minimal, Invariant::ValidSomewhere).is_some(),
        "shrunk trace must still violate"
    );
}

#[test]
fn exploration_is_deterministic_across_runs() {
    let config = &bounded_configs()[1];
    let a = explore(&config.model, &bounds());
    let b = explore(&config.model, &bounds());
    assert_eq!((a.states, a.transitions), (b.states, b.transitions));
}
