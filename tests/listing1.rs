//! Golden test for Listing 1 of the paper: the PDL description of an
//! x86-core Master with an attached GPU Worker, parsed verbatim.

use pdl_core::prelude::*;
use pdl_xml::{encode_master_fragment, from_xml, parse_document, SchemaRegistry};

/// Listing 1, typeset exactly as in the paper (comments included).
const LISTING_1: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<!-- XML HEADER -->
<Master id="0" quantity="1">
  <PUDescriptor>
    <Property fixed="true">
      <name>ARCHITECTURE</name>
      <value>x86</value>
    </Property>
    <!-- Additional properties -->
  </PUDescriptor>
  <Worker quantity="1" id="1">
    <PUDescriptor>
      <Property fixed="true">
        <name>ARCHITECTURE</name>
        <value>gpu</value>
      </Property>
      <!-- Additional properties -->
    </PUDescriptor>
  </Worker>
  <Interconnect type="rDMA" from="0" to="1" scheme=""/>
</Master>
"#;

#[test]
fn listing1_is_schema_valid() {
    let doc = parse_document(LISTING_1).unwrap();
    let errors = SchemaRegistry::with_builtins().validate(&doc);
    assert!(errors.is_empty(), "{errors:?}");
}

#[test]
fn listing1_decodes_to_the_expected_model() {
    let p = from_xml(LISTING_1).unwrap();
    assert_eq!(p.len(), 2);
    assert_eq!(p.total_units(), 2);

    let (midx, master) = p.pu_by_id("0").unwrap();
    assert_eq!(master.class, PuClass::Master);
    assert_eq!(master.architecture(), Some("x86"));
    assert_eq!(master.quantity, 1);
    assert_eq!(p.depth(midx), 0);
    let arch = master.descriptor.get("ARCHITECTURE").unwrap();
    assert!(arch.fixed);
    assert!(arch.subschema.is_none());

    let (widx, worker) = p.pu_by_id("1").unwrap();
    assert_eq!(worker.class, PuClass::Worker);
    assert_eq!(worker.architecture(), Some("gpu"));
    assert_eq!(p.depth(widx), 1);
    assert_eq!(worker.parent(), Some(midx));

    assert_eq!(p.interconnects().len(), 1);
    let ic = &p.interconnects()[0];
    assert_eq!(ic.ic_type, "rDMA");
    assert_eq!(ic.from, PuId::new("0"));
    assert_eq!(ic.to, PuId::new("1"));
    assert_eq!(ic.scheme, "");
}

#[test]
fn listing1_exhibits_host_device_pattern() {
    let p = from_xml(LISTING_1).unwrap();
    assert!(pdl_query::matches_pattern(
        &p,
        pdl_core::patterns::PatternKind::HostDevice
    ));
}

#[test]
fn listing1_round_trips_through_our_encoder() {
    let p = from_xml(LISTING_1).unwrap();
    // Platform-wrapper form.
    let xml = pdl_xml::to_xml(&p);
    assert_eq!(from_xml(&xml).unwrap(), p);
    // Bare-Master form, like the paper's listing itself.
    let fragment = encode_master_fragment(&p).unwrap();
    assert!(fragment.contains("<Master id=\"0\">"));
    assert!(fragment.contains("<Interconnect type=\"rDMA\" from=\"0\" to=\"1\"/>"));
    let p2 = from_xml(&fragment).unwrap();
    assert_eq!(p2.len(), p.len());
    assert_eq!(p2.interconnects(), p.interconnects());
}

#[test]
fn listing1_mutations_are_rejected() {
    // Worker at top level.
    let bad = LISTING_1.replace("Master", "Worker");
    assert!(from_xml(&bad).is_err());
    // Dangling interconnect endpoint.
    let bad = LISTING_1.replace("to=\"1\"", "to=\"99\"");
    assert!(from_xml(&bad).is_err());
    // Malformed XML.
    let bad = LISTING_1.replace("</Master>", "");
    assert!(from_xml(&bad).is_err());
}
