//! Property-based coherence invariants for the transfer-planning data
//! layer, driven by random access sequences (many handles, every device,
//! all access modes) on both the plain 2-GPU testbed and its `NVLink`
//! variant, under host-staged *and* peer-to-peer routing:
//!
//! * after every acquire the handle is valid somewhere;
//! * a write leaves exactly one valid copy, held by the writer;
//! * `probe_acquire_via` equals the charge `acquire_via` then applies —
//!   probing is side-effect-free pricing of the same transfer plan;
//! * byte counters advance by exactly the bytes of the plan's hops, each
//!   hop charged to exactly one counter (host→device, device→host, or
//!   peer) — no double counting, no phantom staging bytes;
//! * data is always recoverable to the host afterwards.

use hetero_rt::data::{AccessMode, DataRegistry, Routing, HOST};
use proptest::prelude::*;
use simhw::machine::SimMachine;

fn check_sequence(machine: &SimMachine, routing: Routing, ops: &[(usize, usize, u8)]) {
    let mut reg = DataRegistry::new();
    let handles: Vec<_> = (0..3)
        .map(|i| reg.register(format!("d{i}"), 1e6 * (i + 1) as f64))
        .collect();
    for &(hi, dev, mode) in ops {
        let h = handles[hi % handles.len()];
        let device = machine.devices[dev % machine.len()].id;
        let mode = match mode % 3 {
            0 => AccessMode::Read,
            1 => AccessMode::Write,
            _ => AccessMode::ReadWrite,
        };

        // Price the plan twice independently: the probe must agree with
        // the charge, and the plan's hops must explain the counter deltas.
        let plan = reg.plan_acquire(machine, h, device, mode, routing);
        let probed = reg.probe_acquire_via(machine, h, device, mode, routing);
        prop_assert_eq!(probed.seconds(), plan.total().seconds());

        let mut expect_dev = 0.0;
        let mut expect_host = 0.0;
        let mut expect_peer = 0.0;
        for hop in &plan.hops {
            if hop.to == HOST {
                expect_host += hop.bytes;
            } else if hop.from == HOST {
                expect_dev += hop.bytes;
            } else {
                expect_peer += hop.bytes;
            }
        }

        let before = (
            reg.bytes_to_devices(),
            reg.bytes_to_host(),
            reg.bytes_peer(),
        );
        let charged = reg.acquire_via(machine, h, device, mode, routing);
        prop_assert_eq!(charged.seconds(), probed.seconds());
        prop_assert_eq!(reg.bytes_to_devices() - before.0, expect_dev);
        prop_assert_eq!(reg.bytes_to_host() - before.1, expect_host);
        prop_assert_eq!(reg.bytes_peer() - before.2, expect_peer);

        prop_assert!(!reg.valid_on(h).is_empty(), "no valid copy of {h:?}");
        if mode.writes() {
            prop_assert!(reg.is_valid_on(h, device));
            prop_assert_eq!(reg.valid_on(h).len(), 1);
        } else {
            prop_assert!(reg.is_valid_on(h, device));
        }
    }
    // Every handle can always be recovered to the host.
    for &h in &handles {
        reg.flush_to_host(machine, h);
        prop_assert!(reg.is_valid_on(h, HOST));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coherence_holds_under_any_access_sequence(
        ops in proptest::collection::vec((0usize..3, 0usize..8, 0u8..3), 1..60),
        p2p in any::<bool>(),
    ) {
        let routing = if p2p { Routing::PeerToPeer } else { Routing::HostStaged };
        // Without declared peer links P2P routing must degrade gracefully;
        // with NVLink declared it must stay coherent while using them.
        let plain = SimMachine::from_platform(&pdl_discover::synthetic::xeon_2gpu_testbed());
        check_sequence(&plain, routing, &ops);
        let nvlink =
            SimMachine::from_platform(&pdl_discover::synthetic::xeon_2gpu_nvlink_testbed());
        check_sequence(&nvlink, routing, &ops);
    }

    #[test]
    fn p2p_routing_never_loses_to_staging(
        ops in proptest::collection::vec((0usize..3, 0usize..8, 0u8..3), 1..40),
    ) {
        // Peer routing is chosen only when cheaper, so running the same
        // sequence under both routings can only lower the total charge.
        let machine =
            SimMachine::from_platform(&pdl_discover::synthetic::xeon_2gpu_nvlink_testbed());
        let total = |routing: Routing| {
            let mut reg = DataRegistry::new();
            let handles: Vec<_> = (0..3)
                .map(|i| reg.register(format!("d{i}"), 1e6 * (i + 1) as f64))
                .collect();
            let mut sum = 0.0;
            for &(hi, dev, mode) in &ops {
                let h = handles[hi % handles.len()];
                let device = machine.devices[dev % machine.len()].id;
                let mode = match mode % 3 {
                    0 => AccessMode::Read,
                    1 => AccessMode::Write,
                    _ => AccessMode::ReadWrite,
                };
                sum += reg.acquire_via(&machine, h, device, mode, routing).seconds();
            }
            sum
        };
        let staged = total(Routing::HostStaged);
        let peer = total(Routing::PeerToPeer);
        prop_assert!(peer <= staged + 1e-12, "peer {peer} > staged {staged}");
    }
}
