//! Critical-path profiler contract tests.
//!
//! Deterministic half: a hand-built trace with a **known injected
//! critical path** (CPU stage → interconnect transfer → GPU kernel, with
//! deliberate scheduler and queue-wait gaps) must be recovered *exactly*
//! — the chain, every blame category's nanosecond count, and the what-if
//! estimates. Property half: whatever random DAG the work-stealing
//! engine executes, the profiler's structural invariant holds — the
//! steps tile `[start_ns, makespan_ns]` contiguously and blame sums to
//! 100% of the critical path — and the profile survives a codec
//! round-trip unchanged.

use hetero_rt::prelude::*;
use hetero_trace::profile::{critical_path, folded_stacks, Profile};
use hetero_trace::{
    codec, EventKind, LaneLabel, RunTrace, TaskInfo, TraceEvent, TraceMeta, WorkerTrace,
};
use proptest::prelude::*;

fn ev(ts: u64, kind: EventKind) -> TraceEvent {
    TraceEvent { ts, kind }
}

fn lane(worker: usize, events: Vec<TraceEvent>) -> WorkerTrace {
    WorkerTrace {
        worker,
        events,
        overwritten: 0,
    }
}

fn task(label: &str, category: &str) -> TaskInfo {
    TaskInfo {
        label: label.to_string(),
        category: category.to_string(),
        group: None,
    }
}

/// A three-stage offload with a fully known timeline:
///
/// ```text
/// cpu0  (cpus)   load   [  0, 100]
/// link  (links)  copy   [100, 160]          <- depends on load
/// gpu0  (gpus)   kernel [180, 400]          <- depends on copy
///                        ^ ready at 170: 160..170 scheduler,
///                          170..180 queue-wait/gpus
/// ```
fn injected_trace() -> (RunTrace, Vec<(u32, u32)>) {
    let trace = RunTrace {
        meta: TraceMeta {
            platform: Some("offload-testbed".to_string()),
            lanes: vec![
                LaneLabel {
                    name: "cpu0".to_string(),
                    group: Some("cpus".to_string()),
                },
                LaneLabel {
                    name: "gpu0".to_string(),
                    group: Some("gpus".to_string()),
                },
                LaneLabel {
                    name: "PCIe:host-gpu0".to_string(),
                    group: Some("links".to_string()),
                },
            ],
            tasks: vec![
                task("load", "task"),
                task("copy", "transfer"),
                task("kernel", "task"),
            ],
            time_unit: Default::default(),
        },
        prelude: vec![ev(0, EventKind::TaskReady { task: 0 })],
        workers: vec![
            lane(
                0,
                vec![
                    ev(0, EventKind::TaskStart { task: 0 }),
                    ev(100, EventKind::TaskEnd { task: 0 }),
                ],
            ),
            lane(
                1,
                vec![
                    ev(170, EventKind::TaskReady { task: 2 }),
                    ev(180, EventKind::TaskStart { task: 2 }),
                    ev(400, EventKind::TaskEnd { task: 2 }),
                ],
            ),
            lane(
                2,
                vec![
                    ev(100, EventKind::TaskStart { task: 1 }),
                    ev(160, EventKind::TaskEnd { task: 1 }),
                ],
            ),
        ],
    };
    (trace, vec![(0, 1), (1, 2)])
}

fn blame_ns(p: &Profile, category: &str) -> Option<u64> {
    p.blame
        .iter()
        .find(|b| b.category == category)
        .map(|b| b.ns)
}

/// The structural invariant every profile must satisfy, whatever the
/// trace: steps tile the chain contiguously and blame accounts for every
/// nanosecond of it.
fn assert_profile_invariants(p: &Profile) {
    assert!(!p.steps.is_empty(), "profile has steps");
    assert_eq!(p.steps.first().unwrap().start, p.start_ns);
    assert_eq!(p.steps.last().unwrap().end, p.makespan_ns);
    for w in p.steps.windows(2) {
        assert_eq!(w[0].end, w[1].start, "steps tile without gaps/overlaps");
    }
    let blamed: u64 = p.blame.iter().map(|b| b.ns).sum();
    assert_eq!(blamed, p.critical_path_ns(), "blame sums to 100%");
    let shares: f64 = p.blame.iter().map(|b| b.share).sum();
    assert!(
        p.critical_path_ns() == 0 || (shares - 1.0).abs() < 1e-9,
        "shares sum to 1.0 (got {shares})"
    );
}

#[test]
fn injected_critical_path_is_recovered_exactly() {
    let (trace, deps) = injected_trace();
    let p = critical_path(&trace, &deps).unwrap();

    assert_eq!(p.start_ns, 0);
    assert_eq!(p.makespan_ns, 400);
    assert_eq!(p.critical_path_ns(), 400);
    assert_profile_invariants(&p);

    // The chain is exactly the injected one, in execution order.
    assert_eq!(p.chain_tasks(), ["load", "copy", "kernel"]);

    // Every nanosecond lands in the expected category.
    assert_eq!(blame_ns(&p, "compute/cpus"), Some(100));
    assert_eq!(blame_ns(&p, "transfer/PCIe:host-gpu0"), Some(60));
    assert_eq!(blame_ns(&p, "scheduler"), Some(10));
    assert_eq!(blame_ns(&p, "queue-wait/gpus"), Some(10));
    assert_eq!(blame_ns(&p, "compute/gpus"), Some(220));
    assert_eq!(p.blame.len(), 5, "no stray categories");

    // What-ifs replay the chain against edited costs.
    let gpu = p
        .what_ifs
        .iter()
        .find(|w| w.description == "group gpus compute 2x faster")
        .expect("gpu compute what-if");
    assert_eq!(gpu.saving_ns, 110);
    assert_eq!(gpu.estimated_makespan_ns, 290);
    let link = p
        .what_ifs
        .iter()
        .find(|w| w.description == "link PCIe:host-gpu0 2x faster")
        .expect("link what-if");
    assert_eq!(link.saving_ns, 30);
}

#[test]
fn park_on_the_chain_is_blamed_as_imbalance() {
    let (mut trace, deps) = injected_trace();
    // The GPU lane parks 160..175 while its task's inputs are ready from
    // 170: scheduler 160..170, park 170..175, queue-wait 175..180.
    trace.workers[1].events.insert(0, ev(160, EventKind::Park));
    trace.workers[1]
        .events
        .insert(1, ev(175, EventKind::Unpark));
    let p = critical_path(&trace, &deps).unwrap();
    assert_profile_invariants(&p);
    assert_eq!(blame_ns(&p, "scheduler"), Some(10));
    assert_eq!(blame_ns(&p, "park/gpus"), Some(5));
    assert_eq!(blame_ns(&p, "queue-wait/gpus"), Some(5));
}

#[test]
fn profile_survives_codec_round_trip() {
    let (trace, deps) = injected_trace();
    let direct = critical_path(&trace, &deps).unwrap();
    let (parsed, parsed_deps) = codec::parse(&codec::export(&trace, &deps)).unwrap();
    assert_eq!(parsed_deps, deps);
    let reparsed = critical_path(&parsed, &parsed_deps).unwrap();
    assert_eq!(direct, reparsed, "profile identical after export/parse");
    assert_eq!(folded_stacks(&trace), folded_stacks(&parsed));
}

/// Dependency mask decoding shared with `tests/trace_invariants.rs`:
/// task `i` may depend on any of the 64 preceding tasks.
fn masked_deps(masks: &[u64], i: usize) -> Vec<usize> {
    (i.saturating_sub(64)..i)
        .filter(|&j| masks[i] & (1u64 << (i - 1 - j)) != 0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever DAG the engine executes, blame sums to the critical-path
    /// length and the steps tile it — the profiler's core invariant.
    #[test]
    fn blame_always_sums_to_critical_path(
        masks in proptest::collection::vec(any::<u64>(), 1..40),
        workers in 1usize..5,
    ) {
        let tasks: Vec<ThreadTask> = masks
            .iter()
            .enumerate()
            .map(|(i, _)| {
                ThreadTask::new(format!("t{i}"), move || {
                    std::hint::black_box(i.wrapping_mul(0x9e37));
                })
                .after(masked_deps(&masks, i))
            })
            .collect();
        let deps: Vec<(u32, u32)> = tasks
            .iter()
            .enumerate()
            .flat_map(|(i, t)| t.deps.iter().map(move |&d| (d as u32, i as u32)))
            .collect();
        let report = ThreadedExecutor::new(workers)
            .with_trace(TraceSink::ring())
            .run(tasks)
            .unwrap();
        let trace = report.trace.as_ref().expect("ring sink collects a trace");

        let p = critical_path(trace, &deps).unwrap();
        assert_profile_invariants(&p);
        prop_assert!(!p.chain_tasks().is_empty());
        // The chain ends at the very last span to finish.
        let last_end = trace.task_spans().iter().map(|s| s.end).max().unwrap();
        prop_assert_eq!(p.makespan_ns, last_end);

        // And the profile is reproducible from the on-disk form.
        let (parsed, parsed_deps) =
            codec::parse(&codec::export(trace, &deps)).unwrap();
        let reparsed = critical_path(&parsed, &parsed_deps).unwrap();
        prop_assert_eq!(p, reparsed);
    }
}
