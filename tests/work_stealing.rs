//! Integration tests for the work-stealing thread engine:
//!
//! * single-worker runs are deterministic (same graph → same execution
//!   order, twice);
//! * random DAGs (proptest) always complete, run every task exactly once
//!   and never violate a dependency, at any worker count;
//! * steal and placement counters add up: every task is accounted to
//!   exactly one worker, and tasks pinned to a group whose workers did not
//!   ready them must arrive by stealing;
//! * the full PDL wiring: logic groups resolved from a platform description
//!   drive placement, and Cascabel call mappings produce a working
//!   placement for graph execution via `from_graph`.

use hetero_rt::prelude::*;
use hetero_rt::thread_engine::ThreadEngineError;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// Runs `tasks_of(log)` and returns the observed execution order.
fn record_order(
    workers: usize,
    placement: Option<Placement>,
    build: impl Fn(Arc<Mutex<Vec<usize>>>) -> Vec<ThreadTask>,
) -> Vec<usize> {
    let log = Arc::new(Mutex::new(Vec::new()));
    let tasks = build(log.clone());
    let executor = match placement {
        Some(p) => ThreadedExecutor::with_placement(p),
        None => ThreadedExecutor::new(workers),
    };
    executor.run(tasks).unwrap();
    let order = log.lock().clone();
    order
}

/// A fork-join task set: `stages` rounds of `width` forks plus a join.
fn fork_join_tasks(log: Arc<Mutex<Vec<usize>>>, width: usize, stages: usize) -> Vec<ThreadTask> {
    let mut tasks: Vec<ThreadTask> = Vec::new();
    let mut prev_join: Option<usize> = None;
    for _ in 0..stages {
        let first_fork = tasks.len();
        for _ in 0..width {
            let log = log.clone();
            let idx = tasks.len();
            let mut t = ThreadTask::new(format!("fork{idx}"), move || log.lock().push(idx));
            if let Some(j) = prev_join {
                t = t.after([j]);
            }
            tasks.push(t);
        }
        let log = log.clone();
        let idx = tasks.len();
        tasks.push(
            ThreadTask::new(format!("join{idx}"), move || log.lock().push(idx))
                .after(first_fork..first_fork + width),
        );
        prev_join = Some(idx);
    }
    tasks
}

#[test]
fn single_worker_is_deterministic() {
    let build = |log: Arc<Mutex<Vec<usize>>>| fork_join_tasks(log, 7, 5);
    let first = record_order(1, None, build);
    let second = record_order(1, None, build);
    assert_eq!(first.len(), 5 * 8);
    assert_eq!(
        first, second,
        "single-worker execution order must be stable"
    );
}

#[test]
fn report_accounts_every_task_exactly_once() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let tasks = fork_join_tasks(log, 16, 6);
    let n = tasks.len();
    let report = ThreadedExecutor::new(4).run(tasks).unwrap();
    assert_eq!(report.tasks.len(), n);
    let executed: usize = report.worker_stats.iter().map(|w| w.executed).sum();
    assert_eq!(executed, n, "per-worker executed counters must sum to n");
    // Every label shows up exactly once.
    let mut labels: Vec<&str> = report.tasks.iter().map(|t| t.label.as_str()).collect();
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), n);
    // Steals can never exceed executions, and cross-group steals are a
    // subset of steals.
    for w in &report.worker_stats {
        assert!(w.steals <= w.executed);
        assert!(w.cross_group_steals <= w.steals);
    }
}

#[test]
fn group_fan_out_forces_steals() {
    // Worker 0 (group "src") readies every "sink"-pinned task, so each of
    // those must reach group "sink"'s workers through the group injector —
    // which the engine counts as a steal.
    let placement = Placement::new().with_group("src", 1).with_group("sink", 2);
    let n_sinks = 24;
    let counter = Arc::new(Mutex::new(0usize));
    let mut tasks = Vec::new();
    tasks.push(ThreadTask::new("source", || {}).in_group("src"));
    for i in 0..n_sinks {
        let counter = counter.clone();
        tasks.push(
            ThreadTask::new(format!("sink{i}"), move || *counter.lock() += 1)
                .after([0])
                .in_group("sink"),
        );
    }
    let report = ThreadedExecutor::with_placement(placement)
        .run(tasks)
        .unwrap();
    assert_eq!(*counter.lock(), n_sinks);
    assert!(
        report.total_steals() >= n_sinks,
        "all {n_sinks} sink tasks arrive via the group injector (steals = {})",
        report.total_steals()
    );
}

#[test]
fn logic_groups_drive_real_execution() {
    // PDL platform → pdl-query logic groups → Placement → execution.
    let platform = pdl_discover::synthetic::xeon_2gpu_testbed();
    let placement = Placement::from_logic_groups(&platform, &["gpus", "cpus"]).unwrap();
    assert_eq!(placement.groups[0].workers, 2);
    assert_eq!(placement.groups[1].workers, 6);

    let graph = kernels::graphs::fork_join_graph(12, 3, Some("gpus".into()));
    let done = Arc::new(Mutex::new(0usize));
    let tasks = hetero_rt::thread_engine::from_graph(&graph, |_| {
        let done = done.clone();
        Box::new(move || *done.lock() += 1)
    });
    let n = tasks.len();
    let report = ThreadedExecutor::with_placement(placement)
        .run(tasks)
        .unwrap();
    assert_eq!(*done.lock(), n);
    assert_eq!(report.workers, 8);
}

#[test]
fn unknown_group_is_reported_with_task_index() {
    let placement = Placement::new().with_group("cpus", 2);
    let tasks = vec![
        ThreadTask::new("ok", || {}).in_group("cpus"),
        ThreadTask::new("bad", || {}).in_group("dsp"),
    ];
    let err = ThreadedExecutor::with_placement(placement)
        .run(tasks)
        .unwrap_err();
    assert_eq!(
        err,
        ThreadEngineError::UnknownGroup {
            task: 1,
            group: "dsp".into()
        }
    );
}

/// Decodes a random DAG from bit masks: task `i` depends on an earlier task
/// `j` iff bit `i - 1 - j` of `masks[i]` is set (so at most the 64 nearest
/// predecessors can be direct dependencies).
fn masked_deps(masks: &[u64], i: usize) -> Vec<usize> {
    (i.saturating_sub(64)..i)
        .filter(|&j| masks[i] & (1u64 << (i - 1 - j)) != 0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_dags_complete_and_respect_dependencies(
        masks in proptest::collection::vec(any::<u64>(), 1..48),
        workers in 1usize..9,
    ) {
        let log: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let tasks: Vec<ThreadTask> = masks
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let log = log.clone();
                ThreadTask::new(format!("t{i}"), move || log.lock().push(i))
                    .after(masked_deps(&masks, i))
            })
            .collect();
        let n = tasks.len();
        let report = ThreadedExecutor::new(workers).run(tasks).unwrap();

        let order = log.lock().clone();
        prop_assert_eq!(order.len(), n);
        let mut position = vec![0usize; n];
        for (pos, &task) in order.iter().enumerate() {
            position[task] = pos;
        }
        let mut seen = order.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>()); // each exactly once
        for i in 0..n {
            for d in masked_deps(&masks, i) {
                prop_assert!(
                    position[d] < position[i],
                    "task {} ran before its dependency {}", i, d
                );
            }
        }
        let executed: usize = report.worker_stats.iter().map(|w| w.executed).sum();
        prop_assert_eq!(executed, n);
    }

    #[test]
    fn random_dags_agree_between_engines(
        masks in proptest::collection::vec(any::<u64>(), 1..32),
        workers in 1usize..5,
    ) {
        // Both engines must run the same task set to completion.
        let make = |log: Arc<Mutex<Vec<usize>>>| -> Vec<ThreadTask> {
            masks
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    let log = log.clone();
                    ThreadTask::new(format!("t{i}"), move || log.lock().push(i))
                        .after(masked_deps(&masks, i))
                })
                .collect()
        };
        let ws_log = Arc::new(Mutex::new(Vec::new()));
        let ws = ThreadedExecutor::new(workers).run(make(ws_log.clone())).unwrap();
        let sq_log = Arc::new(Mutex::new(Vec::new()));
        let sq = SingleQueueExecutor::new(workers).run(make(sq_log.clone())).unwrap();
        prop_assert_eq!(ws.tasks.len(), masks.len());
        prop_assert_eq!(sq.tasks.len(), masks.len());
        prop_assert_eq!(ws_log.lock().len(), sq_log.lock().len());
        prop_assert_eq!(sq.total_steals(), 0); // the baseline has no steal concept
    }
}
