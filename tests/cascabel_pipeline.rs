//! End-to-end integration of the Cascabel pipeline (paper Figure 4):
//! annotated source → repository → pre-selection → mapping → codegen →
//! compilation plan → simulated execution, across several PDL targets.

use cascabel::codegen::ProblemSpec;
use cascabel::driver::Cascabel;
use hetero_rt::prelude::*;
use pdl_discover::synthetic;
use simhw::machine::SimMachine;

const VECADD: &str = r#"
#pragma cascabel task : x86 : I_vecadd : vecadd01 : (A: readwrite, B: read)
void vector_add(double *A, double *B) { for (int i = 0; i < N; i++) A[i] += B[i]; }

#pragma cascabel execute I_vecadd : (A:BLOCK:N, B:BLOCK:N)
vector_add(A, B);
"#;

fn simulate_result(
    platform: &pdl_core::platform::Platform,
    graph: &TaskGraph,
) -> hetero_rt::sim_engine::SimReport {
    let machine = SimMachine::from_platform(platform);
    simulate(graph, &machine, &mut HeftScheduler, &SimOptions::default()).unwrap()
}

#[test]
fn vecadd_runs_on_every_platform_without_source_changes() {
    let spec = ProblemSpec::with_size("N", 1 << 20);
    for platform in [
        synthetic::xeon_x5550_host(),
        synthetic::xeon_2gpu_testbed(),
        synthetic::gpgpu_cluster(2, 2),
    ] {
        let mut cc = Cascabel::new(platform.clone());
        let r = cc
            .compile(VECADD, &spec)
            .unwrap_or_else(|e| panic!("{}: {e}", platform.name));
        assert!(!r.output.graph.is_empty(), "{}", platform.name);
        let report = simulate_result(&platform, &r.output.graph);
        assert!(report.makespan.seconds() > 0.0, "{}", platform.name);
    }
}

#[test]
fn pipeline_artifacts_are_complete() {
    let mut cc = Cascabel::new(synthetic::xeon_2gpu_testbed());
    let r = cc
        .compile(VECADD, &ProblemSpec::with_size("N", 4096))
        .unwrap();

    // (1) Repository holds the input task + expert variants.
    let iface = cc.repository().interface("I_vecadd").unwrap();
    assert!(iface.implementations.len() >= 2);
    assert!(iface.has_cpu_fallback());

    // (2) Pre-selection kept something for every used interface.
    let vec_sel = r
        .selections
        .iter()
        .find(|s| s.interface == "I_vecadd")
        .unwrap();
    assert!(vec_sel.kept().count() >= 2); // x86 + OpenCL on this target

    // (3) Generated host program references the runtime.
    assert!(r.output.main_source.contains("starpu_init"));
    assert!(r.output.main_source.contains("starpu_shutdown"));

    // (4) Kernel files per architecture.
    assert!(r.output.kernel_sources.contains_key("x86"));
    assert!(r.output.kernel_sources.contains_key("gpu"));

    // (5) Compilation plan from PDL: gcc for host, nvcc for gpu, starpu lib.
    assert!(r.plan.compiles.iter().any(|c| c.compiler == "gcc"));
    assert!(r.plan.compiles.iter().any(|c| c.compiler == "nvcc"));
    assert!(r.plan.link.libraries.iter().any(|l| l == "starpu"));
}

#[test]
fn execution_group_annotation_controls_placement() {
    let gpu_src = r#"
#pragma cascabel task : x86 : I_vecadd : vecadd01 : (A: readwrite, B: read)
void vector_add(double *A, double *B) { }
#pragma cascabel execute I_vecadd : gpus (A:BLOCK:N, B:BLOCK:N)
vector_add(A, B);
"#;
    let platform = synthetic::xeon_2gpu_testbed();
    let mut cc = Cascabel::new(platform.clone());
    let r = cc
        .compile(gpu_src, &ProblemSpec::with_size("N", 1 << 20))
        .unwrap();
    let report = simulate_result(&platform, &r.output.graph);
    // Every task landed on a gpu-group device.
    let machine = SimMachine::from_platform(&platform);
    for (_, dev) in &report.assignments {
        assert!(
            machine.devices[dev.0].groups.contains(&"gpus".to_string()),
            "task placed on {}",
            machine.devices[dev.0].pu_id
        );
    }
}

#[test]
fn fallback_guarantee_without_gpu_variants() {
    // A task with ONLY the x86 input variant still compiles and runs on the
    // GPU platform (on the CPU workers) — the §IV-C fall-back guarantee.
    let src = r#"
#pragma cascabel task : x86 : I_custom : custom01 : (X: readwrite)
void custom(double *X) { heavy(X); }
#pragma cascabel execute I_custom :
custom(X);
"#;
    let platform = synthetic::xeon_2gpu_testbed();
    let mut cc = Cascabel::with_empty_repository(platform.clone());
    let mut spec = ProblemSpec::default();
    spec.flops_hints.insert("I_custom".into(), 1e9);
    let r = cc.compile(src, &spec).unwrap();
    let report = simulate_result(&platform, &r.output.graph);
    let machine = SimMachine::from_platform(&platform);
    let (_, dev) = report.assignments[0];
    assert_eq!(machine.devices[dev.0].arch, "x86");
}

#[test]
fn unmapped_execution_group_fails_loudly() {
    let src = r#"
#pragma cascabel task : x86 : I_k : k01 : (X: readwrite)
void k(double *X) { }
#pragma cascabel execute I_k : martians (X:BLOCK:N)
k(X);
"#;
    let mut cc = Cascabel::new(synthetic::xeon_x5550_host());
    let err = cc
        .compile(src, &ProblemSpec::with_size("N", 100))
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("martians"), "{msg}");
}

#[test]
fn generated_source_differs_per_platform_but_input_is_identical() {
    let spec = ProblemSpec::with_size("N", 1 << 20);
    let mut a = Cascabel::new(synthetic::xeon_x5550_host());
    let main_cpu = a.compile(VECADD, &spec).unwrap().output.main_source;
    let mut b = Cascabel::new(synthetic::xeon_2gpu_testbed());
    let main_gpu = b.compile(VECADD, &spec).unwrap().output.main_source;
    assert_ne!(main_cpu, main_gpu);
    assert!(main_cpu.contains("xeon-x5550-8core"));
    assert!(main_gpu.contains("xeon-x5550-gtx480-gtx285"));
}
