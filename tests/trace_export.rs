//! Integration tests for the trace exporters: the run-summary JSON must
//! reconcile *exactly* with the engine's `ExecReport` counters, and the
//! Chrome-trace export of a Figure 5 run must carry one PDL-labeled lane
//! per device.

use hetero_rt::prelude::*;
use hetero_trace::json::Json;
use hetero_trace::{chrome, summary};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A grouped fork-join workload on the paper's 2-GPU testbed placement.
fn traced_report() -> (ExecReport, usize) {
    let platform = pdl_discover::synthetic::xeon_2gpu_testbed();
    let placement = Placement::from_logic_groups(&platform, &["@workers-gpus", "gpus"]).unwrap();
    let counter = Arc::new(AtomicUsize::new(0));
    let mut tasks = Vec::new();
    for stage in 0..30 {
        let first = tasks.len();
        for i in 0..16 {
            let c = counter.clone();
            let mut t = ThreadTask::new(format!("s{stage}f{i}"), move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
            if stage > 0 {
                t = t.after([first - 1]);
            }
            if i % 2 == 0 {
                t = t.in_group("gpus");
            }
            tasks.push(t);
        }
        let c = counter.clone();
        tasks.push(
            ThreadTask::new(format!("join{stage}"), move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .after(first..first + 16),
        );
    }
    let n = tasks.len();
    let report = ThreadedExecutor::with_placement(placement)
        .with_trace(TraceSink::ring())
        .run(tasks)
        .unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), n);
    (report, n)
}

#[test]
fn summary_totals_reconcile_exactly_with_exec_report() {
    let (report, n) = traced_report();
    let trace = report.trace.as_ref().unwrap();
    let doc = Json::parse(&summary::export(trace, report.wall.as_nanos() as u64)).unwrap();

    assert_eq!(doc.get("invariant_error"), Some(&Json::Null));
    assert_eq!(
        doc.get("platform").and_then(Json::as_str),
        Some("xeon-x5550-gtx480-gtx285")
    );

    let totals = doc.get("totals").expect("totals object");
    let total = |key: &str| totals.get(key).and_then(Json::as_u64).unwrap();
    assert_eq!(total("tasks"), n as u64);
    assert_eq!(total("tasks_executed"), report.tasks.len() as u64);
    assert_eq!(total("steals"), report.total_steals() as u64);
    assert_eq!(
        total("cross_group_steals"),
        report.total_cross_group_steals() as u64
    );
    assert_eq!(total("busy_ns"), report.total_busy().as_nanos() as u64);
    assert_eq!(total("overwritten"), 0);

    // Per-lane executed counts reconcile with per-worker stats.
    let lanes = doc.get("lanes").unwrap().items();
    assert_eq!(lanes.len(), report.workers);
    for (lane, ws) in lanes.iter().zip(&report.worker_stats) {
        assert_eq!(
            lane.get("tasks_executed").and_then(Json::as_u64),
            Some(ws.executed as u64)
        );
        assert_eq!(
            lane.get("busy_ns").and_then(Json::as_u64),
            Some(ws.busy.as_nanos() as u64)
        );
    }

    // Group utilization covers exactly the placement's groups and stays in
    // [0, 1]; the report-side helper agrees on the group list.
    let util = doc.get("group_utilization").unwrap().items();
    let groups: Vec<&str> = util
        .iter()
        .map(|u| u.get("group").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(groups, ["@workers-gpus", "gpus"]);
    for u in util {
        let v = u.get("utilization").and_then(Json::as_f64).unwrap();
        assert!((0.0..=1.0).contains(&v), "utilization {v} out of range");
    }
    let report_groups: Vec<String> = report
        .utilization_by_group()
        .into_iter()
        .map(|(g, _)| g)
        .collect();
    assert_eq!(report_groups, ["@workers-gpus", "gpus"]);
    assert!(report.busy_fraction() > 0.0 && report.busy_fraction() <= 1.0);
}

#[test]
fn chrome_export_has_group_labeled_lane_per_worker() {
    let (report, _) = traced_report();
    let trace = report.trace.as_ref().unwrap();
    let doc = Json::parse(&chrome::export(trace)).unwrap();
    let events = doc.get("traceEvents").unwrap().items();

    // One thread_name metadata record per worker lane, carrying the PDL PU
    // id and its logic group.
    let lane_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
        })
        .collect();
    let worker_lanes: Vec<&&str> = lane_names.iter().filter(|n| n.contains('[')).collect();
    assert_eq!(worker_lanes.len(), report.workers);
    assert!(worker_lanes
        .iter()
        .all(|n| n.contains("[@workers-gpus]") || n.contains("[gpus]")));

    // Task spans are complete events colored per group with provenance args.
    let spans: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .filter(|e| e.get("cat").and_then(Json::as_str) == Some("task"))
        .collect();
    assert_eq!(spans.len(), report.tasks.len());
    assert!(spans.iter().all(|s| s.get("cname").is_some()));
    assert!(spans
        .iter()
        .any(|s| s.get("args").and_then(|a| a.get("provenance")).is_some()));
}

#[test]
fn fig5_trace_has_one_lane_per_device() {
    let results = bench::fig5::run(2048, 512);
    let row = results.row("starpu+2gpu").unwrap();
    row.trace.validate().expect("fig5 trace is well-formed");

    let machine =
        simhw::machine::SimMachine::from_platform(&pdl_discover::synthetic::xeon_2gpu_testbed());
    assert_eq!(row.trace.meta.lanes.len(), machine.devices.len());

    let doc = Json::parse(&chrome::export(&row.trace)).unwrap();
    let lane_names: Vec<String> = doc
        .get("traceEvents")
        .unwrap()
        .items()
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
        })
        .map(str::to_string)
        .collect();
    // Every device lane is labeled with its PDL logic group.
    for dev in &machine.devices {
        let group = dev.groups.first().cloned().unwrap_or_default();
        assert!(
            lane_names
                .iter()
                .any(|n| n.contains(dev.pu_id.as_str()) && n.contains(&group)),
            "no lane for {} [{group}] in {lane_names:?}",
            dev.pu_id
        );
    }
    // Virtual-time traces are flagged as such in the process metadata.
    let process_names: Vec<&str> = doc
        .get("traceEvents")
        .unwrap()
        .items()
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
        })
        .collect();
    assert!(process_names.iter().any(|n| n.contains("virtual time")));
}

#[test]
fn cascabel_compile_phases_survive_to_fig5_json() {
    let results = bench::fig5::run(2048, 512);
    let doc = results.to_json();
    let phases = doc.get("compile_phases").unwrap().items();
    assert_eq!(phases.len(), 2);
    for entry in phases {
        let names: Vec<&str> = entry
            .get("phases")
            .unwrap()
            .items()
            .iter()
            .map(|p| p.get("name").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(
            names,
            ["parse", "preselect", "mapping", "codegen", "compplan"]
        );
    }
    // The document round-trips through the serializer and parser.
    let reparsed = Json::parse(&doc.to_pretty()).unwrap();
    assert_eq!(reparsed.get("kind").and_then(Json::as_str), Some("fig5"));
}
