//! Differential properties of the calendar-queue event queue.
//!
//! The calendar [`EventQueue`] replaced the `BinaryHeap` queue as the sim
//! core's virtual-time engine (the million-task throughput work); the heap
//! implementation is kept as [`HeapEventQueue`] precisely so these tests
//! can hold the two against each other:
//!
//! * **proptest** — on random schedules (including bursts of simultaneous
//!   timestamps and interleaved schedule/pop sequences), both queues
//!   dequeue the identical `(time, payload)` stream;
//! * **hold model** — a long pop-one/schedule-one run with exponential
//!   increments keeps agreeing step for step, exercising the calendar's
//!   automatic rebuilds at a steady population.

use proptest::prelude::*;
use simhw::events::{EventQueue, HeapEventQueue};
use simhw::SimTime;

/// One scripted operation against both queues.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + delta` (delta may be zero: simultaneous events).
    Schedule { delta_ns: u64 },
    /// Pop the minimum (no-op when empty).
    Pop,
}

fn arb_op() -> impl Strategy<Value = Op> {
    // kind 0..3: schedule a near-now delta (skewed toward zero so
    // simultaneous timestamps are common); 3..5: schedule a far delta;
    // 5..8: pop.
    (0u8..8, 0u64..50, 0u64..2_000_000).prop_map(|(kind, near_ns, far_ns)| match kind {
        0..=2 => Op::Schedule { delta_ns: near_ns },
        3 | 4 => Op::Schedule { delta_ns: far_ns },
        _ => Op::Pop,
    })
}

proptest! {
    /// Identical dequeue order on arbitrary interleavings of schedules
    /// (many at equal timestamps) and pops.
    #[test]
    fn calendar_matches_heap_on_random_streams(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let mut cal: EventQueue<u32> = EventQueue::new();
        let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
        let mut next_payload = 0u32;
        for op in &ops {
            match op {
                Op::Schedule { delta_ns } => {
                    let at = cal.now() + simhw::Duration::new(*delta_ns as f64 * 1e-9);
                    prop_assert_eq!(cal.now(), heap.now());
                    cal.schedule(at, next_payload);
                    heap.schedule(at, next_payload);
                    next_payload += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(cal.pop(), heap.pop());
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.peek_time(), heap.peek_time());
        }
        // Drain: the remaining streams must agree to the end.
        loop {
            let (c, h) = (cal.pop(), heap.pop());
            prop_assert_eq!(c, h);
            if c.is_none() {
                break;
            }
        }
    }
}

/// Deterministic splitmix64 — the repo-wide reproducible RNG idiom.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Steady-state hold run: grows to 10k pending events, then pops and
/// reschedules 100k times with exponential increments. Step-for-step
/// agreement across the calendar's bucket-width rebuilds.
#[test]
fn hold_model_agrees_across_rebuilds() {
    let mut cal: EventQueue<u32> = EventQueue::new();
    let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
    let mut rng = Rng(0xCA1E_4DA5);
    for i in 0..10_000u32 {
        let at = SimTime::new(1e-6 * -(1.0 - rng.unit_f64()).ln());
        cal.schedule(at, i);
        heap.schedule(at, i);
    }
    for _ in 0..100_000 {
        let c = cal.pop().expect("population is constant");
        let h = heap.pop().expect("population is constant");
        assert_eq!(c, h);
        let (at, payload) = c;
        let next = at + simhw::Duration::new(1e-6 * -(1.0 - rng.unit_f64()).ln());
        cal.schedule(next, payload);
        heap.schedule(next, payload);
    }
    assert_eq!(cal.len(), heap.len());
}
