//! Property-based tests over the core invariants (proptest):
//!
//! * XML round-trip: `decode(encode(p)) == p` for arbitrary valid platforms;
//! * validation: randomly generated valid trees pass, mutations fail;
//! * scheduling: every schedule is complete, respects dependencies, and its
//!   makespan is bounded below by work/aggregate-rate and critical path;
//! * coherence: reads always find a valid copy, writers end up exclusive;
//! * DGEMM implementation variants agree with the naive reference.

use hetero_rt::prelude::*;
use pdl_core::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_id() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}".prop_map(|s| s)
}

fn arb_property() -> impl Strategy<Value = Property> {
    (
        "[A-Z][A-Z_]{0,10}",
        // XML decode trims surrounding whitespace from values, so the model
        // canonical form is trimmed text.
        "([a-zA-Z0-9._-][a-zA-Z0-9 ._-]{0,10}[a-zA-Z0-9._-])?",
        any::<bool>(),
    )
        .prop_map(|(name, value, fixed)| {
            if fixed && value.trim().is_empty() {
                // Fixed properties require non-empty values.
                Property::fixed(name, "x")
            } else {
                Property {
                    name,
                    value: PropertyValue::text(value),
                    fixed,
                    subschema: None,
                }
            }
        })
}

/// A random valid platform: 1-2 masters, each with up to 3 hybrids of up to
/// 3 workers plus direct workers, unique ids, random properties/groups.
fn arb_platform() -> impl Strategy<Value = Platform> {
    let pu_payload = (proptest::collection::vec(arb_property(), 0..4), 1u32..4);
    (
        1usize..3,                                       // masters
        proptest::collection::vec(0usize..4, 1..3),      // hybrids per master
        proptest::collection::vec(0usize..3, 1..6),      // workers per node
        proptest::collection::vec(pu_payload, 1..20),    // payload pool
        proptest::collection::vec(any::<bool>(), 1..20), // group flags
    )
        .prop_map(|(masters, hybrids, workers, payloads, groups)| {
            let mut b = Platform::builder("prop");
            let mut uid = 0usize;
            let mut payload_i = 0usize;
            let mut group_i = 0usize;
            let mut all_ids: Vec<String> = Vec::new();
            let mut next_payload = |b: &mut PlatformBuilder, h: PuHandle| {
                let (props, quantity) = payloads[payload_i % payloads.len()].clone();
                payload_i += 1;
                for p in props {
                    b.prop(h, p);
                }
                b.quantity(h, quantity);
            };
            for m in 0..masters {
                let mid = format!("m{m}");
                let mh = b.master(mid.clone());
                all_ids.push(mid);
                next_payload(&mut b, mh);
                let n_hybrids = hybrids[m % hybrids.len()];
                for hx in 0..n_hybrids {
                    uid += 1;
                    let hid = format!("h{uid}");
                    let hh = b.hybrid(mh, hid.clone()).unwrap();
                    all_ids.push(hid);
                    next_payload(&mut b, hh);
                    let n_w = workers[(m + hx) % workers.len()];
                    for _ in 0..n_w {
                        uid += 1;
                        let wid = format!("w{uid}");
                        let wh = b.worker(hh, wid.clone()).unwrap();
                        all_ids.push(wid);
                        next_payload(&mut b, wh);
                        if groups[group_i % groups.len()] {
                            b.group(wh, "g1");
                        }
                        group_i += 1;
                    }
                }
                // One direct worker per master keeps leaves plentiful.
                uid += 1;
                let wid = format!("w{uid}");
                let wh = b.worker(mh, wid.clone()).unwrap();
                all_ids.push(wid);
                next_payload(&mut b, wh);
            }
            // Interconnects between some consecutive id pairs.
            for pair in all_ids.windows(2).step_by(2) {
                b.interconnect(Interconnect::new("link", pair[0].clone(), pair[1].clone()));
            }
            b.build().expect("generator produces valid platforms")
        })
}

// ---------------------------------------------------------------------------
// XML round-trip
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xml_round_trip_is_identity(p in arb_platform()) {
        let xml = pdl_xml::to_xml(&p);
        let back = pdl_xml::from_xml(&xml)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n{xml}"));
        prop_assert_eq!(back, p);
    }

    #[test]
    fn generated_platforms_validate(p in arb_platform()) {
        prop_assert!(p.issues().is_empty(), "{:?}", p.issues());
    }

    #[test]
    fn text_escaping_survives_attributes_and_text(
        value in "[ -~]{0,24}" // any printable ASCII incl. <>&'"
    ) {
        let mut b = Platform::builder("esc");
        let m = b.master("0");
        // Unfixed so empty values stay legal.
        b.prop(m, Property::unfixed("PAYLOAD", value.clone()));
        let p = b.build().unwrap();
        let xml = pdl_xml::to_xml(&p);
        let back = pdl_xml::from_xml(&xml).unwrap();
        let (_, master) = back.pu_by_id("0").unwrap();
        // XML decode normalizes surrounding whitespace; inner content is
        // preserved exactly (escaping included).
        prop_assert_eq!(master.descriptor.value("PAYLOAD").unwrap(), value.trim());
    }
}

// ---------------------------------------------------------------------------
// Validation catches mutations
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn duplicate_ids_always_caught(id in arb_id()) {
        let mut b = Platform::builder("dup");
        let m = b.master(id.clone());
        b.worker(m, id.clone()).unwrap();
        let p = b.build_unchecked();
        prop_assert!(p
            .issues()
            .iter()
            .any(|i| matches!(i, ValidationIssue::DuplicatePuId(_))));
    }

    #[test]
    fn zero_quantity_always_caught(p in arb_platform()) {
        // Take the platform, rebuild with one PU's quantity forced to 0.
        let mut b = Platform::builder("z");
        let m = b.master("m");
        b.quantity(m, 0);
        let bad = b.build_unchecked();
        prop_assert!(!bad.issues().is_empty());
        // And the original is unaffected.
        prop_assert!(p.issues().is_empty());
    }
}

// ---------------------------------------------------------------------------
// Scheduling invariants
// ---------------------------------------------------------------------------

/// Random task graph: chain/parallel mix over a few data handles.
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (proptest::collection::vec(
        (0usize..4, 1u64..100, any::<bool>()),
        1..40,
    ),)
        .prop_map(|(tasks,)| {
            let mut g = TaskGraph::new();
            let c = g.add_codelet(
                Codelet::new("k")
                    .with_variant(Variant::new("x86"))
                    .with_variant(Variant::new("gpu").requiring("Cuda")),
            );
            let handles: Vec<_> = (0..4)
                .map(|i| g.register_data(format!("d{i}"), 1e6))
                .collect();
            for (i, (h, mflops, writes)) in tasks.into_iter().enumerate() {
                let mode = if writes {
                    AccessMode::ReadWrite
                } else {
                    AccessMode::Read
                };
                g.submit(
                    c,
                    format!("t{i}"),
                    mflops as f64 * 1e6,
                    vec![DataAccess {
                        handle: handles[h],
                        mode,
                    }],
                    None,
                );
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedules_are_complete_and_dependency_safe(
        graph in arb_graph(),
        policy_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let machine = simhw::machine::SimMachine::from_platform(
            &pdl_discover::synthetic::xeon_2gpu_testbed(),
        );
        let mut policy: Box<dyn Scheduler> = match policy_idx {
            0 => Box::new(EagerScheduler),
            1 => Box::new(HeftScheduler),
            2 => Box::new(RandomScheduler::new(seed)),
            _ => Box::new(RoundRobinScheduler::default()),
        };
        let report = simulate(&graph, &machine, policy.as_mut(), &SimOptions::default()).unwrap();

        // Completeness: every task exactly once.
        prop_assert_eq!(report.assignments.len(), graph.len());
        let mut seen: Vec<usize> = report.assignments.iter().map(|(t, _)| t.0).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), graph.len());

        // Lower bounds: makespan ≥ total work / aggregate rate, and
        // ≥ critical path / fastest device.
        let total_rate = machine.total_flops_dp();
        let fastest = machine.devices.iter().map(|d| d.flops_dp).fold(0.0, f64::max);
        let lb1 = graph.total_flops() / total_rate;
        let lb2 = graph.critical_path_flops() / fastest;
        prop_assert!(report.makespan.seconds() >= lb1 - 1e-9,
            "makespan {} < work bound {}", report.makespan.seconds(), lb1);
        prop_assert!(report.makespan.seconds() >= lb2 - 1e-9,
            "makespan {} < critical-path bound {}", report.makespan.seconds(), lb2);
    }

    #[test]
    fn heft_never_loses_to_random_by_much(graph in arb_graph(), seed in any::<u64>()) {
        let machine = simhw::machine::SimMachine::from_platform(
            &pdl_discover::synthetic::xeon_2gpu_testbed(),
        );
        let heft = simulate(&graph, &machine, &mut HeftScheduler, &SimOptions::default())
            .unwrap()
            .makespan
            .seconds();
        let random = simulate(
            &graph,
            &machine,
            &mut RandomScheduler::new(seed),
            &SimOptions::default(),
        )
        .unwrap()
        .makespan
        .seconds();
        // HEFT is greedy, not optimal, but should never be drastically worse.
        prop_assert!(heft <= random * 1.5 + 1e-9, "heft {heft} vs random {random}");
    }
}

// ---------------------------------------------------------------------------
// Coherence invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coherence_never_loses_data(ops in proptest::collection::vec(
        (0usize..8, 0u8..3), 1..60
    )) {
        use hetero_rt::data::{DataRegistry, HOST};
        let machine = simhw::machine::SimMachine::from_platform(
            &pdl_discover::synthetic::xeon_2gpu_testbed(),
        );
        let mut reg = DataRegistry::new();
        let h = reg.register("d", 1e6);
        for (dev, mode) in ops {
            let device = machine.devices[dev % machine.len()].id;
            let mode = match mode {
                0 => AccessMode::Read,
                1 => AccessMode::Write,
                _ => AccessMode::ReadWrite,
            };
            reg.acquire(&machine, h, device, mode);
            // Invariant: at least one valid copy exists, and after a write
            // the writer holds one.
            prop_assert!(!reg.valid_on(h).is_empty());
            if mode.writes() {
                prop_assert!(reg.is_valid_on(h, device));
                prop_assert_eq!(reg.valid_on(h).len(), 1);
            }
        }
        // Data can always be recovered to the host.
        reg.flush_to_host(&machine, h);
        prop_assert!(reg.is_valid_on(h, HOST));
    }
}

// ---------------------------------------------------------------------------
// Kernel variants agree
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dgemm_variants_agree(
        n in 1usize..24,
        block in 1usize..9,
        seed in any::<u64>(),
    ) {
        use kernels::dgemm::*;
        let f = |i: usize, j: usize, s: u64| {
            (((i as u64 * 31 + j as u64 * 17) ^ s) % 13) as f64 - 6.0
        };
        let a = Matrix::from_fn(n, |i, j| f(i, j, seed));
        let b = Matrix::from_fn(n, |i, j| f(j, i, seed.rotate_left(7)));

        let mut reference = Matrix::zeros(n);
        dgemm_naive(&a, &b, &mut reference);

        let mut blocked = Matrix::zeros(n);
        dgemm_blocked(&a, &b, &mut blocked, block);
        prop_assert!(blocked.max_abs_diff(&reference) < 1e-9);

        let mut transposed = Matrix::zeros(n);
        dgemm_transposed(&a, &b, &mut transposed);
        prop_assert!(transposed.max_abs_diff(&reference) < 1e-9);

        // Tiled coverage with an arbitrary tile size.
        let tile = block.min(n).max(1);
        let tiles = n.div_ceil(tile);
        let mut tiled = Matrix::zeros(n);
        for ti in 0..tiles {
            for tj in 0..tiles {
                for tk in 0..tiles {
                    dgemm_tile(&a, &b, &mut tiled, tile, ti, tj, tk);
                }
            }
        }
        prop_assert!(tiled.max_abs_diff(&reference) < 1e-9);
    }

    #[test]
    fn vecadd_block_decomposition_agrees(
        n in 0usize..2000,
        chunks in 1usize..17,
    ) {
        use kernels::vecadd::*;
        let mut full: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let mut chunked = full.clone();
        vecadd(&mut full, &b);
        for (lo, hi) in block_ranges(n, chunks) {
            vecadd_chunk(&mut chunked, &b, lo, hi);
        }
        prop_assert_eq!(full, chunked);
    }
}
