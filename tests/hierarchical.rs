//! Hierarchical control (paper Figure 2): a front-end Master delegates work
//! to Hybrid nodes; each node schedules its own sub-hierarchy through its
//! *Master face* (`Platform::subplatform`).

use hetero_rt::prelude::*;
use pdl_discover::synthetic;
use simhw::machine::SimMachine;

#[test]
fn node_local_scheduling_through_subplatform() {
    let cluster = synthetic::gpgpu_cluster(3, 2);

    // The front-end partitions the DGEMM across nodes; each node view is a
    // standalone platform with the Hybrid promoted to Master.
    let node_views: Vec<_> = cluster
        .hybrids()
        .map(|(idx, _)| cluster.subplatform(idx))
        .collect();
    assert_eq!(node_views.len(), 3);

    let mut total = 0.0;
    for view in &node_views {
        view.validate().unwrap();
        // Node view: 1 promoted Master + 2 GPU workers.
        assert_eq!(view.masters().count(), 1);
        assert_eq!(view.workers().count(), 2);

        let machine = SimMachine::from_platform(view);
        assert_eq!(machine.len(), 2); // the two GPUs

        // One third of an 8192 DGEMM per node (row-block split).
        let graph = kernels::graphs::dgemm_graph(4096, 1024, None);
        let report =
            simulate(&graph, &machine, &mut HeftScheduler, &SimOptions::default()).unwrap();
        assert!(report.makespan.seconds() > 0.0);
        total += report.makespan.seconds();
    }
    assert!(total > 0.0);
}

#[test]
fn subplatform_views_are_serializable_descriptors() {
    // A node view is itself a PDL document — it can be shipped to the node
    // (the paper's "concrete platform information can be made available at
    // multiple levels of heterogeneous toolchains").
    let cluster = synthetic::gpgpu_cluster(2, 2);
    let (idx, _) = cluster.hybrids().next().unwrap();
    let view = cluster.subplatform(idx);
    let xml = pdl_xml::to_xml(&view);
    let back = pdl_xml::from_xml(&xml).unwrap();
    assert_eq!(back, view);
}

#[test]
fn whole_cluster_vs_per_node_decomposition() {
    // Scheduling the full problem on the whole cluster must not be slower
    // than the *sum* of serialized per-node thirds (it can exploit all six
    // GPUs at once).
    let cluster = synthetic::gpgpu_cluster(3, 2);
    let machine = SimMachine::from_platform(&cluster);
    assert_eq!(machine.len(), 6);
    let full = kernels::graphs::dgemm_graph(8192, 1024, None);
    let whole = simulate(&full, &machine, &mut HeftScheduler, &SimOptions::default())
        .unwrap()
        .makespan
        .seconds();

    let mut serialized = 0.0;
    for (idx, _) in cluster.hybrids() {
        let view = cluster.subplatform(idx);
        let m = SimMachine::from_platform(&view);
        let part = kernels::graphs::dgemm_graph(4096, 1024, None);
        serialized += simulate(&part, &m, &mut HeftScheduler, &SimOptions::default())
            .unwrap()
            .makespan
            .seconds();
    }
    assert!(
        whole < serialized,
        "whole-cluster {whole} !< serialized per-node {serialized}"
    );
}
