//! Robustness: no input — however malformed — may panic any parser in the
//! toolchain. Errors must come back as values.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn xml_parser_never_panics(input in ".{0,200}") {
        let _ = pdl_xml::parse_document(&input);
    }

    #[test]
    fn xml_parser_never_panics_on_tag_soup(
        input in "[<>/a-z \"=&;!\\[\\]-]{0,120}"
    ) {
        let _ = pdl_xml::parse_document(&input);
    }

    #[test]
    fn full_pdl_pipeline_never_panics(input in ".{0,200}") {
        let _ = pdl_xml::from_xml(&input);
    }

    #[test]
    fn selector_parser_never_panics(input in ".{0,80}") {
        let _ = input.parse::<pdl_query::Selector>();
    }

    #[test]
    fn group_expr_never_panics(input in ".{0,80}") {
        let p = pdl_core::patterns::host_device(2);
        let _ = pdl_query::resolve_groups(&p, &input);
    }

    #[test]
    fn c_lexer_never_panics(input in ".{0,200}") {
        let _ = cascabel::lex::lex(&input);
    }

    #[test]
    fn cascabel_frontend_never_panics(input in ".{0,200}") {
        let _ = cascabel::parse::parse_program(&input);
    }

    #[test]
    fn pragma_parser_never_panics(input in "#pragma cascabel .{0,100}") {
        let _ = cascabel::pragma::parse_pragma(&input);
    }

    #[test]
    fn version_parser_never_panics(input in ".{0,30}") {
        let _ = input.parse::<pdl_core::version::Version>();
    }

    #[test]
    fn unit_parser_never_panics(input in ".{0,20}") {
        let _ = input.parse::<pdl_core::units::Unit>();
    }
}

/// Curated nasty inputs that have broken real XML parsers.
#[test]
fn xml_edge_case_corpus() {
    let corpus = [
        "",
        " ",
        "<",
        "<a",
        "<a>",
        "</a>",
        "<a/></a>",
        "<a><b></a></b>",
        "<a a=\"1\" a=\"2\"/>",
        "<a>&#xFFFFFFFF;</a>",
        "<a>&#0;</a>",
        "<!---->",
        "<!-- -- -->",
        "<![CDATA[",
        "<a><![CDATA[]]></a>",
        "<?xml?><?xml?><a/>",
        "<a xmlns:x=\"u\"><x:b/></a>",
        "<a>\u{0}</a>",
        "<\u{feff}a/>",
        "<a b=c/>",
        "<a 1=\"2\"/>",
        "<a>&amp</a>",
        "<a>&verylongentitynamethatoverflows;</a>",
    ];
    for src in corpus {
        // Must return, never panic; many are errors, a few parse.
        let _ = pdl_xml::parse_document(src);
    }
}

/// Curated nasty cascabel inputs.
#[test]
fn cascabel_edge_case_corpus() {
    let corpus = [
        "#pragma cascabel",
        "#pragma cascabel task",
        "#pragma cascabel task : : : :",
        "#pragma cascabel task : x86 : a : b : (",
        "#pragma cascabel execute",
        "#pragma cascabel execute : ()",
        "#pragma cascabel task : x86 : a : b : ()\n",
        "#pragma cascabel task : x86 : a : b : ()\nvoid",
        "#pragma cascabel task : x86 : a : b : ()\nvoid f(",
        "#pragma cascabel task : x86 : a : b : ()\nvoid f() {",
        "#pragma cascabel execute a : g\nf(",
        "#pragma cascabel execute a : g\nf()",
        "/* unterminated",
        "\"unterminated",
    ];
    for src in corpus {
        let _ = cascabel::parse::parse_program(src);
    }
}
