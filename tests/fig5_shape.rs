//! Shape assertions for the Figure 5 reproduction: speedup ordering and
//! rough factors must match the paper's reported behaviour (we do not match
//! absolute numbers — the substrate is a PDL-parameterized simulator, see
//! DESIGN.md).

use bench::fig5;

#[test]
fn figure5_paper_scale_ordering_and_factors() {
    let r = fig5::run_paper_scale();
    let single = r.row("single").unwrap();
    let starpu = r.row("starpu").unwrap();
    let gpu = r.row("starpu+2gpu").unwrap();

    // Ordering: single < starpu < starpu+2gpu.
    assert_eq!(single.speedup, 1.0);
    assert!(starpu.speedup > 1.0);
    assert!(gpu.speedup > starpu.speedup);

    // Factors: 8 cores bound the multicore version at ≤ 8×; the paper shows
    // it close to that bound for 8192² DGEMM.
    assert!(
        starpu.speedup > 5.0 && starpu.speedup <= 8.05,
        "starpu speedup {}",
        starpu.speedup
    );
    // GPUs dominate clearly (paper: roughly 2.5-3× over the CPU version).
    assert!(
        gpu.speedup / starpu.speedup > 1.5,
        "gpu/starpu ratio {}",
        gpu.speedup / starpu.speedup
    );
    // …but not absurdly (sanity upper bound from aggregate FLOP rates).
    assert!(gpu.speedup < 40.0, "gpu speedup {}", gpu.speedup);
}

#[test]
fn figure5_gpu_run_uses_both_gpus() {
    let r = fig5::run_paper_scale();
    let gpu = r.row("starpu+2gpu").unwrap();
    let util = |pu: &str| {
        gpu.utilization
            .iter()
            .find(|(name, _)| name == pu)
            .map(|(_, u)| *u)
            .unwrap_or(0.0)
    };
    // Both GPUs carry real load; the faster GTX 480 is at least as busy in
    // compute terms as the GTX 285 is (HEFT prefers it).
    assert!(util("gpu0") > 0.3, "gpu0 {}", util("gpu0"));
    assert!(util("gpu1") > 0.2, "gpu1 {}", util("gpu1"));
}

#[test]
fn figure5_transfers_only_in_gpu_configuration() {
    let r = fig5::run_paper_scale();
    assert_eq!(r.row("single").unwrap().bytes_to_devices, 0.0);
    assert_eq!(r.row("starpu").unwrap().bytes_to_devices, 0.0);
    let moved = r.row("starpu+2gpu").unwrap().bytes_to_devices;
    // At least the touched tiles of A, B and C must cross PCIe once.
    assert!(moved > 100e6, "only {moved} bytes moved");
}

#[test]
fn figure5_shape_is_stable_across_problem_sizes() {
    // The qualitative result must not depend on the exact matrix size.
    for (n, tile) in [(4096, 1024), (8192, 2048)] {
        let r = fig5::run(n, tile);
        let starpu = r.row("starpu").unwrap().speedup;
        let gpu = r.row("starpu+2gpu").unwrap().speedup;
        assert!(
            gpu > starpu && starpu > 4.0,
            "n={n}: starpu {starpu}, gpu {gpu}"
        );
    }
}

#[test]
fn smaller_matrices_reduce_gpu_advantage() {
    // Transfer costs amortize worse at small sizes — the crossover
    // behaviour any real offload system shows.
    let small = fig5::run(1024, 256);
    let large = fig5::run(8192, 2048);
    let ratio = |r: &fig5::Fig5Results| {
        r.row("starpu+2gpu").unwrap().speedup / r.row("starpu").unwrap().speedup
    };
    assert!(
        ratio(&large) > ratio(&small),
        "large {} !> small {}",
        ratio(&large),
        ratio(&small)
    );
}
