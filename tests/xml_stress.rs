//! Stress and scale tests for the XML pipeline: large generated platforms
//! must round-trip exactly and within sane costs, and deeply nested /
//! wide documents must not break the parser.

use pdl_core::prelude::*;

#[test]
fn thousand_pu_cluster_round_trips() {
    let platform = pdl_discover::synthetic::gpgpu_cluster(250, 3); // 1 + 250 + 750 PUs
    assert_eq!(platform.len(), 1001);
    let xml = pdl_xml::to_xml(&platform);
    assert!(
        xml.len() > 100_000,
        "non-trivial document: {} bytes",
        xml.len()
    );
    let back = pdl_xml::from_xml(&xml).unwrap();
    assert_eq!(back, platform);
}

#[test]
fn quantity_expansion_scales() {
    let platform = pdl_discover::synthetic::numa_host(8, 64);
    let expanded = platform.expand_quantities();
    assert_eq!(expanded.workers().count(), 8 * 64);
    expanded.validate().unwrap();
    // Expanded form round-trips too.
    let xml = pdl_xml::to_xml(&expanded);
    assert_eq!(pdl_xml::from_xml(&xml).unwrap(), expanded);
}

#[test]
fn wide_descriptor_many_properties() {
    let mut b = Platform::builder("wide");
    let m = b.master("0");
    for i in 0..500 {
        b.prop(m, Property::fixed(format!("P{i}"), format!("v{i}")));
    }
    let p = b.build().unwrap();
    let back = pdl_xml::from_xml(&pdl_xml::to_xml(&p)).unwrap();
    assert_eq!(back, p);
    let (_, master) = back.pu_by_id("0").unwrap();
    assert_eq!(master.descriptor.len(), 500);
    assert_eq!(master.descriptor.value("P250"), Some("v250"));
}

#[test]
fn deep_hybrid_chain() {
    // A 60-level control chain: Master → Hybrid^58 → Worker.
    let mut b = Platform::builder("deep");
    let mut cur = b.master("n0");
    for i in 1..59 {
        cur = b.hybrid(cur, format!("n{i}")).unwrap();
    }
    b.worker(cur, "leaf").unwrap();
    let p = b.build().unwrap();
    assert_eq!(p.height(), 59);
    let back = pdl_xml::from_xml(&pdl_xml::to_xml(&p)).unwrap();
    assert_eq!(back, p);
    let leaf = back.index_of("leaf").unwrap();
    assert_eq!(back.depth(leaf), 59);
    assert_eq!(back.controllers(leaf).len(), 59);
}

#[test]
fn selector_and_routing_work_at_scale() {
    let platform = pdl_discover::synthetic::gpgpu_cluster(100, 2);
    let gpus = pdl_query::query(&platform, "//Worker[@ARCHITECTURE='gpu']").unwrap();
    assert_eq!(gpus.len(), 200);
    // Route across the whole cluster: frontend → last GPU via IB + PCIe.
    let r = pdl_query::route(&platform, "frontend", "node99gpu1", 64e6).unwrap();
    assert_eq!(r.hops.len(), 2);
    // Bottleneck is the Infiniband link (3.2 GB/s < 6 GB/s PCIe).
    assert!((r.bottleneck_bps - 3.2e9).abs() < 1e6);
}

#[test]
fn simulation_handles_hundreds_of_devices() {
    use hetero_rt::prelude::*;
    let platform = pdl_discover::synthetic::gpgpu_cluster(100, 2);
    let machine = simhw::machine::SimMachine::from_platform(&platform);
    assert_eq!(machine.len(), 200);
    let graph = kernels::graphs::dgemm_graph(8192, 512, None); // 4096 tasks
    let report = simulate(
        &graph,
        &machine,
        &mut EagerScheduler,
        &SimOptions::default(),
    )
    .unwrap();
    assert_eq!(report.assignments.len(), 4096);
    // 200 GPUs at ~100 GF/s each: the 1.1 TFLOP problem finishes fast.
    assert!(report.makespan.seconds() < 10.0);
}
