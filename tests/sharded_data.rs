//! Differential fuzzing of the **sharded** data layer: random
//! concurrent-ish action sequences (interleaved across handles that live
//! on different shards) replayed against the pure `hetero-model` oracle
//! AND [`ShardedDataRegistry`], failing on any divergence in valid sets,
//! routing class, probe values or charged bytes — the same oracle harness
//! `tests/model_differential.rs` runs against the plain registry.
//!
//! The sharded registry adds RCU snapshots and per-shard writer locks on
//! top of the identical `hetero_model::proto` transitions; what can break
//! is the publish/pin glue (lost updates, stale snapshots, slot mapping),
//! so the fuzzer linearizes every interleaving the per-shard locks allow
//! and checks the registry tracks the model exactly. A separate test runs
//! true multi-threaded traffic on disjoint handles and checks the final
//! state equals a sequential replay.

use hetero_model::model::{Action, Model, Mutation, State, StepEffects};
use hetero_model::proto::{Node, PlanClass};
use hetero_rt::data::{model_topo, HandleId, TransferPlan, HOST};
use hetero_rt::prelude::*;
use hetero_rt::sharded_data::{ShardedDataRegistry, SHARD_COUNT};
use pdl_discover::synthetic;
use simhw::machine::{DeviceId, SimMachine};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Handle payload sizes: one large datum (transfer-dominated) and one
/// small (latency-dominated), matching the bounded model-check configs.
/// With ids 0 and 1 the two handles land on different shards, so the
/// interleaved sequences genuinely cross shard boundaries.
const SIZES: [f64; 2] = [600e6, 1e6];
const MAX_PENDING: usize = 2;

/// Deterministic splitmix-style PRNG — no external crates, stable across
/// runs so any failure is reproducible from its printed seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

struct Harness {
    machine: SimMachine,
    /// Model device index `i` is runtime device `devices[i]`.
    devices: Vec<DeviceId>,
    model: Model,
}

impl Harness {
    fn new(platform_name: &str, mutation: Mutation) -> Harness {
        let platform = match platform_name {
            "pcie" => synthetic::xeon_2gpu_testbed(),
            "nvlink" => synthetic::xeon_2gpu_nvlink_testbed(),
            other => panic!("unknown platform {other}"),
        };
        let machine = SimMachine::from_platform(&platform);
        let devices: Vec<DeviceId> = ["cpu0", "gpu0", "gpu1"]
            .iter()
            .map(|pu| machine.device_by_pu(pu).unwrap().id)
            .collect();
        let topos = SIZES
            .iter()
            .map(|&size| model_topo(&machine, platform_name, &devices, size))
            .collect();
        Harness {
            machine,
            devices,
            model: Model::new(topos).with_mutation(mutation),
        }
    }

    fn registry(&self) -> (ShardedDataRegistry, Vec<HandleId>) {
        let reg = ShardedDataRegistry::new();
        let handles = SIZES
            .iter()
            .enumerate()
            .map(|(i, &size)| reg.register(format!("h{i}"), size))
            .collect();
        (reg, handles)
    }

    /// The model's valid set for handle `h`, mapped into runtime ids.
    fn mapped_valid(&self, state: &State, h: usize) -> BTreeSet<DeviceId> {
        state.handles[h]
            .valid()
            .into_iter()
            .map(|n| match n {
                Node::Host => HOST,
                Node::Dev(i) => self.devices[i],
            })
            .collect()
    }

    /// Runs one random sequence, returning a divergence description or
    /// `None` when model and registry agreed on every step.
    fn run_sequence(&self, seed: u64, len: usize) -> Option<String> {
        let mut rng = Rng(seed);
        let (reg, handles) = self.registry();
        let mut state = self.model.initial();

        for step in 0..len {
            let action = match self.propose(&mut rng, &state) {
                Some(a) => a,
                None => continue,
            };
            let (next, effects) = self.model.step(&state, action);

            let ctx = |what: &str| format!("seed {seed} step {step} `{action}`: {what}");
            match action {
                Action::Acquire {
                    handle,
                    dev,
                    mode,
                    routing,
                } => {
                    let (h, d) = (handles[handle], self.devices[dev]);
                    let probe = reg.probe_acquire_via(&self.machine, h, d, mode, routing);
                    let plan = reg.plan_acquire(&self.machine, h, d, mode, routing);
                    if probe.seconds() != effects.probe {
                        return Some(ctx(&format!(
                            "probe {} != model {}",
                            probe.seconds(),
                            effects.probe
                        )));
                    }
                    if class_of(&plan) != effects.class {
                        return Some(ctx(&format!(
                            "class {:?} != model {:?}",
                            class_of(&plan),
                            effects.class
                        )));
                    }
                    if let Some(d) = self.check_commit(&reg, &plan, &effects, SIZES[handle]) {
                        return Some(ctx(&d));
                    }
                }
                Action::Finish { handle, dev, mode } => {
                    reg.finish_access(handles[handle], self.devices[dev], mode);
                }
                Action::Flush { handle } => {
                    let plan = reg.plan_flush(&self.machine, handles[handle]);
                    if plan.total().seconds() != effects.probe {
                        return Some(ctx(&format!(
                            "flush cost {} != model {}",
                            plan.total().seconds(),
                            effects.probe
                        )));
                    }
                    if let Some(d) = self.check_commit(&reg, &plan, &effects, SIZES[handle]) {
                        return Some(ctx(&d));
                    }
                }
            }

            state = next;
            for (hi, &h) in handles.iter().enumerate() {
                let want = self.mapped_valid(&state, hi);
                if reg.valid_on(h) != want {
                    return Some(ctx(&format!(
                        "valid set of h{hi}: registry {:?} != model {want:?}",
                        reg.valid_on(h)
                    )));
                }
            }
        }
        None
    }

    /// Commits `plan` on the registry and compares the byte-counter deltas
    /// against the model's hop charges (hop count × datum size, exact).
    fn check_commit(
        &self,
        reg: &ShardedDataRegistry,
        plan: &TransferPlan,
        effects: &StepEffects,
        size: f64,
    ) -> Option<String> {
        let before = (
            reg.bytes_to_devices(),
            reg.bytes_to_host(),
            reg.bytes_peer(),
        );
        reg.commit(plan);
        let deltas = (
            reg.bytes_to_devices() - before.0,
            reg.bytes_to_host() - before.1,
            reg.bytes_peer() - before.2,
        );
        let want = (
            f64::from(effects.charges.to_device_hops) * size,
            f64::from(effects.charges.to_host_hops) * size,
            f64::from(effects.charges.peer_hops) * size,
        );
        (deltas != want).then(|| format!("charged bytes {deltas:?} != model {want:?}"))
    }

    /// Proposes one random enabled action (or `None` for a skipped draw).
    fn propose(&self, rng: &mut Rng, state: &State) -> Option<Action> {
        let handle = rng.pick(SIZES.len());
        match rng.pick(4) {
            0 | 1 => {
                if state.handles[handle].pending.len() >= MAX_PENDING {
                    return None;
                }
                let mode =
                    [AccessMode::Read, AccessMode::Write, AccessMode::ReadWrite][rng.pick(3)];
                let routing = [Routing::HostStaged, Routing::PeerToPeer][rng.pick(2)];
                Some(Action::Acquire {
                    handle,
                    dev: rng.pick(self.devices.len()),
                    mode,
                    routing,
                })
            }
            2 => {
                let pending = &state.handles[handle].pending;
                if pending.is_empty() {
                    return None;
                }
                let (dev, mode) = pending[rng.pick(pending.len())];
                Some(Action::Finish { handle, dev, mode })
            }
            _ => Some(Action::Flush { handle }),
        }
    }
}

/// Routing class the decorated plan realizes, computed independently of
/// the model's classification.
fn class_of(plan: &TransferPlan) -> PlanClass {
    let physical = |h: &&hetero_rt::data::TransferHop| !h.links.is_empty() || h.bytes > 0.0;
    if plan
        .hops
        .iter()
        .any(|h| physical(&h) && h.from != HOST && h.to != HOST)
    {
        PlanClass::Peer
    } else if plan.hops.iter().any(|h| physical(&h)) {
        PlanClass::Staged
    } else {
        PlanClass::Local
    }
}

#[test]
fn ten_thousand_sequences_agree_on_both_platforms() {
    // 5 000 sequences × 2 platforms = 10 000, each up to 12 actions, all
    // from a fixed seed so failures replay exactly.
    for platform in ["pcie", "nvlink"] {
        let harness = Harness::new(platform, Mutation::None);
        for seq in 0..5_000u64 {
            let seed = 0x5AAD ^ (seq << 8);
            if let Some(divergence) = harness.run_sequence(seed, 12) {
                panic!("{platform}: {divergence}");
            }
        }
    }
}

#[test]
fn injected_single_writer_bug_diverges_quickly() {
    // With SkipWriteInvalidate in the oracle, the first finished write
    // that had other copies valid must diverge from the sharded registry
    // (which invalidates correctly) — proof the fuzzer would notice a
    // publish/pin bug that dropped a transition.
    let harness = Harness::new("nvlink", Mutation::SkipWriteInvalidate);
    let diverged = (0..200u64).find_map(|seq| harness.run_sequence(0xBAD5 ^ (seq << 8), 12));
    let msg = diverged.expect("mutated oracle never diverged in 200 sequences");
    assert!(
        msg.contains("valid set"),
        "unexpected divergence kind: {msg}"
    );
}

#[test]
fn concurrent_disjoint_traffic_matches_sequential_replay() {
    // True concurrency: 4 threads each own a disjoint set of handles and
    // replay a deterministic per-thread op stream. Handles of different
    // threads still collide on shards (ids interleave mod SHARD_COUNT), so
    // the per-shard writer serialization is genuinely exercised. Because
    // per-handle state is independent and byte counters are additive, the
    // end state must equal a single-threaded replay of the same streams.
    const THREADS: usize = 4;
    const HANDLES_PER_THREAD: usize = SHARD_COUNT / 2;
    const OPS: usize = 400;

    let machine = SimMachine::from_platform(&synthetic::xeon_2gpu_nvlink_testbed());
    let devices: Vec<DeviceId> = ["cpu0", "gpu0", "gpu1"]
        .iter()
        .map(|pu| machine.device_by_pu(pu).unwrap().id)
        .collect();

    let setup = || {
        let reg = ShardedDataRegistry::new();
        let handles: Vec<HandleId> = (0..THREADS * HANDLES_PER_THREAD)
            .map(|i| reg.register(format!("h{i}"), if i % 2 == 0 { 600e6 } else { 1e6 }))
            .collect();
        (reg, handles)
    };
    // One op stream per thread, derived from a fixed seed.
    let replay = |reg: &ShardedDataRegistry, handles: &[HandleId], t: usize| {
        let mut rng = Rng(0xD15C0 + t as u64);
        for _ in 0..OPS {
            let h = handles[t * HANDLES_PER_THREAD + rng.pick(HANDLES_PER_THREAD)];
            let dev = devices[rng.pick(devices.len())];
            let mode = [AccessMode::Read, AccessMode::Write, AccessMode::ReadWrite][rng.pick(3)];
            let routing = [Routing::HostStaged, Routing::PeerToPeer][rng.pick(2)];
            match rng.pick(4) {
                0..=2 => {
                    reg.acquire_via(&machine, h, dev, mode, routing);
                }
                _ => {
                    reg.flush_to_host(&machine, h);
                }
            }
        }
    };

    let (concurrent, handles) = setup();
    let concurrent = Arc::new(concurrent);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let reg = concurrent.clone();
            let handles = handles.clone();
            scope.spawn(move || replay(&reg, &handles, t));
        }
    });

    let (sequential, seq_handles) = setup();
    for t in 0..THREADS {
        replay(&sequential, &seq_handles, t);
    }

    for (&a, &b) in handles.iter().zip(&seq_handles) {
        assert_eq!(
            concurrent.valid_on(a),
            sequential.valid_on(b),
            "valid set of {a} diverged between concurrent and sequential runs"
        );
    }
    assert_eq!(concurrent.bytes_to_devices(), sequential.bytes_to_devices());
    assert_eq!(concurrent.bytes_to_host(), sequential.bytes_to_host());
    assert_eq!(concurrent.bytes_peer(), sequential.bytes_peer());
}
