//! Corpus tests for the `pdl-analyze` diagnostics engine.
//!
//! * every known-bad fixture under `examples/bad/` produces *exactly* the
//!   diagnostic codes its `expect:` header declares (golden, multiset match);
//! * the good corpus (`examples/platforms/`, `examples/programs/`) is clean —
//!   zero diagnostics, not merely zero errors;
//! * randomly generated well-formed platforms never produce diagnostics
//!   (no false positives, property-based);
//! * the Figure 5 DGEMM pipeline round-trips through the trace-replay
//!   checker: a faithful simulated trace verifies clean, a corrupted one is
//!   caught.

use pdl_analyze::expect::parse_expectation;
use pdl_analyze::{analyze_platform, analyze_source_file};
use pdl_core::platform::Platform;
use std::path::Path;

fn repo_path(rel: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn load_builtin(name: &str) -> Platform {
    pdl_discover::catalog::Catalog::with_builtin_platforms()
        .get(name)
        .cloned()
        .unwrap_or_else(|| panic!("fixture names unknown builtin platform {name:?}"))
}

fn sorted_files(dir: &str) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(repo_path(dir))
        .unwrap_or_else(|e| panic!("{dir}: {e}"))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    files
}

#[test]
fn bad_corpus_matches_expect_headers_exactly() {
    let files = sorted_files("examples/bad");
    assert!(files.len() >= 18, "bad corpus shrank: {files:?}");
    for path in files {
        let rel = path
            .strip_prefix(repo_path(""))
            .unwrap()
            .display()
            .to_string();
        let contents = std::fs::read_to_string(&path).unwrap();
        let exp =
            parse_expectation(&contents).unwrap_or_else(|| panic!("{rel}: missing expect: header"));
        assert!(
            !exp.codes.is_empty(),
            "{rel}: expect: header lists no codes"
        );
        let platforms: Vec<Platform> = exp.platforms.iter().map(|n| load_builtin(n)).collect();
        let report = analyze_source_file(&rel, &contents, &platforms).unwrap();
        assert_eq!(
            report.codes(),
            exp.codes,
            "{rel}: diagnostic codes diverged from the expect: header\n{}",
            report.render()
        );
    }
}

#[test]
fn good_corpus_is_diagnostic_free() {
    let platform = pdl_discover::synthetic::xeon_2gpu_testbed();
    let mut checked = 0;
    for dir in ["examples/platforms", "examples/programs"] {
        for path in sorted_files(dir) {
            let rel = path
                .strip_prefix(repo_path(""))
                .unwrap()
                .display()
                .to_string();
            let contents = std::fs::read_to_string(&path).unwrap();
            let report =
                analyze_source_file(&rel, &contents, std::slice::from_ref(&platform)).unwrap();
            assert!(
                report.is_empty(),
                "{rel}: good corpus must produce zero diagnostics\n{}",
                report.render()
            );
            checked += 1;
        }
    }
    assert!(checked >= 5, "good corpus shrank: only {checked} files");
}

#[test]
fn builtin_platforms_are_diagnostic_free() {
    use pdl_discover::synthetic;
    for (name, p) in [
        ("xeon_x5550_host", synthetic::xeon_x5550_host()),
        ("xeon_2gpu_testbed", synthetic::xeon_2gpu_testbed()),
        ("cell_be", synthetic::cell_be()),
        ("gpgpu_cluster", synthetic::gpgpu_cluster(4, 2)),
        ("numa_host", synthetic::numa_host(2, 4)),
    ] {
        let report = analyze_platform(&p);
        assert!(report.is_empty(), "{name}: {}", report.render());
    }
}

// ---------------------------------------------------------------------------
// Property-based: well-formed platforms never trigger the analyzer.
// ---------------------------------------------------------------------------

mod no_false_positives {
    use super::*;
    use pdl_core::platform::PlatformBuilder;
    use pdl_core::property::Property;
    use proptest::prelude::*;

    /// A random well-formed platform: masters controlling hybrids controlling
    /// workers, unique ids, positive quantities, referenceable group names,
    /// interconnects only between existing PUs.
    fn arb_platform() -> impl Strategy<Value = Platform> {
        (
            1usize..3,                                  // masters
            proptest::collection::vec(0usize..3, 1..4), // hybrids per master
            proptest::collection::vec(0usize..3, 1..6), // workers per node
            proptest::collection::vec(1u32..4, 1..20),  // quantities
            proptest::collection::vec(any::<bool>(), 1..20),
        )
            .prop_map(|(masters, hybrids, workers, quantities, groups)| {
                let mut b = Platform::builder("prop");
                let mut uid = 0usize;
                let mut qi = 0usize;
                let mut gi = 0usize;
                let mut ids: Vec<String> = Vec::new();
                let mut pay = |b: &mut PlatformBuilder, h| {
                    b.prop(h, Property::fixed("ARCHITECTURE", "x86"));
                    b.quantity(h, quantities[qi % quantities.len()]);
                    qi += 1;
                };
                for m in 0..masters {
                    let mh = b.master(format!("m{m}"));
                    ids.push(format!("m{m}"));
                    pay(&mut b, mh);
                    for hx in 0..hybrids[m % hybrids.len()] {
                        uid += 1;
                        let hh = b.hybrid(mh, format!("h{uid}")).unwrap();
                        ids.push(format!("h{uid}"));
                        pay(&mut b, hh);
                        for _ in 0..workers[(m + hx) % workers.len()] {
                            uid += 1;
                            let wh = b.worker(hh, format!("w{uid}")).unwrap();
                            ids.push(format!("w{uid}"));
                            pay(&mut b, wh);
                            if groups[gi % groups.len()] {
                                b.group(wh, "pool.a");
                            }
                            gi += 1;
                        }
                    }
                    uid += 1;
                    let wh = b.worker(mh, format!("w{uid}")).unwrap();
                    ids.push(format!("w{uid}"));
                    pay(&mut b, wh);
                }
                for pair in ids.windows(2).step_by(2) {
                    b.interconnect(pdl_core::interconnect::Interconnect::new(
                        "link",
                        pair[0].clone(),
                        pair[1].clone(),
                    ));
                }
                b.build().expect("generator produces valid platforms")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_well_formed_platforms_are_clean(p in arb_platform()) {
            let report = analyze_platform(&p);
            prop_assert!(report.is_empty(), "false positive:\n{}", report.render());
        }

        #[test]
        fn random_well_formed_platforms_are_clean_from_source(p in arb_platform()) {
            let xml = pdl_xml::to_xml(&p);
            let (decoded, report) = pdl_analyze::analyze_platform_source("prop.xml", &xml);
            prop_assert!(decoded.is_some());
            prop_assert!(report.is_empty(), "false positive:\n{}", report.render());
        }
    }
}

// ---------------------------------------------------------------------------
// Trace replay over the Figure 5 pipeline.
// ---------------------------------------------------------------------------

mod fig5_replay {
    use cascabel::{Cascabel, ProblemSpec};
    use hetero_rt::prelude::*;
    use hetero_trace::EventKind;
    use pdl_analyze::check_trace;
    use simhw::machine::SimMachine;

    fn fig5_graph_and_trace() -> (TaskGraph, hetero_trace::RunTrace) {
        let platform = pdl_discover::synthetic::xeon_2gpu_testbed();
        let mut spec = ProblemSpec::with_size("N", 2048);
        spec.tile = Some(512);
        let result = Cascabel::new(platform.clone())
            .compile(bench::fig5::DGEMM_INPUT, &spec)
            .expect("fig5 program compiles");
        let graph = result.output.graph;
        let machine = SimMachine::from_platform(&platform);
        let report = simulate(&graph, &machine, &mut HeftScheduler, &SimOptions::default())
            .expect("fig5 graph simulates");
        let trace = sim_report_to_trace(&report, &machine);
        (graph, trace)
    }

    #[test]
    fn faithful_fig5_trace_verifies_clean() {
        let (graph, trace) = fig5_graph_and_trace();
        let report = check_trace(&trace, &graph);
        assert!(report.is_empty(), "{}", report.render());
    }

    #[test]
    fn corrupted_fig5_trace_is_caught() {
        let (graph, trace) = fig5_graph_and_trace();

        // Pick a dependency edge d -> t and swap the two tasks' identities in
        // the event stream: every timestamp stays untouched (the trace is
        // still structurally valid), but task d is now observed in t's time
        // window — after t's inputs were supposedly produced by d.
        let (d, t) = (0..graph.len())
            .flat_map(|t| {
                graph
                    .dependencies(TaskId(t))
                    .iter()
                    .map(move |&d| (d, TaskId(t)))
            })
            .next()
            .expect("fig5 graph has dependencies");
        let label_of = |task: TaskId| graph.tasks[task.0].label.clone();
        let trace_id = |label: &str| -> u32 {
            trace
                .meta
                .tasks
                .iter()
                .position(|info| info.label == label)
                .expect("graph task appears in trace") as u32
        };
        let (id_d, id_t) = (trace_id(&label_of(d)), trace_id(&label_of(t)));

        let mut corrupted = trace.clone();
        for lane in &mut corrupted.workers {
            for ev in &mut lane.events {
                let task = match &mut ev.kind {
                    EventKind::TaskStart { task } | EventKind::TaskEnd { task } => task,
                    _ => continue,
                };
                if *task == id_d {
                    *task = id_t;
                } else if *task == id_t {
                    *task = id_d;
                }
            }
        }

        let report = check_trace(&corrupted, &graph);
        assert!(
            report.codes().contains(&"T003"),
            "swapped dependency endpoints must violate the declared order:\n{}",
            report.render()
        );
    }

    #[test]
    fn fig5_program_source_is_diagnostic_free() {
        let platform = pdl_discover::synthetic::xeon_2gpu_testbed();
        let report = pdl_analyze::analyze_program_source(
            "fig5.c",
            bench::fig5::DGEMM_INPUT,
            std::slice::from_ref(&platform),
        );
        assert!(report.is_empty(), "{}", report.render());
    }
}
