//! Cross-engine integration: the virtual-time engine and the real threaded
//! engine must agree on dependency semantics, and the threaded engine must
//! produce correct numerics for the workloads the simulator only models.

use hetero_rt::prelude::*;
use kernels::dgemm::{dgemm_naive, dgemm_tile, Matrix};
use parking_lot::Mutex;
use simhw::machine::SimMachine;
use std::sync::Arc;

/// Runs the same logical tiled-DGEMM decomposition through both engines:
/// the simulator for timing shape, the thread pool for actual math.
#[test]
fn tiled_dgemm_same_shape_both_engines() {
    let n = 64;
    let tile = 16;
    let tiles = n / tile;

    // --- Simulated: build the cost-model graph and schedule it. -----------
    let graph = kernels::graphs::dgemm_graph(n, tile, None);
    let machine = SimMachine::from_platform(&pdl_discover::synthetic::xeon_2gpu_testbed());
    let sim = simulate(&graph, &machine, &mut HeftScheduler, &SimOptions::default()).unwrap();
    assert_eq!(sim.assignments.len(), tiles * tiles * tiles);

    // --- Threaded: run the real math with the same dependency structure. --
    let a = Arc::new(Matrix::from_fn(n, |i, j| ((i * 3 + j) % 7) as f64 - 3.0));
    let b_mat = Arc::new(Matrix::from_fn(n, |i, j| ((i + j * 5) % 9) as f64 - 4.0));
    let c = Arc::new(Mutex::new(Matrix::zeros(n)));

    // Same submission order as kernels::graphs::dgemm_graph: (i, j, k) with
    // k innermost; each (i,j) chain serializes via the dependency on the
    // previous k-task of that C tile.
    let mut tasks: Vec<ThreadTask> = Vec::new();
    for ti in 0..tiles {
        for tj in 0..tiles {
            for tk in 0..tiles {
                let a = a.clone();
                let b_mat = b_mat.clone();
                let c = c.clone();
                let mut t = ThreadTask::new(format!("dgemm[{ti},{tj},{tk}]"), move || {
                    dgemm_tile(&a, &b_mat, &mut c.lock(), tile, ti, tj, tk);
                });
                if tk > 0 {
                    let my_index = (ti * tiles + tj) * tiles + tk;
                    t = t.after([my_index - 1]);
                }
                tasks.push(t);
            }
        }
    }
    let exec = ThreadedExecutor::new(4).run(tasks).unwrap();
    assert_eq!(exec.tasks.len(), tiles * tiles * tiles);

    // Functional correctness.
    let mut reference = Matrix::zeros(n);
    dgemm_naive(&a, &b_mat, &mut reference);
    assert!(c.lock().max_abs_diff(&reference) < 1e-9);
}

#[test]
fn dependency_edges_match_between_graph_and_threaded_form() {
    // The graph's derived dependencies (RAW on the C tile) must equal the
    // chain structure the threaded form encodes.
    let n = 32;
    let tile = 8;
    let tiles = n / tile;
    let graph = kernels::graphs::dgemm_graph(n, tile, None);
    for (t_index, task) in graph.tasks.iter().enumerate() {
        let tk = t_index % tiles;
        let deps = graph.dependencies(task.id);
        if tk == 0 {
            assert!(deps.is_empty(), "{}: {deps:?}", task.label);
        } else {
            assert_eq!(deps.len(), 1, "{}", task.label);
            assert_eq!(deps[0].0, t_index - 1, "{}", task.label);
        }
    }
}

#[test]
fn simulated_and_threaded_run_the_same_task_count_for_vecadd() {
    let n = 100_000;
    let chunks = 8;
    let graph = kernels::graphs::vecadd_graph(n, chunks, None);
    let machine = SimMachine::from_platform(&pdl_discover::synthetic::xeon_x5550_host());
    let sim = simulate(
        &graph,
        &machine,
        &mut EagerScheduler,
        &SimOptions::default(),
    )
    .unwrap();
    assert_eq!(sim.assignments.len(), chunks);

    let a = Arc::new(Mutex::new(vec![1.0f64; n]));
    let b: Arc<Vec<f64>> = Arc::new(vec![2.0; n]);
    let tasks: Vec<ThreadTask> = kernels::vecadd::block_ranges(n, chunks)
        .into_iter()
        .enumerate()
        .map(|(i, (lo, hi))| {
            let a = a.clone();
            let b = b.clone();
            ThreadTask::new(format!("vecadd[{i}]"), move || {
                kernels::vecadd::vecadd_chunk(&mut a.lock(), &b, lo, hi);
            })
        })
        .collect();
    let exec = ThreadedExecutor::new(2).run(tasks).unwrap();
    assert_eq!(exec.tasks.len(), chunks);
    assert!(a.lock().iter().all(|&x| x == 3.0));
}

#[test]
fn energy_scheduler_trades_time_for_joules() {
    // On the 2-GPU testbed only the GPUs have TDP data; the energy policy
    // avoids them, producing a slower but (by the model) cheaper schedule
    // than HEFT for compute-heavy work.
    let graph = kernels::graphs::dgemm_graph(2048, 512, None);
    let machine = SimMachine::from_platform(&pdl_discover::synthetic::xeon_2gpu_testbed());

    let heft = simulate(&graph, &machine, &mut HeftScheduler, &SimOptions::default()).unwrap();
    let energy = simulate(
        &graph,
        &machine,
        &mut EnergyAwareScheduler,
        &SimOptions::default(),
    )
    .unwrap();

    assert!(energy.makespan >= heft.makespan);
    assert!(
        energy.energy.active_j <= heft.energy.active_j,
        "energy policy active J {} vs heft {}",
        energy.energy.active_j,
        heft.energy.active_j
    );
    // The energy policy kept everything off the (power-tracked) GPUs.
    for (_, dev) in &energy.assignments {
        assert_eq!(machine.devices[dev.0].arch, "x86");
    }
}
