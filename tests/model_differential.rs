//! Differential fuzzing of the coherence data layer: random action
//! sequences replayed against the pure `hetero-model` oracle AND the real
//! `DataRegistry`, failing on any divergence in valid sets, routing class,
//! probe values or charged bytes.
//!
//! The registry delegates its transitions to `hetero_model::proto`, so
//! these tests guard the *decoration* layer (hop → links/durations/bytes)
//! and the index mapping between runtime `DeviceId`s and model nodes —
//! exactly the glue a refactoring would break silently. Probes are
//! compared with exact `==`: the pure costs are computed by the same
//! `transfer_time` calls in the same order as the decorated durations, so
//! bit-identical floats are the contract, not an accident.

use hetero_model::model::{Action, Model, Mutation, State};
use hetero_model::proto::{AccessMode, Node, PlanClass, Routing};
use hetero_rt::data::{model_topo, DataRegistry, HandleId, TransferPlan, HOST};
use pdl_discover::synthetic;
use simhw::machine::{DeviceId, SimMachine};
use std::collections::BTreeSet;

/// Handle payload sizes: one large datum (transfer-dominated) and one
/// small (latency-dominated), matching the bounded model-check configs.
const SIZES: [f64; 2] = [600e6, 1e6];
const MAX_PENDING: usize = 2;

/// Deterministic splitmix-style PRNG — no external crates, stable across
/// runs so any failure is reproducible from its printed seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

struct Harness {
    machine: SimMachine,
    /// Model device index `i` is runtime device `devices[i]`.
    devices: Vec<DeviceId>,
    model: Model,
}

impl Harness {
    fn new(platform_name: &str, mutation: Mutation) -> Harness {
        let platform = match platform_name {
            "pcie" => synthetic::xeon_2gpu_testbed(),
            "nvlink" => synthetic::xeon_2gpu_nvlink_testbed(),
            other => panic!("unknown platform {other}"),
        };
        let machine = SimMachine::from_platform(&platform);
        let devices: Vec<DeviceId> = ["cpu0", "gpu0", "gpu1"]
            .iter()
            .map(|pu| machine.device_by_pu(pu).unwrap().id)
            .collect();
        let topos = SIZES
            .iter()
            .map(|&size| model_topo(&machine, platform_name, &devices, size))
            .collect();
        Harness {
            machine,
            devices,
            model: Model::new(topos).with_mutation(mutation),
        }
    }

    fn registry(&self) -> (DataRegistry, Vec<HandleId>) {
        let mut reg = DataRegistry::new();
        let handles = SIZES
            .iter()
            .enumerate()
            .map(|(i, &size)| reg.register(format!("h{i}"), size))
            .collect();
        (reg, handles)
    }

    /// The model's valid set for handle `h`, mapped into runtime ids.
    fn mapped_valid(&self, state: &State, h: usize) -> BTreeSet<DeviceId> {
        state.handles[h]
            .valid()
            .into_iter()
            .map(|n| match n {
                Node::Host => HOST,
                Node::Dev(i) => self.devices[i],
            })
            .collect()
    }

    /// Runs one random sequence, returning a divergence description or
    /// `None` when model and registry agreed on every step.
    fn run_sequence(&self, seed: u64, len: usize) -> Option<String> {
        let mut rng = Rng(seed);
        let (mut reg, handles) = self.registry();
        let mut state = self.model.initial();

        for step in 0..len {
            let action = match self.propose(&mut rng, &state) {
                Some(a) => a,
                None => continue,
            };
            let (next, effects) = self.model.step(&state, action);

            let ctx = |what: &str| format!("seed {seed} step {step} `{action}`: {what}");
            match action {
                Action::Acquire {
                    handle,
                    dev,
                    mode,
                    routing,
                } => {
                    let (h, d) = (handles[handle], self.devices[dev]);
                    let probe = reg.probe_acquire_via(&self.machine, h, d, mode, routing);
                    let plan = reg.plan_acquire(&self.machine, h, d, mode, routing);
                    if probe.seconds() != effects.probe {
                        return Some(ctx(&format!(
                            "probe {} != model {}",
                            probe.seconds(),
                            effects.probe
                        )));
                    }
                    if class_of(&plan) != effects.class {
                        return Some(ctx(&format!(
                            "class {:?} != model {:?}",
                            class_of(&plan),
                            effects.class
                        )));
                    }
                    if let Some(d) = self.check_commit(&mut reg, &plan, &effects, SIZES[handle]) {
                        return Some(ctx(&d));
                    }
                }
                Action::Finish { handle, dev, mode } => {
                    reg.finish_access(handles[handle], self.devices[dev], mode);
                }
                Action::Flush { handle } => {
                    let plan = reg.plan_flush(&self.machine, handles[handle]);
                    if plan.total().seconds() != effects.probe {
                        return Some(ctx(&format!(
                            "flush cost {} != model {}",
                            plan.total().seconds(),
                            effects.probe
                        )));
                    }
                    if let Some(d) = self.check_commit(&mut reg, &plan, &effects, SIZES[handle]) {
                        return Some(ctx(&d));
                    }
                }
            }

            state = next;
            for (hi, &h) in handles.iter().enumerate() {
                let want = self.mapped_valid(&state, hi);
                if reg.valid_on(h) != &want {
                    return Some(ctx(&format!(
                        "valid set of h{hi}: registry {:?} != model {want:?}",
                        reg.valid_on(h)
                    )));
                }
            }
        }
        None
    }

    /// Commits `plan` on the registry and compares the byte-counter deltas
    /// against the model's hop charges (hop count × datum size, exact).
    fn check_commit(
        &self,
        reg: &mut DataRegistry,
        plan: &TransferPlan,
        effects: &hetero_model::model::StepEffects,
        size: f64,
    ) -> Option<String> {
        let before = (
            reg.bytes_to_devices(),
            reg.bytes_to_host(),
            reg.bytes_peer(),
        );
        reg.commit(plan);
        let deltas = (
            reg.bytes_to_devices() - before.0,
            reg.bytes_to_host() - before.1,
            reg.bytes_peer() - before.2,
        );
        let want = (
            f64::from(effects.charges.to_device_hops) * size,
            f64::from(effects.charges.to_host_hops) * size,
            f64::from(effects.charges.peer_hops) * size,
        );
        (deltas != want).then(|| format!("charged bytes {deltas:?} != model {want:?}"))
    }

    /// Proposes one random enabled action (or `None` for a skipped draw,
    /// e.g. an acquire against a full pending queue).
    fn propose(&self, rng: &mut Rng, state: &State) -> Option<Action> {
        let handle = rng.pick(SIZES.len());
        match rng.pick(4) {
            // Acquires twice as likely as the others: they drive the
            // interesting transitions.
            0 | 1 => {
                if state.handles[handle].pending.len() >= MAX_PENDING {
                    return None;
                }
                let mode =
                    [AccessMode::Read, AccessMode::Write, AccessMode::ReadWrite][rng.pick(3)];
                let routing = [Routing::HostStaged, Routing::PeerToPeer][rng.pick(2)];
                Some(Action::Acquire {
                    handle,
                    dev: rng.pick(self.devices.len()),
                    mode,
                    routing,
                })
            }
            2 => {
                let pending = &state.handles[handle].pending;
                if pending.is_empty() {
                    return None;
                }
                let (dev, mode) = pending[rng.pick(pending.len())];
                Some(Action::Finish { handle, dev, mode })
            }
            _ => Some(Action::Flush { handle }),
        }
    }
}

/// Routing class the decorated plan realizes, computed independently of
/// the model's classification.
fn class_of(plan: &TransferPlan) -> PlanClass {
    let physical = |h: &&hetero_rt::data::TransferHop| !h.links.is_empty() || h.bytes > 0.0;
    if plan
        .hops
        .iter()
        .any(|h| physical(&h) && h.from != HOST && h.to != HOST)
    {
        PlanClass::Peer
    } else if plan.hops.iter().any(|h| physical(&h)) {
        PlanClass::Staged
    } else {
        PlanClass::Local
    }
}

#[test]
fn ten_thousand_sequences_agree_on_both_platforms() {
    // 5 000 sequences × 2 platforms = 10 000, each up to 12 actions, all
    // from a fixed seed so failures replay exactly.
    for platform in ["pcie", "nvlink"] {
        let harness = Harness::new(platform, Mutation::None);
        for seq in 0..5_000u64 {
            let seed = 0xC0FFEE ^ (seq << 8);
            if let Some(divergence) = harness.run_sequence(seed, 12) {
                panic!("{platform}: {divergence}");
            }
        }
    }
}

#[test]
fn injected_single_writer_bug_diverges_quickly() {
    // With SkipWriteInvalidate in the oracle, the first finished write
    // that had other copies valid must diverge from the real registry
    // (which invalidates correctly). The fuzzer is the second, independent
    // net behind the explorer for the same injected bug.
    let harness = Harness::new("nvlink", Mutation::SkipWriteInvalidate);
    let diverged = (0..200u64).find_map(|seq| harness.run_sequence(0xBAD ^ (seq << 8), 12));
    let msg = diverged.expect("mutated oracle never diverged in 200 sequences");
    assert!(
        msg.contains("valid set"),
        "unexpected divergence kind: {msg}"
    );
}

#[test]
fn under_charge_mutation_diverges_on_charges() {
    // UnderCharge corrupts the model's charged-cost bookkeeping; the
    // divergence surfaces as a probe≠charged violation inside the model,
    // which the explorer owns — but the fuzzer must still agree with the
    // registry on everything it compares (charges counters are computed
    // by the unmutated proto::commit on both sides). This documents the
    // split of responsibilities: fuzzer catches glue bugs, explorer
    // catches protocol bugs.
    let harness = Harness::new("pcie", Mutation::UnderCharge);
    for seq in 0..100u64 {
        assert!(harness.run_sequence(0xFEED ^ (seq << 8), 10).is_none());
    }
}
