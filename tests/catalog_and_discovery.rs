//! Integration of descriptor generation and the catalog: discover → store →
//! reload → query → use, across crate boundaries.

use pdl_discover::catalog::Catalog;
use pdl_query::capability::{Requirement, RequirementSet};

#[test]
fn full_catalog_lifecycle() {
    let dir = std::env::temp_dir().join(format!("pdl-it-catalog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Build a catalog from generators (manual + automatic, paper §II).
    let mut catalog = Catalog::with_builtin_platforms();
    if let Some(host) = pdl_discover::discover_host() {
        catalog.upsert(host);
    }
    let before = catalog.len();

    // Persist, reload, compare.
    catalog.save_to_dir(&dir).unwrap();
    let reloaded = Catalog::load_from_dir(&dir).unwrap();
    assert_eq!(reloaded.len(), before);
    for (name, p) in catalog.iter() {
        assert_eq!(reloaded.get(name), Some(p), "{name}");
    }

    // Capability query across the reloaded catalog.
    let wants_gpu = RequirementSet::new().with(Requirement::Architecture("gpu".into()));
    let gpu_platforms: Vec<&str> = reloaded.supporting(&wants_gpu).map(|(n, _)| n).collect();
    assert!(gpu_platforms.contains(&"xeon-x5550-gtx480-gtx285"));
    assert!(gpu_platforms.contains(&"gpgpu-cluster-4x2"));
    assert!(!gpu_platforms.contains(&"cell-be"));

    // A selected platform is directly usable by the simulator.
    let p = reloaded.get("xeon-x5550-gtx480-gtx285").unwrap();
    let machine = simhw::machine::SimMachine::from_platform(p);
    assert_eq!(machine.devices_with_arch("gpu").count(), 2);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn discovered_host_is_simulatable() {
    // The hwloc-analogue output feeds the whole toolchain.
    let Some(host) = pdl_discover::discover_host() else {
        return; // non-Linux CI
    };
    host.validate().unwrap();
    let machine = simhw::machine::SimMachine::from_platform(&host);
    assert!(!machine.is_empty());
    let graph = kernels::graphs::vecadd_graph(1_000_000, machine.len(), None);
    let report = hetero_rt::sim_engine::simulate(
        &graph,
        &machine,
        &mut hetero_rt::scheduler::EagerScheduler,
        &hetero_rt::sim_engine::SimOptions::default(),
    )
    .unwrap();
    assert!(report.makespan.seconds() > 0.0);
}

#[test]
fn multiple_logic_views_of_one_machine_coexist_in_catalog() {
    // Paper §II: "Multiple logic platform patterns can co-exist for a single
    // target system." Store two views of the same physical host.
    let mut catalog = Catalog::new();
    let mut hd = pdl_core::patterns::host_device(4);
    hd.name = "same-box-as-host-device".into();
    let mut pool = pdl_core::patterns::master_worker_pool(4);
    pool.name = "same-box-as-pool".into();
    catalog.insert(hd).unwrap();
    catalog.insert(pool).unwrap();
    assert_eq!(catalog.len(), 2);
    assert!(pdl_query::matches_pattern(
        catalog.get("same-box-as-host-device").unwrap(),
        pdl_core::patterns::PatternKind::HostDevice
    ));
    assert!(pdl_query::matches_pattern(
        catalog.get("same-box-as-pool").unwrap(),
        pdl_core::patterns::PatternKind::MasterWorkerPool
    ));
}
