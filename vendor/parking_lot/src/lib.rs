//! Vendored, std-only stand-in for the `parking_lot` crate.
//!
//! This workspace builds fully offline (see `vendor/README.md`); the real
//! `parking_lot` is replaced by thin wrappers over `std::sync` primitives
//! exposing the subset of the API the workspace uses: non-poisoning
//! [`Mutex`]/[`RwLock`] whose guards come straight from `lock()`/`read()`/
//! `write()` without a `Result`.
//!
//! Poisoning is deliberately swallowed: a panicking task must not wedge
//! every later lock acquisition, which is exactly parking_lot's behaviour.

#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
