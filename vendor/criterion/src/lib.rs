//! Vendored, std-only stand-in for the `criterion` crate.
//!
//! Offline builds (see `vendor/README.md`) replace criterion with this
//! minimal benchmark harness implementing the API subset the workspace's
//! benches use: [`Criterion`], [`BenchmarkId`], [`Throughput`], benchmark
//! groups with `sample_size`/`throughput`, `Bencher::iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Differences from upstream: no statistical analysis or HTML reports —
//! each benchmark reports min/median over its samples on stdout. The
//! `--test` CLI flag (used by CI smoke runs via
//! `cargo bench --bench <name> -- --test`) runs every benchmark exactly
//! once and reports `ok`, so benches can't silently rot without the cost
//! of a full measurement run.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target samples per benchmark in measurement mode.
const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Soft time budget per benchmark in measurement mode.
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's composite id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts both ids
/// and plain strings.
pub trait IntoBenchmarkId {
    /// Converts to an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Samples collected by [`Bencher::iter`].
    samples: Vec<Duration>,
    test_mode: bool,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` repeatedly, recording one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: one untimed call.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

/// The benchmark driver; parses CLI args (`--test`, name filter).
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Cargo/criterion flags we accept and ignore.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            filter,
            test_mode,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.run(&id.name, self.sample_size, None, f);
    }

    fn run<F>(&self, full_name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            test_mode: self.test_mode,
            sample_size,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {full_name} ... ok");
            return;
        }
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{full_name}: no samples (closure never called iter?)");
            return;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let rate = match throughput {
            Some(Throughput::Bytes(b)) if median.as_secs_f64() > 0.0 => {
                format!(
                    "  {:>9.1} MiB/s",
                    b as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(e)) if median.as_secs_f64() > 0.0 => {
                format!("  {:>9.0} elem/s", e as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{full_name:<48} min {min:>12?}  median {median:>12?}  ({} samples){rate}",
            samples.len()
        );
    }

    /// Prints the closing summary (no-op in this harness).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API parity; the measurement budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API parity; warm-up is a single untimed call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id.name);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run(&full, sample_size, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a function running the given benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs this group's benchmark functions in order.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            test_mode: false,
            sample_size: 5,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(count, 6); // 1 warm-up + 5 samples
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            samples: Vec::new(),
            test_mode: true,
            sample_size: 5,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert!(b.samples.is_empty());
        assert_eq!(count, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).name, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }
}
