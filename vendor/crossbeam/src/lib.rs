//! Vendored, std-only stand-in for the `crossbeam` crate.
//!
//! Offline builds (see `vendor/README.md`) replace crossbeam with this
//! implementation of the two modules the workspace uses:
//!
//! * [`channel`] — MPMC unbounded channel (`Mutex<VecDeque>` + `Condvar`);
//! * [`deque`] — work-stealing deque trio `Worker`/`Stealer`/`Injector`
//!   with crossbeam-deque's LIFO-local / FIFO-steal ordering.
//!
//! The real crossbeam implementations are lock-free; these are lock-based
//! but semantically identical, so code written against them ports to the
//! upstream crate without change once the registry is reachable again.

#![warn(missing_docs)]

pub mod channel;
pub mod deque;
