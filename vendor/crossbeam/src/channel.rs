//! MPMC unbounded channel compatible with `crossbeam::channel`.
//!
//! `recv` blocks until a message arrives or every [`Sender`] is dropped;
//! `send` fails only once every [`Receiver`] is gone. Senders and receivers
//! are cheaply cloneable handles onto one shared queue.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of an unbounded channel.
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half of an unbounded channel.
pub struct Receiver<T>(Arc<Shared<T>>);

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a channel with no receivers")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty channel with no senders")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel empty"),
            TryRecvError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender(shared.clone()), Receiver(shared))
}

impl<T> Sender<T> {
    /// Enqueues a message, waking one blocked receiver.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.0.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(msg));
        }
        self.0.lock().push_back(msg);
        self.0.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.senders.fetch_add(1, Ordering::AcqRel);
        Sender(self.0.clone())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: blocked receivers must observe disconnect.
            self.0.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues a message, blocking while the channel is empty and at least
    /// one sender remains.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.0.lock();
        loop {
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self
                .0
                .ready
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.0.lock();
        if let Some(msg) = queue.pop_front() {
            Ok(msg)
        } else if self.0.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of queued messages right now.
    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.0.lock().is_empty()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver(self.0.clone())
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.0.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_unblocks_on_sender_drop() {
        let (tx, rx) = unbounded::<i32>();
        let h = std::thread::spawn(move || rx.recv());
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn mpmc_all_messages_arrive_once() {
        let (tx, rx) = unbounded::<usize>();
        let n = 1000;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..n {
                        tx.send(p * n + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..4 * n).collect::<Vec<_>>());
    }

    #[test]
    fn try_recv_states() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
