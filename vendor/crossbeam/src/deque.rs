//! Work-stealing deques compatible with `crossbeam::deque`
//! (`crossbeam-deque`).
//!
//! * [`Worker`] — the owner's end: LIFO push/pop at the back;
//! * [`Stealer`] — other threads' end: FIFO steal from the front, so the
//!   owner reuses hot (recently pushed) work while thieves take the oldest
//!   and largest-granularity items;
//! * [`Injector`] — a shared FIFO queue any thread can push to or steal
//!   from.
//!
//! Lock-based (one spinlock-protected `VecDeque` per queue) rather than
//! Chase-Lev, so a steal never observes torn state; [`Steal::Retry`] is
//! still part of the API surface for upstream compatibility but is only
//! returned under lock contention via `try_lock` failure. The spinlock
//! keeps uncontended push/pop at a couple of atomic operations — the
//! critical sections are a handful of nanoseconds, and contention is rare
//! by design (thieves back off with `Retry` instead of queueing).

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A minimal test-and-test-and-set spinlock. Uncontended acquire/release is
/// one CAS plus one store; under contention it spins briefly, then yields so
/// a descheduled lock holder can run.
struct SpinMutex<T> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: the lock guarantees exclusive access to `data`, so sharing the
// mutex between threads is safe whenever the payload itself is Send.
unsafe impl<T: Send> Sync for SpinMutex<T> {}
unsafe impl<T: Send> Send for SpinMutex<T> {}

struct SpinGuard<'a, T> {
    m: &'a SpinMutex<T>,
}

impl<T> SpinMutex<T> {
    fn new(value: T) -> Self {
        SpinMutex {
            locked: AtomicBool::new(false),
            data: UnsafeCell::new(value),
        }
    }

    fn lock(&self) -> SpinGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return SpinGuard { m: self };
            }
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinGuard { m: self })
        } else {
            None
        }
    }
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock, so access is exclusive.
        unsafe { &*self.m.data.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the lock, so access is exclusive.
        unsafe { &mut *self.m.data.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.m.locked.store(false, Ordering::Release);
    }
}

fn lock<T>(m: &SpinMutex<VecDeque<T>>) -> SpinGuard<'_, VecDeque<T>> {
    m.lock()
}

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One item was stolen.
    Success(T),
    /// The attempt lost a race; retrying may succeed.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen item, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this is [`Steal::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// Whether this is [`Steal::Empty`].
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Whether this is [`Steal::Retry`].
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

/// The owning end of a work-stealing deque.
pub struct Worker<T> {
    queue: Arc<SpinMutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// A new deque whose owner pops in LIFO order.
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(SpinMutex::new(VecDeque::new())),
        }
    }

    /// A new deque whose owner pops in FIFO order.
    ///
    /// Provided for API parity; the engine uses [`Worker::new_lifo`].
    pub fn new_fifo() -> Self {
        Self::new_lifo()
    }

    /// Pushes an item onto the owner's end.
    pub fn push(&self, item: T) {
        lock(&self.queue).push_back(item);
    }

    /// Pops the most recently pushed item (LIFO).
    pub fn pop(&self) -> Option<T> {
        lock(&self.queue).pop_back()
    }

    /// Creates a [`Stealer`] for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: self.queue.clone(),
        }
    }

    /// Whether the deque is empty right now.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of queued items right now.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }
}

/// The thieves' end of a work-stealing deque: FIFO steals.
pub struct Stealer<T> {
    queue: Arc<SpinMutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: self.queue.clone(),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals the oldest item (opposite end from the owner's LIFO pops).
    pub fn steal(&self) -> Steal<T> {
        match self.queue.try_lock() {
            Some(mut q) => match q.pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            },
            None => Steal::Retry,
        }
    }

    /// Whether the deque is empty right now.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }
}

/// A shared FIFO injector queue.
pub struct Injector<T> {
    queue: SpinMutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Self {
        Injector {
            queue: SpinMutex::new(VecDeque::new()),
        }
    }

    /// Pushes an item onto the back.
    pub fn push(&self, item: T) {
        lock(&self.queue).push_back(item);
    }

    /// Steals the oldest item.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Whether the injector is empty right now.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of queued items right now.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal().success(), Some(1)); // oldest
        assert_eq!(w.pop(), Some(3)); // newest
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push('a');
        inj.push('b');
        assert_eq!(inj.steal().success(), Some('a'));
        assert_eq!(inj.steal().success(), Some('b'));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn concurrent_steals_take_each_item_once() {
        let w = Worker::new_lifo();
        let n = 10_000;
        for i in 0..n {
            w.push(i);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = w.stealer();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}
