//! Collection strategies (`proptest::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::Range;

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (exclusive).
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// A strategy generating `Vec`s whose elements come from `element` and
/// whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_u64(self.size.min as u64, self.size.max as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_bounds_and_elements() {
        let strat = vec(0u8..3, 1..5);
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn exact_size() {
        let strat = vec(0u8..10, 4);
        let mut rng = TestRng::deterministic("vec4");
        assert_eq!(strat.generate(&mut rng).len(), 4);
    }
}
