//! Vendored, std-only stand-in for the `proptest` crate.
//!
//! Offline builds (see `vendor/README.md`) replace proptest with this mini
//! property-testing framework implementing the API subset the workspace's
//! test suites use:
//!
//! * [`Strategy`] with `prop_map`, implemented for integer ranges, tuples,
//!   regex-like pattern strings (`"[a-z][a-z0-9]{0,6}"`) and
//!   [`collection::vec`];
//! * [`any`]`::<T>()` for primitive types;
//! * the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`, and the
//!   `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!` assertions.
//!
//! Differences from upstream: no shrinking (failures report the case number
//! and the deterministic per-test seed instead, so reruns reproduce them
//! exactly), and no persistence of regression files (`*.proptest-regressions`
//! files are ignored).

#![warn(missing_docs)]

pub mod collection;
pub mod rng;
pub mod strategy;
pub mod string;

pub use strategy::{any, Arbitrary, Strategy};

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Commonly used items; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub struct CaseGuard {
    /// Test name, for the failure report.
    pub name: &'static str,
    /// 0-based case index.
    pub case: u32,
    /// Total cases configured.
    pub cases: u32,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: {} failed on case {}/{} (deterministic seed; rerun reproduces it)",
                self.name,
                self.case + 1,
                self.cases
            );
        }
    }
}

/// Defines property tests: `#[test]` functions whose arguments are drawn
/// from strategies, run for a configurable number of random cases.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let __guard = $crate::CaseGuard {
                        name: stringify!($name),
                        case: __case,
                        cases: __config.cases,
                    };
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    { $body }
                    drop(__guard);
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 1u32..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..4).contains(&y));
        }

        #[test]
        fn tuples_and_maps(pair in (0u64..10, 0u64..10).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!(pair < 100);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn pattern_strings_match_shape(s in "[a-z][a-z0-9]{0,6}") {
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            prop_assert!(first.is_ascii_lowercase());
            prop_assert!(s.len() <= 7);
            prop_assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }

        #[test]
        fn optional_group(s in "(ab)?") {
            prop_assert!(s.is_empty() || s == "ab");
        }

        #[test]
        fn any_bool_and_u64(b in any::<bool>(), x in any::<u64>()) {
            let _ = (b, x);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut rng = crate::rng::TestRng::deterministic("seed-test");
            (0..10).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
