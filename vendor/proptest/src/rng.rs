//! Deterministic PRNG for test-case generation.
//!
//! splitmix64 seeded from an FNV-1a hash of the test's full path, so every
//! test gets an independent, reproducible stream with no global state.

/// A small, fast, deterministic PRNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded deterministically from a name (typically the test
    /// path): the same name always yields the same stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// An RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `lo..hi` (`lo < hi`).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform value in `lo..hi` over i128, for signed ranges.
    pub fn range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as i128
    }

    /// A random bool.
    pub fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::deterministic("below");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn different_names_different_streams() {
        let a = TestRng::deterministic("a").next_u64();
        let b = TestRng::deterministic("b").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn signed_ranges() {
        let mut rng = TestRng::deterministic("signed");
        for _ in 0..1000 {
            let v = rng.range_i128(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }
}
