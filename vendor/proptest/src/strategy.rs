//! The [`Strategy`] trait and implementations for ranges, tuples, pattern
//! strings and `any::<T>()`.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

// --- integer ranges --------------------------------------------------------

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo == 0 && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                rng.range_u64(lo as u64, hi as u64 + 1) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_i128(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                rng.range_i128(lo as i128, hi as i128 + 1) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

// --- pattern strings -------------------------------------------------------

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);
impl_tuple!(A, B, C, D, E, F);

// --- any::<T>() ------------------------------------------------------------

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_bool()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::string::arbitrary_char(rng)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values across magnitudes; NaN/inf would break most sorters.
        let mantissa = rng.next_u64() as i64 as f64;
        let exp = rng.range_i128(-60, 61) as i32;
        mantissa * (2f64).powi(exp)
    }
}

/// The full-domain strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
