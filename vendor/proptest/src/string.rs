//! Regex-like pattern string generation.
//!
//! proptest treats `&str` strategies as anchored regexes; this module
//! implements the subset the workspace's tests use: literals, `.`,
//! character classes (`[a-z0-9_-]`, ranges, escapes, leading `^` negation),
//! groups with alternation (`(ab|cd)`), and the quantifiers `?`, `*`, `+`,
//! `{m}`, `{m,n}`, `{m,}`. Unbounded quantifiers are capped at 8 extra
//! repetitions.

use crate::rng::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any char except `\n`.
    Any,
    Literal(char),
    /// Inclusive char ranges; `negated` inverts membership.
    Class {
        ranges: Vec<(char, char)>,
        negated: bool,
    },
    /// `( alt | alt | … )`
    Group(Vec<Seq>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32, // inclusive
}

type Seq = Vec<Piece>;

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn fail(&self, msg: &str) -> ! {
        panic!("unsupported pattern {:?}: {msg}", self.pattern)
    }

    fn parse_alternation(&mut self, in_group: bool) -> Vec<Seq> {
        let mut alts = vec![self.parse_seq()];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            alts.push(self.parse_seq());
        }
        if in_group {
            if self.chars.next() != Some(')') {
                self.fail("expected ')'");
            }
        } else if let Some(c) = self.chars.peek() {
            if *c == ')' {
                self.fail("unmatched ')'");
            }
        }
        alts
    }

    fn parse_seq(&mut self) -> Seq {
        let mut seq = Seq::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            self.chars.next();
            let atom = match c {
                '.' => Atom::Any,
                '(' => Atom::Group(self.parse_alternation(true)),
                '[' => self.parse_class(),
                '\\' => Atom::Literal(self.parse_escape()),
                '?' | '*' | '+' | '{' => self.fail("quantifier without atom"),
                other => Atom::Literal(other),
            };
            let (min, max) = self.parse_quantifier();
            seq.push(Piece { atom, min, max });
        }
        seq
    }

    fn parse_escape(&mut self) -> char {
        match self.chars.next() {
            Some('n') => '\n',
            Some('t') => '\t',
            Some('r') => '\r',
            Some('0') => '\0',
            Some(c) => c, // \[ \] \\ \. \- etc: the char itself
            None => self.fail("dangling escape"),
        }
    }

    fn parse_class(&mut self) -> Atom {
        let mut ranges = Vec::new();
        let negated = if self.chars.peek() == Some(&'^') {
            self.chars.next();
            true
        } else {
            false
        };
        let mut pending: Option<char> = None;
        loop {
            let c = match self.chars.next() {
                Some(']') => break,
                Some('\\') => self.parse_escape(),
                Some('-') if pending.is_some() && self.chars.peek() != Some(&']') => {
                    // Range like a-z: combine pending with the next char.
                    let lo = pending.take().unwrap();
                    let hi = match self.chars.next() {
                        Some('\\') => self.parse_escape(),
                        Some(h) => h,
                        None => self.fail("unterminated class range"),
                    };
                    if lo > hi {
                        self.fail("reversed class range");
                    }
                    ranges.push((lo, hi));
                    continue;
                }
                Some(c) => c,
                None => self.fail("unterminated class"),
            };
            if let Some(p) = pending.replace(c) {
                ranges.push((p, p));
            }
        }
        if let Some(p) = pending {
            ranges.push((p, p));
        }
        if ranges.is_empty() {
            self.fail("empty character class");
        }
        Atom::Class { ranges, negated }
    }

    fn parse_quantifier(&mut self) -> (u32, u32) {
        match self.chars.peek() {
            Some('?') => {
                self.chars.next();
                (0, 1)
            }
            Some('*') => {
                self.chars.next();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                self.chars.next();
                (1, 1 + UNBOUNDED_CAP)
            }
            Some('{') => {
                self.chars.next();
                let mut spec = String::new();
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(c) => spec.push(c),
                        None => self.fail("unterminated {m,n}"),
                    }
                }
                let parse = |s: &str| -> u32 {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| self.fail("bad {m,n} bound"))
                };
                match spec.split_once(',') {
                    None => {
                        let m = parse(&spec);
                        (m, m)
                    }
                    Some((m, "")) => {
                        let m = parse(m);
                        (m, m + UNBOUNDED_CAP)
                    }
                    Some((m, n)) => (parse(m), parse(n)),
                }
            }
            _ => (1, 1),
        }
    }
}

/// A char for `.`: printable ASCII most of the time, sprinkled with
/// controls, high unicode and quote/bracket metacharacters to stress
/// parsers.
pub(crate) fn arbitrary_char(rng: &mut TestRng) -> char {
    match rng.below(10) {
        0 => {
            // Control chars (excluding '\n': proptest's `.` excludes it).
            let controls = ['\t', '\r', '\0', '\u{1b}', '\u{7f}', '\u{b}'];
            controls[rng.below(controls.len() as u64) as usize]
        }
        1 => {
            // Non-ASCII: latin-1 supplement, CJK, emoji, BOM-adjacent.
            let specials = ['é', 'ß', '漢', '字', '→', '\u{feff}', '\u{2028}', '😀', 'Ω'];
            specials[rng.below(specials.len() as u64) as usize]
        }
        _ => char::from_u32(rng.range_u64(0x20, 0x7f) as u32).unwrap(),
    }
}

fn generate_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Any => {
            let mut c = arbitrary_char(rng);
            while c == '\n' {
                c = arbitrary_char(rng);
            }
            out.push(c);
        }
        Atom::Literal(c) => out.push(*c),
        Atom::Class { ranges, negated } => {
            if *negated {
                loop {
                    let c = char::from_u32(rng.range_u64(0x20, 0x7f) as u32).unwrap();
                    if !ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&c)) {
                        out.push(c);
                        return;
                    }
                }
            }
            // Weight ranges by size for uniformity over the class.
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let span = hi as u64 - lo as u64 + 1;
                if pick < span {
                    // Skip the surrogate gap if a range straddles it.
                    let code = lo as u64 + pick;
                    if let Some(c) = char::from_u32(code as u32) {
                        out.push(c);
                    } else {
                        out.push(lo);
                    }
                    return;
                }
                pick -= span;
            }
            unreachable!("weighted pick within total");
        }
        Atom::Group(alts) => {
            let alt = &alts[rng.below(alts.len() as u64) as usize];
            generate_seq(alt, rng, out);
        }
    }
}

fn generate_seq(seq: &Seq, rng: &mut TestRng, out: &mut String) {
    for piece in seq {
        let reps = rng.range_u64(piece.min as u64, piece.max as u64 + 1) as u32;
        for _ in 0..reps {
            generate_atom(&piece.atom, rng, out);
        }
    }
}

/// Generates a string matching `pattern` (anchored, regex-lite subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser {
        chars: pattern.chars().peekable(),
        pattern,
    };
    let alts = parser.parse_alternation(false);
    let mut out = String::new();
    let alt = &alts[rng.below(alts.len() as u64) as usize];
    generate_seq(alt, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string-tests")
    }

    #[test]
    fn literal_and_dot() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("ab.", &mut r);
            assert!(s.starts_with("ab"));
            assert_eq!(s.chars().count(), 3);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn classes_ranges_and_counts() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z][a-z0-9]{0,6}", &mut r);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn class_with_escapes_and_trailing_dash() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[<>/a-z \"=&;!\\[\\]-]{0,120}", &mut r);
            assert!(s.len() <= 120);
            for c in s.chars() {
                assert!(
                    "<>/ \"=&;!-[]".contains(c) || c.is_ascii_lowercase(),
                    "{c:?}"
                );
            }
        }
    }

    #[test]
    fn optional_group() {
        let mut r = rng();
        let mut saw_empty = false;
        let mut saw_full = false;
        for _ in 0..100 {
            let s = generate_matching("(xy)?", &mut r);
            match s.as_str() {
                "" => saw_empty = true,
                "xy" => saw_full = true,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_empty && saw_full);
    }

    #[test]
    fn alternation() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_matching("(ab|cd|e)", &mut r);
            assert!(["ab", "cd", "e"].contains(&s.as_str()));
        }
    }

    #[test]
    fn space_to_tilde_is_printable_ascii() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[ -~]{0,24}", &mut r);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn negated_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("[^abc]{1,5}", &mut r);
            assert!(!s.is_empty());
            assert!(s.chars().all(|c| !"abc".contains(c)));
        }
    }

    #[test]
    fn literal_prefix_with_dot_tail() {
        let mut r = rng();
        let s = generate_matching("#pragma cascabel .{0,100}", &mut r);
        assert!(s.starts_with("#pragma cascabel "));
    }
}
