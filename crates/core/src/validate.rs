//! Structural validation of platform descriptions.
//!
//! Encodes the rules of paper §III-A:
//! * Masters only at the highest hierarchical level.
//! * Workers are leaves, controlled by Master or Hybrid PUs.
//! * Hybrids are inner nodes, always controlled by Master or Hybrid units.
//!
//! plus referential-integrity rules (unique ids, resolvable interconnect
//! endpoints, non-empty names) needed for tool processing.

use crate::error::ValidationIssue;
use crate::id::PuIdx;
use crate::platform::Platform;
use crate::pu::PuClass;
use std::collections::BTreeSet;

/// Collects all structural issues in the given platform. An empty vector
/// means the description is valid.
pub fn check(platform: &Platform) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    let mut seen_ids = BTreeSet::new();

    for (i, pu) in platform.arena().iter().enumerate() {
        let idx = PuIdx::from_usize(i);

        if pu.id.is_empty() {
            issues.push(ValidationIssue::EmptyPuId(idx));
        } else if !seen_ids.insert(pu.id.clone()) {
            issues.push(ValidationIssue::DuplicatePuId(pu.id.clone()));
        }

        match pu.class {
            PuClass::Master => {
                if pu.parent().is_some() {
                    issues.push(ValidationIssue::MasterNotTopLevel(pu.id.clone()));
                }
            }
            PuClass::Worker => {
                if !pu.children().is_empty() {
                    issues.push(ValidationIssue::WorkerHasChildren(pu.id.clone()));
                }
                if pu.parent().is_none() {
                    issues.push(ValidationIssue::Uncontrolled(pu.id.clone()));
                }
            }
            PuClass::Hybrid => {
                if pu.parent().is_none() {
                    issues.push(ValidationIssue::HybridNotControlled(pu.id.clone()));
                }
            }
        }

        if pu.quantity == 0 {
            issues.push(ValidationIssue::ZeroQuantity(pu.id.clone()));
        }

        let mut mr_ids = BTreeSet::new();
        for mr in &pu.memory_regions {
            if !mr_ids.insert(mr.id.as_str().to_string()) {
                issues.push(ValidationIssue::DuplicateMemoryRegion {
                    pu: pu.id.clone(),
                    mr: mr.id.as_str().to_string(),
                });
            }
        }

        for g in &pu.groups {
            if g.is_empty() {
                issues.push(ValidationIssue::EmptyGroupName(pu.id.clone()));
            }
        }

        for prop in pu.descriptor.iter() {
            if prop.name.is_empty() {
                issues.push(ValidationIssue::EmptyPropertyName(pu.id.clone()));
            }
            if prop.fixed && prop.value.is_empty() {
                issues.push(ValidationIssue::FixedPropertyWithoutValue {
                    pu: pu.id.clone(),
                    property: prop.name.clone(),
                });
            }
        }
    }

    for (ic_index, ic) in platform.interconnects().iter().enumerate() {
        for endpoint in [&ic.from, &ic.to] {
            if platform.index_of(endpoint.as_str()).is_none() {
                issues.push(ValidationIssue::DanglingInterconnect {
                    endpoint: endpoint.clone(),
                    ic_index,
                });
            }
        }
        if ic.from == ic.to {
            issues.push(ValidationIssue::SelfLoopInterconnect {
                endpoint: ic.from.clone(),
                ic_index,
            });
        }
    }

    issues
}

/// Like [`check`], but returns the issues as [`crate::diag::Diagnostic`]s
/// in the shared `P0xx` code space. The [`check`] API remains the source of
/// truth; this is the diagnostics-facing view used by `pdl-analyze` and
/// `pdl-lint`.
pub fn diagnostics(platform: &Platform) -> crate::diag::Report {
    check(platform)
        .iter()
        .map(super::error::ValidationIssue::to_diagnostic)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::Interconnect;
    use crate::memory::MemoryRegion;
    use crate::platform::Platform;
    use crate::property::Property;
    use crate::pu::PuClass;

    #[test]
    fn valid_listing1_has_no_issues() {
        let mut b = Platform::builder("ok");
        let m = b.master("0");
        b.prop(m, Property::fixed("ARCHITECTURE", "x86"));
        let w = b.worker(m, "1").unwrap();
        let _ = w;
        b.interconnect(Interconnect::new("rDMA", "0", "1"));
        let p = b.build_unchecked();
        assert!(check(&p).is_empty(), "{:?}", check(&p));
    }

    #[test]
    fn toplevel_worker_rejected() {
        let mut b = Platform::builder("bad");
        b.root("w", PuClass::Worker);
        let p = b.build_unchecked();
        let issues = check(&p);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::Uncontrolled(id) if id == "w")));
    }

    #[test]
    fn toplevel_hybrid_rejected() {
        let mut b = Platform::builder("bad");
        b.root("h", PuClass::Hybrid);
        let p = b.build_unchecked();
        assert!(check(&p)
            .iter()
            .any(|i| matches!(i, ValidationIssue::HybridNotControlled(id) if id == "h")));
    }

    #[test]
    fn nested_master_rejected() {
        let mut b = Platform::builder("bad");
        let m = b.master("0");
        // The builder allows constructing it (Masters may control), but
        // validation rejects the nested Master.
        b.child(m, "m2", PuClass::Master).unwrap();
        let p = b.build_unchecked();
        assert!(check(&p)
            .iter()
            .any(|i| matches!(i, ValidationIssue::MasterNotTopLevel(id) if id == "m2")));
    }

    #[test]
    fn duplicate_ids_detected_once_per_duplicate() {
        let mut b = Platform::builder("bad");
        b.master("0");
        b.master("0");
        b.master("0");
        let p = b.build_unchecked();
        let dups = check(&p)
            .into_iter()
            .filter(|i| matches!(i, ValidationIssue::DuplicatePuId(_)))
            .count();
        assert_eq!(dups, 2);
    }

    #[test]
    fn zero_quantity_detected() {
        let mut b = Platform::builder("bad");
        let m = b.master("0");
        b.quantity(m, 0);
        let p = b.build_unchecked();
        assert!(check(&p)
            .iter()
            .any(|i| matches!(i, ValidationIssue::ZeroQuantity(_))));
    }

    #[test]
    fn dangling_and_self_loop_interconnects() {
        let mut b = Platform::builder("bad");
        b.master("0");
        b.interconnect(Interconnect::new("PCIe", "0", "404"));
        b.interconnect(Interconnect::new("loop", "0", "0"));
        let p = b.build_unchecked();
        let issues = check(&p);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::DanglingInterconnect { endpoint, .. } if endpoint == "404")));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::SelfLoopInterconnect { .. })));
    }

    #[test]
    fn duplicate_memory_regions_detected() {
        let mut b = Platform::builder("bad");
        let m = b.master("0");
        b.memory(m, MemoryRegion::new("ram"));
        b.memory(m, MemoryRegion::new("ram"));
        let p = b.build_unchecked();
        assert!(check(&p)
            .iter()
            .any(|i| matches!(i, ValidationIssue::DuplicateMemoryRegion { .. })));
    }

    #[test]
    fn empty_names_detected() {
        let mut b = Platform::builder("bad");
        let m = b.master("0");
        b.group(m, "");
        b.prop(m, Property::fixed("", "x"));
        let p = b.build_unchecked();
        let issues = check(&p);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::EmptyGroupName(_))));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::EmptyPropertyName(_))));
    }

    #[test]
    fn fixed_placeholder_detected_but_unfixed_allowed() {
        let mut b = Platform::builder("bad");
        let m = b.master("0");
        b.prop(m, Property::fixed("BROKEN", ""));
        b.prop(m, Property::unfixed("OK_PLACEHOLDER", ""));
        let p = b.build_unchecked();
        let issues = check(&p);
        assert_eq!(
            issues
                .iter()
                .filter(|i| matches!(i, ValidationIssue::FixedPropertyWithoutValue { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn diagnostics_shim_maps_codes_and_subjects() {
        let mut b = Platform::builder("bad");
        b.root("w", PuClass::Worker);
        b.interconnect(Interconnect::new("PCIe", "w", "404"));
        let p = b.build_unchecked();
        let report = diagnostics(&p);
        assert!(report.has_errors());
        assert!(report.codes().contains(&"P005"));
        assert!(report.codes().contains(&"P008"));
        let dangling = report.iter().find(|d| d.code == "P008").unwrap();
        assert_eq!(dangling.subject.as_deref(), Some("404"));
        // Same findings as the legacy API, one-to-one.
        assert_eq!(report.len(), check(&p).len());
    }

    #[test]
    fn build_surfaces_issues_as_error() {
        let mut b = Platform::builder("bad");
        b.root("w", PuClass::Worker);
        let err = b.build().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("invalid"));
    }
}
