//! Well-known property names.
//!
//! Paper §II: the PDL *"provides a name-space for reference to architectural
//! properties and platform information"*. This module pins down the base
//! vocabulary used by the rest of the toolchain (discovery, simulator,
//! runtime, compiler). Subschemas (e.g. `ocl:`) add their own names on top.

/// PU instruction-set / device architecture: `x86`, `gpu`, `spe`, `ppe`,
/// `fpga`, … (Listing 1 uses `ARCHITECTURE`.)
pub const ARCHITECTURE: &str = "ARCHITECTURE";

/// Human-readable device/PU name (`GeForce GTX 480`, `Xeon X5550`).
pub const DEVICE_NAME: &str = "DEVICE_NAME";

/// Vendor string (`Intel`, `Nvidia`, `IBM`).
pub const VENDOR: &str = "VENDOR";

/// Number of hardware cores / compute units within the PU.
pub const CORES: &str = "CORES";

/// Clock frequency (unit-annotated, canonical Hz).
pub const FREQUENCY: &str = "FREQUENCY";

/// Peak double-precision compute rate (unit-annotated, canonical FLOP/s).
pub const PEAK_GFLOPS_DP: &str = "PEAK_GFLOPS_DP";

/// Peak single-precision compute rate (unit-annotated, canonical FLOP/s).
pub const PEAK_GFLOPS_SP: &str = "PEAK_GFLOPS_SP";

/// Sustained fraction of peak achievable by tuned kernels (0.0–1.0).
/// Used by the simulator to derate peak numbers.
pub const EFFICIENCY: &str = "EFFICIENCY";

/// Memory/interconnect capacity (unit-annotated, canonical bytes).
pub const SIZE: &str = "SIZE";

/// Bandwidth (unit-annotated, canonical bytes/second).
pub const BANDWIDTH: &str = "BANDWIDTH";

/// Latency (unit-annotated, canonical seconds).
pub const LATENCY: &str = "LATENCY";

/// Thermal design power (unit-annotated, canonical watts).
pub const TDP: &str = "TDP";

/// Idle power draw (unit-annotated, canonical watts).
pub const IDLE_POWER: &str = "IDLE_POWER";

/// Software platform/toolchain available on the PU: `OpenCL`, `Cuda`,
/// `CellSDK`, `x86`… Matches the `targetplatformlist` vocabulary of the
/// Cascabel task annotations (§IV-A).
pub const SOFTWARE_PLATFORM: &str = "SOFTWARE_PLATFORM";

/// Compiler executable responsible for code targeting this PU
/// (`gcc`, `nvcc`, `gcc-spu`, `xlc`) — feeds the compilation-plan
/// derivation of §IV-C step 4.
pub const COMPILER: &str = "COMPILER";

/// Linker flags / libraries required for this PU's code.
pub const LINK_LIBS: &str = "LINK_LIBS";

/// Runtime system available on the platform (e.g. `StarPU`).
pub const RUNTIME_SYSTEM: &str = "RUNTIME_SYSTEM";

/// Memory-region kind: `ram`, `vram`, `local-store`, `cache`, `scratchpad`.
pub const MEMORY_KIND: &str = "MEMORY_KIND";

/// Names of all base-vocabulary properties, for validation/lint tooling.
pub const ALL: &[&str] = &[
    ARCHITECTURE,
    DEVICE_NAME,
    VENDOR,
    CORES,
    FREQUENCY,
    PEAK_GFLOPS_DP,
    PEAK_GFLOPS_SP,
    EFFICIENCY,
    SIZE,
    BANDWIDTH,
    LATENCY,
    TDP,
    IDLE_POWER,
    SOFTWARE_PLATFORM,
    COMPILER,
    LINK_LIBS,
    RUNTIME_SYSTEM,
    MEMORY_KIND,
];

/// Whether `name` belongs to the base vocabulary.
pub fn is_wellknown(name: &str) -> bool {
    ALL.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn vocabulary_is_duplicate_free() {
        let set: HashSet<_> = ALL.iter().collect();
        assert_eq!(set.len(), ALL.len());
    }

    #[test]
    fn membership() {
        assert!(is_wellknown("ARCHITECTURE"));
        assert!(is_wellknown("PEAK_GFLOPS_DP"));
        assert!(!is_wellknown("architecture")); // names are case-sensitive
        assert!(!is_wellknown("MAX_COMPUTE_UNITS")); // ocl: subschema name
    }
}
