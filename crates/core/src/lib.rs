//! # pdl-core — hierarchical machine model for heterogeneous platforms
//!
//! Rust implementation of the machine model of *"Explicit Platform
//! Descriptions for Heterogeneous Many-Core Architectures"* (Sandrieser,
//! Benkner, Pllana — IPDPS Workshops 2011).
//!
//! The model describes a heterogeneous platform as a forest of processing
//! units connected by explicit **control relationships** — "the possibility
//! for delegation of computational tasks from one processing-unit to
//! another" (paper §II) — annotated with memory regions, interconnects and
//! extensible key/value properties:
//!
//! * [`pu::PuClass::Master`] — general-purpose root PUs (program entry).
//! * [`pu::PuClass::Hybrid`] — inner nodes, controlled and controlling.
//! * [`pu::PuClass::Worker`] — specialized leaves.
//! * [`memory::MemoryRegion`] / [`interconnect::Interconnect`] — explicit
//!   data-path entities enabling derivation of transfer requirements.
//! * [`property::Property`] — fixed/unfixed values, unit annotations and
//!   typed subschema references (Listing 2's `ocl:` properties).
//!
//! ## Quick example — Listing 1 of the paper
//!
//! ```
//! use pdl_core::prelude::*;
//!
//! let mut b = Platform::builder("gpgpu-node");
//! let m = b.master("0");
//! b.prop(m, Property::fixed("ARCHITECTURE", "x86"));
//! let w = b.worker(m, "1").unwrap();
//! b.prop(w, Property::fixed("ARCHITECTURE", "gpu"));
//! b.interconnect(Interconnect::new("rDMA", "0", "1"));
//! let platform = b.build().unwrap();
//!
//! assert_eq!(platform.workers().count(), 1);
//! let (_, gpu) = platform.pu_by_id("1").unwrap();
//! assert_eq!(gpu.architecture(), Some("gpu"));
//! ```
//!
//! The XML serialization lives in the `pdl-xml` crate; querying and routing
//! in `pdl-query`; automatic generation in `pdl-discover`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod descriptor;
pub mod diag;
pub mod error;
pub mod id;
pub mod interconnect;
pub mod memory;
pub mod patterns;
pub mod platform;
pub mod property;
pub mod pu;
pub mod units;
pub mod validate;
pub mod version;
pub mod visit;

pub mod wellknown;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::descriptor::{Descriptor, DescriptorKind};
    pub use crate::diag::{Diagnostic, Report, Severity, Span};
    pub use crate::error::{ModelError, ValidationIssue};
    pub use crate::id::{GroupId, MrId, PuId, PuIdx};
    pub use crate::interconnect::{Directionality, Interconnect};
    pub use crate::memory::MemoryRegion;
    pub use crate::patterns::PatternKind;
    pub use crate::platform::{Platform, PlatformBuilder, PuHandle};
    pub use crate::property::{Property, PropertyValue, SubschemaRef};
    pub use crate::pu::{ProcessingUnit, PuClass};
    pub use crate::units::{Dimension, Unit};
    pub use crate::version::Version;
    pub use crate::wellknown;
}
