//! Traversal iterators over the platform forest.

use crate::id::PuIdx;
use crate::platform::Platform;
use crate::pu::ProcessingUnit;
use std::collections::VecDeque;

/// Depth-first pre-order traversal.
pub struct Dfs<'a> {
    platform: &'a Platform,
    stack: Vec<PuIdx>,
}

impl<'a> Dfs<'a> {
    pub(crate) fn over_forest(platform: &'a Platform) -> Self {
        let mut stack: Vec<PuIdx> = platform.roots().to_vec();
        stack.reverse();
        Self { platform, stack }
    }

    pub(crate) fn over_subtree(platform: &'a Platform, root: PuIdx) -> Self {
        Self {
            platform,
            stack: vec![root],
        }
    }
}

impl<'a> Iterator for Dfs<'a> {
    type Item = (PuIdx, &'a ProcessingUnit);

    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.stack.pop()?;
        let pu = self.platform.pu(idx);
        // Push children reversed so the leftmost child is visited first.
        for &c in pu.children().iter().rev() {
            self.stack.push(c);
        }
        Some((idx, pu))
    }
}

/// Breadth-first (level-order) traversal.
pub struct Bfs<'a> {
    platform: &'a Platform,
    queue: VecDeque<PuIdx>,
}

impl<'a> Bfs<'a> {
    pub(crate) fn over_forest(platform: &'a Platform) -> Self {
        Self {
            platform,
            queue: platform.roots().iter().copied().collect(),
        }
    }
}

impl<'a> Iterator for Bfs<'a> {
    type Item = (PuIdx, &'a ProcessingUnit);

    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.queue.pop_front()?;
        let pu = self.platform.pu(idx);
        self.queue.extend(pu.children().iter().copied());
        Some((idx, pu))
    }
}

#[cfg(test)]
mod tests {
    use crate::platform::Platform;

    /// Builds:
    /// ```text
    /// m1            m2
    /// ├── h1        └── w4
    /// │   ├── w1
    /// │   └── w2
    /// └── w3
    /// ```
    fn forest() -> Platform {
        let mut b = Platform::builder("f");
        let m1 = b.master("m1");
        let h1 = b.hybrid(m1, "h1").unwrap();
        b.worker(h1, "w1").unwrap();
        b.worker(h1, "w2").unwrap();
        b.worker(m1, "w3").unwrap();
        let m2 = b.master("m2");
        b.worker(m2, "w4").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dfs_preorder() {
        let p = forest();
        let order: Vec<String> = p.dfs().map(|(_, pu)| pu.id.to_string()).collect();
        assert_eq!(order, ["m1", "h1", "w1", "w2", "w3", "m2", "w4"]);
    }

    #[test]
    fn bfs_levelorder() {
        let p = forest();
        let order: Vec<String> = p.bfs().map(|(_, pu)| pu.id.to_string()).collect();
        assert_eq!(order, ["m1", "m2", "h1", "w3", "w4", "w1", "w2"]);
    }

    #[test]
    fn dfs_subtree() {
        let p = forest();
        let h1 = p.index_of("h1").unwrap();
        let order: Vec<String> = p.dfs_from(h1).map(|(_, pu)| pu.id.to_string()).collect();
        assert_eq!(order, ["h1", "w1", "w2"]);
    }

    #[test]
    fn traversals_cover_every_pu_once() {
        let p = forest();
        assert_eq!(p.dfs().count(), p.len());
        assert_eq!(p.bfs().count(), p.len());
    }

    #[test]
    fn empty_platform_traversals() {
        let p = Platform::builder("empty").build().unwrap();
        assert_eq!(p.dfs().count(), 0);
        assert_eq!(p.bfs().count(), 0);
    }
}
