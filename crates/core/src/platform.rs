//! The [`Platform`]: an immutable, validated platform description.
//!
//! A platform is a forest of processing-unit trees (multiple Masters may
//! co-exist at the top level, paper §III-A) plus a list of interconnect
//! edges. PUs live in an arena indexed by [`PuIdx`]; construction goes
//! through [`PlatformBuilder`], which validates the structural rules before
//! releasing a `Platform` value.

use crate::descriptor::Descriptor;
use crate::error::{ModelError, ValidationIssue};
use crate::id::{GroupId, PuId, PuIdx};
use crate::interconnect::Interconnect;
use crate::memory::MemoryRegion;
use crate::property::Property;
use crate::pu::{ProcessingUnit, PuClass};
use crate::validate;
use crate::version::Version;
use crate::visit::{Bfs, Dfs};
use std::collections::BTreeMap;
use std::fmt;

/// A validated description of one heterogeneous platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Human-readable platform name (not part of the paper's listings but
    /// required for a usable repository of descriptors).
    pub name: String,
    /// Base-schema version this description adheres to.
    pub schema_version: Version,
    pus: Vec<ProcessingUnit>,
    roots: Vec<PuIdx>,
    interconnects: Vec<Interconnect>,
    id_index: BTreeMap<PuId, PuIdx>,
}

impl Platform {
    /// Starts building a platform with the given name.
    pub fn builder(name: impl Into<String>) -> PlatformBuilder {
        PlatformBuilder::new(name)
    }

    /// Number of PU nodes (not counting `quantity` multiplicity).
    pub fn len(&self) -> usize {
        self.pus.len()
    }

    /// Whether the platform has no PUs.
    pub fn is_empty(&self) -> bool {
        self.pus.is_empty()
    }

    /// Total number of physical PUs, counting `quantity` multiplicity.
    pub fn total_units(&self) -> u64 {
        self.pus.iter().map(|p| p.quantity as u64).sum()
    }

    /// The PU at the given arena index.
    ///
    /// # Panics
    /// Panics if the index is out of bounds (indices are only produced by
    /// this platform, so that indicates a logic error).
    pub fn pu(&self, idx: PuIdx) -> &ProcessingUnit {
        &self.pus[idx.index()]
    }

    /// Looks up a PU by id.
    pub fn pu_by_id(&self, id: &str) -> Option<(PuIdx, &ProcessingUnit)> {
        let idx = *self.id_index.get(id)?;
        Some((idx, &self.pus[idx.index()]))
    }

    /// Arena index for a PU id.
    pub fn index_of(&self, id: &str) -> Option<PuIdx> {
        self.id_index.get(id).copied()
    }

    /// Top-level PU indices (the Masters), in declaration order.
    pub fn roots(&self) -> &[PuIdx] {
        &self.roots
    }

    /// All interconnect edges.
    pub fn interconnects(&self) -> &[Interconnect] {
        &self.interconnects
    }

    /// Interconnects touching the given PU.
    pub fn interconnects_of<'a>(
        &'a self,
        id: &'a PuId,
    ) -> impl Iterator<Item = &'a Interconnect> + 'a {
        self.interconnects.iter().filter(move |ic| ic.touches(id))
    }

    /// Iterates over all `(PuIdx, &ProcessingUnit)` pairs in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (PuIdx, &ProcessingUnit)> {
        self.pus
            .iter()
            .enumerate()
            .map(|(i, p)| (PuIdx::from_usize(i), p))
    }

    /// Depth-first (pre-order) traversal over the whole forest.
    pub fn dfs(&self) -> Dfs<'_> {
        Dfs::over_forest(self)
    }

    /// Depth-first traversal of the subtree rooted at `root`.
    pub fn dfs_from(&self, root: PuIdx) -> Dfs<'_> {
        Dfs::over_subtree(self, root)
    }

    /// Breadth-first traversal over the whole forest.
    pub fn bfs(&self) -> Bfs<'_> {
        Bfs::over_forest(self)
    }

    /// All PUs of the given class.
    pub fn by_class(&self, class: PuClass) -> impl Iterator<Item = (PuIdx, &ProcessingUnit)> {
        self.iter().filter(move |(_, p)| p.class == class)
    }

    /// All Master PUs.
    pub fn masters(&self) -> impl Iterator<Item = (PuIdx, &ProcessingUnit)> {
        self.by_class(PuClass::Master)
    }

    /// All Worker PUs.
    pub fn workers(&self) -> impl Iterator<Item = (PuIdx, &ProcessingUnit)> {
        self.by_class(PuClass::Worker)
    }

    /// All Hybrid PUs.
    pub fn hybrids(&self) -> impl Iterator<Item = (PuIdx, &ProcessingUnit)> {
        self.by_class(PuClass::Hybrid)
    }

    /// Depth of a PU (roots have depth 0).
    pub fn depth(&self, idx: PuIdx) -> usize {
        let mut d = 0;
        let mut cur = self.pus[idx.index()].parent;
        while let Some(p) = cur {
            d += 1;
            cur = self.pus[p.index()].parent;
        }
        d
    }

    /// Maximum depth over all PUs (empty platform → 0).
    pub fn height(&self) -> usize {
        (0..self.pus.len())
            .map(|i| self.depth(PuIdx::from_usize(i)))
            .max()
            .unwrap_or(0)
    }

    /// Path of arena indices from the root down to (and including) `idx`.
    pub fn path_from_root(&self, idx: PuIdx) -> Vec<PuIdx> {
        let mut path = vec![idx];
        let mut cur = self.pus[idx.index()].parent;
        while let Some(p) = cur {
            path.push(p);
            cur = self.pus[p.index()].parent;
        }
        path.reverse();
        path
    }

    /// The controlling chain of a PU: its parent, grandparent, … up to the
    /// root Master. Models "delegation of computational tasks from one
    /// processing-unit to another" in reverse.
    pub fn controllers(&self, idx: PuIdx) -> Vec<PuIdx> {
        let mut path = self.path_from_root(idx);
        path.pop();
        path.reverse();
        path
    }

    /// Map of logic-group name → member PU indices (declaration order).
    pub fn groups(&self) -> BTreeMap<GroupId, Vec<PuIdx>> {
        let mut map: BTreeMap<GroupId, Vec<PuIdx>> = BTreeMap::new();
        for (idx, pu) in self.iter() {
            for g in &pu.groups {
                map.entry(g.clone()).or_default().push(idx);
            }
        }
        map
    }

    /// Members of one logic group.
    pub fn group_members(&self, group: &str) -> Vec<PuIdx> {
        self.iter()
            .filter(|(_, p)| p.in_group(group))
            .map(|(i, _)| i)
            .collect()
    }

    /// Expands `quantity` multiplicities into individual PU nodes.
    ///
    /// A PU with `quantity = n > 1` is replaced by `n` clones with ids
    /// `"<id>.<k>"` (`k` in `0..n`), each with quantity 1, identical
    /// payload and identical children subtrees *shared logically* (children
    /// are re-parented to the first clone only — the PDL semantics is that
    /// the subtree describes the structure *per unit*, so each clone receives
    /// its own copy of the subtree). Interconnects whose endpoints had
    /// multiplicity are replicated for each clone pair combination with the
    /// same type/scheme.
    ///
    /// Simulators instantiate physical machines from the expanded form.
    pub fn expand_quantities(&self) -> Platform {
        let mut b = PlatformBuilder::new(self.name.clone());
        b.schema_version(self.schema_version);
        // Map original idx -> list of clone handles.
        let mut clones: Vec<Vec<PuHandle>> = vec![Vec::new(); self.pus.len()];

        fn clone_subtree(
            src: &Platform,
            b: &mut PlatformBuilder,
            clones: &mut Vec<Vec<PuHandle>>,
            idx: PuIdx,
            parent: Option<PuHandle>,
            suffix: &str,
        ) {
            let pu = src.pu(idx);
            let n = pu.quantity.max(1);
            for k in 0..n {
                let id = if n == 1 && suffix.is_empty() {
                    pu.id.as_str().to_string()
                } else if n == 1 {
                    format!("{}{}", pu.id, suffix)
                } else {
                    format!("{}{}.{}", pu.id, suffix, k)
                };
                let h = match parent {
                    None => b.root(id.as_str(), pu.class),
                    Some(p) => b
                        .child(p, id.as_str(), pu.class)
                        .expect("parent can control"),
                };
                b.pus[h.0.index()].descriptor = pu.descriptor.clone();
                b.pus[h.0.index()].memory_regions = pu.memory_regions.clone();
                b.pus[h.0.index()].groups = pu.groups.clone();
                clones[idx.index()].push(h);
                let child_suffix = if n == 1 {
                    String::new()
                } else {
                    format!(".{k}")
                };
                for &c in pu.children() {
                    clone_subtree(src, b, clones, c, Some(h), &child_suffix);
                }
            }
        }

        for &r in &self.roots {
            clone_subtree(self, &mut b, &mut clones, r, None, "");
        }

        // Replicate interconnects across clone combinations.
        for ic in &self.interconnects {
            let from_idx = self.index_of(ic.from.as_str());
            let to_idx = self.index_of(ic.to.as_str());
            if let (Some(fi), Some(ti)) = (from_idx, to_idx) {
                for fh in &clones[fi.index()] {
                    for th in &clones[ti.index()] {
                        let mut e = ic.clone();
                        e.from = b.pus[fh.0.index()].id.clone();
                        e.to = b.pus[th.0.index()].id.clone();
                        b.interconnect(e);
                    }
                }
            }
        }

        b.build_unchecked()
    }

    /// Extracts the control-view subtree rooted at `root` as a standalone
    /// platform: the root PU is promoted to Master (a Hybrid "can act as
    /// Master and Worker PU at the same time", §III-A — this is its Master
    /// face), descendants keep their classes, and only interconnects with
    /// both endpoints inside the subtree are retained.
    ///
    /// Tools use this to delegate a sub-hierarchy to a node-local scheduler
    /// in hierarchical systems (Figure 2).
    pub fn subplatform(&self, root: PuIdx) -> Platform {
        let mut b = PlatformBuilder::new(format!("{}@{}", self.name, self.pu(root).id));
        b.schema_version(self.schema_version);
        let mut kept_ids: Vec<PuId> = Vec::new();

        fn copy(
            src: &Platform,
            b: &mut PlatformBuilder,
            idx: PuIdx,
            parent: Option<PuHandle>,
            kept: &mut Vec<PuId>,
            is_root: bool,
        ) {
            let pu = src.pu(idx);
            let class = if is_root { PuClass::Master } else { pu.class };
            let h = match parent {
                None => b.root(pu.id.as_str(), class),
                Some(p) => b
                    .child(p, pu.id.as_str(), class)
                    .expect("source tree is well-formed"),
            };
            b.descriptor(h, pu.descriptor.clone());
            b.quantity(h, pu.quantity);
            for mr in &pu.memory_regions {
                b.memory(h, mr.clone());
            }
            for g in &pu.groups {
                b.group(h, g.clone());
            }
            kept.push(pu.id.clone());
            for &c in pu.children() {
                copy(src, b, c, Some(h), kept, false);
            }
        }
        copy(self, &mut b, root, None, &mut kept_ids, true);

        for ic in &self.interconnects {
            if kept_ids.contains(&ic.from) && kept_ids.contains(&ic.to) {
                b.interconnect(ic.clone());
            }
        }
        b.build_unchecked()
    }

    /// Re-checks the structural rules; a `Platform` built through
    /// [`PlatformBuilder::build`] always passes.
    pub fn validate(&self) -> Result<(), ModelError> {
        let issues = validate::check(self);
        if issues.is_empty() {
            Ok(())
        } else {
            Err(ModelError::Invalid(issues))
        }
    }

    /// Collects structural issues without failing.
    pub fn issues(&self) -> Vec<ValidationIssue> {
        validate::check(self)
    }

    pub(crate) fn arena(&self) -> &[ProcessingUnit] {
        &self.pus
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Platform {:?} (schema v{}, {} PUs, {} interconnects)",
            self.name,
            self.schema_version,
            self.len(),
            self.interconnects.len()
        )?;
        for (idx, pu) in self.dfs() {
            let indent = "  ".repeat(self.depth(idx) + 1);
            writeln!(f, "{indent}{pu}")?;
        }
        for ic in &self.interconnects {
            writeln!(f, "  IC {ic}")?;
        }
        Ok(())
    }
}

/// Opaque handle to a PU under construction. Only valid for the builder that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PuHandle(pub(crate) PuIdx);

/// Mutable construction state for a [`Platform`].
///
/// ```
/// use pdl_core::prelude::*;
///
/// // Listing 1 of the paper: one x86 Master with one GPU Worker.
/// let mut b = Platform::builder("gpgpu-node");
/// let m = b.master("0");
/// b.prop(m, Property::fixed("ARCHITECTURE", "x86"));
/// let w = b.worker(m, "1").unwrap();
/// b.prop(w, Property::fixed("ARCHITECTURE", "gpu"));
/// b.interconnect(Interconnect::new("rDMA", "0", "1"));
/// let platform = b.build().unwrap();
/// assert_eq!(platform.workers().count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    name: String,
    schema_version: Version,
    pub(crate) pus: Vec<ProcessingUnit>,
    roots: Vec<PuIdx>,
    interconnects: Vec<Interconnect>,
}

impl PlatformBuilder {
    /// Starts an empty platform.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            schema_version: Version::CURRENT,
            pus: Vec::new(),
            roots: Vec::new(),
            interconnects: Vec::new(),
        }
    }

    /// Overrides the schema version (defaults to [`Version::CURRENT`]).
    pub fn schema_version(&mut self, v: Version) -> &mut Self {
        self.schema_version = v;
        self
    }

    /// Adds a top-level PU of the given class. Use [`Self::master`] for the
    /// common case; this entry point exists so invalid descriptions (e.g.
    /// top-level Workers) can be constructed for testing and then rejected
    /// by [`Self::build`].
    pub fn root(&mut self, id: impl Into<PuId>, class: PuClass) -> PuHandle {
        let idx = self.push_pu(ProcessingUnit::new(id, class));
        self.roots.push(idx);
        PuHandle(idx)
    }

    /// Adds a top-level Master PU.
    pub fn master(&mut self, id: impl Into<PuId>) -> PuHandle {
        self.root(id, PuClass::Master)
    }

    /// Adds a child PU of the given class under `parent`.
    ///
    /// Fails with [`ModelError::CannotControl`] when the parent is a Worker.
    pub fn child(
        &mut self,
        parent: PuHandle,
        id: impl Into<PuId>,
        class: PuClass,
    ) -> Result<PuHandle, ModelError> {
        let pidx = self.check_handle(parent)?;
        let pclass = self.pus[pidx.index()].class;
        if !pclass.may_control() {
            return Err(ModelError::CannotControl {
                parent: self.pus[pidx.index()].id.clone(),
                class: pclass,
            });
        }
        let mut pu = ProcessingUnit::new(id, class);
        pu.parent = Some(pidx);
        let idx = self.push_pu(pu);
        self.pus[pidx.index()].children.push(idx);
        Ok(PuHandle(idx))
    }

    /// Adds a Worker under `parent`.
    pub fn worker(
        &mut self,
        parent: PuHandle,
        id: impl Into<PuId>,
    ) -> Result<PuHandle, ModelError> {
        self.child(parent, id, PuClass::Worker)
    }

    /// Adds a Hybrid under `parent`.
    pub fn hybrid(
        &mut self,
        parent: PuHandle,
        id: impl Into<PuId>,
    ) -> Result<PuHandle, ModelError> {
        self.child(parent, id, PuClass::Hybrid)
    }

    /// Appends a property to a PU's descriptor.
    pub fn prop(&mut self, pu: PuHandle, property: Property) -> &mut Self {
        self.pus[pu.0.index()].descriptor.push(property);
        self
    }

    /// Replaces a PU's whole descriptor.
    pub fn descriptor(&mut self, pu: PuHandle, descriptor: Descriptor) -> &mut Self {
        self.pus[pu.0.index()].descriptor = descriptor;
        self
    }

    /// Sets a PU's quantity (multiplicity).
    pub fn quantity(&mut self, pu: PuHandle, quantity: u32) -> &mut Self {
        self.pus[pu.0.index()].quantity = quantity;
        self
    }

    /// Attaches a memory region to a PU.
    pub fn memory(&mut self, pu: PuHandle, mr: MemoryRegion) -> &mut Self {
        self.pus[pu.0.index()].memory_regions.push(mr);
        self
    }

    /// Adds a PU to a logic group.
    pub fn group(&mut self, pu: PuHandle, group: impl Into<GroupId>) -> &mut Self {
        self.pus[pu.0.index()].groups.push(group.into());
        self
    }

    /// Adds an interconnect edge.
    pub fn interconnect(&mut self, ic: Interconnect) -> &mut Self {
        self.interconnects.push(ic);
        self
    }

    /// Id of the PU behind a handle (useful when wiring interconnects).
    pub fn id_of(&self, pu: PuHandle) -> &PuId {
        &self.pus[pu.0.index()].id
    }

    /// Validates and releases the platform.
    pub fn build(self) -> Result<Platform, ModelError> {
        let p = self.build_unchecked();
        p.validate()?;
        Ok(p)
    }

    /// Releases the platform without validation (issues remain queryable via
    /// [`Platform::issues`]). Needed for authoring flows that construct
    /// descriptions incrementally and for negative tests.
    pub fn build_unchecked(self) -> Platform {
        let mut id_index = BTreeMap::new();
        for (i, pu) in self.pus.iter().enumerate() {
            // First declaration wins; duplicates surface as validation issues.
            id_index
                .entry(pu.id.clone())
                .or_insert_with(|| PuIdx::from_usize(i));
        }
        Platform {
            name: self.name,
            schema_version: self.schema_version,
            pus: self.pus,
            roots: self.roots,
            interconnects: self.interconnects,
            id_index,
        }
    }

    fn push_pu(&mut self, pu: ProcessingUnit) -> PuIdx {
        let idx = PuIdx::from_usize(self.pus.len());
        self.pus.push(pu);
        idx
    }

    fn check_handle(&self, h: PuHandle) -> Result<PuIdx, ModelError> {
        if h.0.index() < self.pus.len() {
            Ok(h.0)
        } else {
            Err(ModelError::BadHandle(format!(
                "handle {} out of range ({} PUs)",
                h.0,
                self.pus.len()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn listing1() -> Platform {
        let mut b = Platform::builder("listing1");
        let m = b.master("0");
        b.prop(m, Property::fixed("ARCHITECTURE", "x86"));
        let w = b.worker(m, "1").unwrap();
        b.prop(w, Property::fixed("ARCHITECTURE", "gpu"));
        b.interconnect(Interconnect::new("rDMA", "0", "1"));
        b.build().unwrap()
    }

    #[test]
    fn listing1_structure() {
        let p = listing1();
        assert_eq!(p.len(), 2);
        assert_eq!(p.roots().len(), 1);
        assert_eq!(p.masters().count(), 1);
        assert_eq!(p.workers().count(), 1);
        assert_eq!(p.hybrids().count(), 0);
        let (widx, w) = p.pu_by_id("1").unwrap();
        assert_eq!(w.architecture(), Some("gpu"));
        assert_eq!(p.depth(widx), 1);
        assert_eq!(p.height(), 1);
        assert_eq!(p.interconnects().len(), 1);
        assert_eq!(p.interconnects_of(&PuId::new("1")).count(), 1);
    }

    #[test]
    fn worker_cannot_control() {
        let mut b = Platform::builder("x");
        let m = b.master("0");
        let w = b.worker(m, "1").unwrap();
        let err = b.worker(w, "2").unwrap_err();
        assert!(matches!(err, ModelError::CannotControl { .. }));
    }

    #[test]
    fn multiple_masters_coexist() {
        let mut b = Platform::builder("dual");
        b.master("cpu0");
        b.master("cpu1");
        let p = b.build().unwrap();
        assert_eq!(p.roots().len(), 2);
        assert_eq!(p.masters().count(), 2);
    }

    #[test]
    fn hierarchy_paths() {
        let mut b = Platform::builder("deep");
        let m = b.master("m");
        let h = b.hybrid(m, "h").unwrap();
        let w = b.worker(h, "w").unwrap();
        let p = b.build().unwrap();
        let widx = p.index_of("w").unwrap();
        let path: Vec<_> = p
            .path_from_root(widx)
            .into_iter()
            .map(|i| p.pu(i).id.as_str().to_string())
            .collect();
        assert_eq!(path, ["m", "h", "w"]);
        let ctl: Vec<_> = p
            .controllers(widx)
            .into_iter()
            .map(|i| p.pu(i).id.as_str().to_string())
            .collect();
        assert_eq!(ctl, ["h", "m"]);
        let _ = (h, w);
    }

    #[test]
    fn groups_collected() {
        let mut b = Platform::builder("g");
        let m = b.master("0");
        let w1 = b.worker(m, "1").unwrap();
        let w2 = b.worker(m, "2").unwrap();
        b.group(w1, "gpus").group(w2, "gpus").group(w2, "fast");
        let p = b.build().unwrap();
        let groups = p.groups();
        assert_eq!(groups[&GroupId::new("gpus")].len(), 2);
        assert_eq!(groups[&GroupId::new("fast")].len(), 1);
        assert_eq!(p.group_members("gpus").len(), 2);
        assert!(p.group_members("none").is_empty());
    }

    #[test]
    fn total_units_counts_quantity() {
        let mut b = Platform::builder("q");
        let m = b.master("0");
        let w = b.worker(m, "spe").unwrap();
        b.quantity(w, 8);
        let p = b.build().unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.total_units(), 9);
    }

    #[test]
    fn expand_quantities_clones_units() {
        let mut b = Platform::builder("cell");
        let m = b.master("ppe");
        let w = b.worker(m, "spe").unwrap();
        b.quantity(w, 8);
        b.interconnect(Interconnect::new("EIB", "ppe", "spe"));
        let p = b.build().unwrap();
        let e = p.expand_quantities();
        assert_eq!(e.len(), 9);
        assert_eq!(e.total_units(), 9);
        assert!(e.pu_by_id("spe.0").is_some());
        assert!(e.pu_by_id("spe.7").is_some());
        assert!(e.pu_by_id("spe").is_none());
        // one EIB edge per clone
        assert_eq!(e.interconnects().len(), 8);
        e.validate().unwrap();
    }

    #[test]
    fn expand_quantities_replicates_subtrees() {
        // Hybrid node with quantity 2, each controlling one worker:
        // expansion must yield 2 hybrids and 2 workers.
        let mut b = Platform::builder("cluster");
        let m = b.master("fe");
        let h = b.hybrid(m, "node").unwrap();
        b.quantity(h, 2);
        let w = b.worker(h, "gpu").unwrap();
        let _ = w;
        let p = b.build().unwrap();
        let e = p.expand_quantities();
        assert_eq!(e.hybrids().count(), 2);
        assert_eq!(e.workers().count(), 2);
        assert!(e.pu_by_id("node.0").is_some());
        assert!(e.pu_by_id("gpu.0").is_some());
        assert!(e.pu_by_id("gpu.1").is_some());
        e.validate().unwrap();
    }

    #[test]
    fn subplatform_promotes_hybrid_to_master() {
        let mut b = Platform::builder("cluster");
        let m = b.master("fe");
        let h = b.hybrid(m, "node0").unwrap();
        b.prop(h, Property::fixed("ARCHITECTURE", "x86"));
        let w = b.worker(h, "gpu0").unwrap();
        b.group(w, "gpus");
        b.worker(m, "other").unwrap();
        b.interconnect(Interconnect::new("PCIe", "node0", "gpu0"));
        b.interconnect(Interconnect::new("IB", "fe", "node0"));
        let p = b.build().unwrap();

        let node_idx = p.index_of("node0").unwrap();
        let sub = p.subplatform(node_idx);
        sub.validate().unwrap();
        assert_eq!(sub.name, "cluster@node0");
        assert_eq!(sub.len(), 2);
        let (_, root) = sub.pu_by_id("node0").unwrap();
        assert_eq!(root.class, PuClass::Master); // promoted
        assert_eq!(root.architecture(), Some("x86")); // payload kept
        assert!(sub.pu_by_id("gpu0").is_some());
        assert!(sub.pu_by_id("fe").is_none());
        assert!(sub.pu_by_id("other").is_none());
        // Only the internal interconnect survives.
        assert_eq!(sub.interconnects().len(), 1);
        assert_eq!(sub.interconnects()[0].ic_type, "PCIe");
        assert_eq!(sub.group_members("gpus").len(), 1);
    }

    #[test]
    fn subplatform_of_master_is_identity_shape() {
        let p = listing1();
        let sub = p.subplatform(p.roots()[0]);
        sub.validate().unwrap();
        assert_eq!(sub.len(), p.len());
        assert_eq!(sub.interconnects().len(), 1);
    }

    #[test]
    fn display_renders_tree() {
        let p = listing1();
        let s = p.to_string();
        assert!(s.contains("Master(id=0"));
        assert!(s.contains("Worker(id=1"));
        assert!(s.contains("rDMA"));
    }

    #[test]
    fn bad_handle_detected() {
        let mut b = Platform::builder("x");
        let m = b.master("0");
        let mut other = Platform::builder("y");
        // Handle from b used against empty builder `other`.
        let err = other.child(m, "1", PuClass::Worker).unwrap_err();
        assert!(matches!(err, ModelError::BadHandle(_)));
    }
}
