//! Interconnect (IC) entities: explicit communication facilities between PUs.
//!
//! Paper §III-A: *"Interconnect entities describe communication facilities
//! between processing elements. The main purpose of this entity is the
//! definition of PU connectivity on the abstract machine level. Concrete
//! instances collect detailed information about communication schemes,
//! underlying bus infrastructure or other communication performance
//! descriptors."*
//!
//! Listing 1 uses `<Interconnect type="rDMA" from="0" to="1" scheme=""/>`.

use crate::descriptor::Descriptor;
use crate::id::PuId;
use crate::wellknown;
use std::fmt;

/// Directionality of an interconnect edge.
///
/// The paper's listings use directed `from`/`to` attributes; most physical
/// links are symmetric, so descriptors default to bidirectional and tools
/// treating the graph as directed can query [`Interconnect::connects`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Directionality {
    /// Transfers possible both ways (typical bus/PCIe behaviour).
    #[default]
    Bidirectional,
    /// Transfers only from `from` to `to`.
    Unidirectional,
}

/// An interconnect edge between two processing units.
#[derive(Debug, Clone, PartialEq)]
pub struct Interconnect {
    /// Interconnect type label, e.g. `rDMA`, `PCIe`, `QPI`, `EIB`, `shared-mem`.
    pub ic_type: String,
    /// Source PU id.
    pub from: PuId,
    /// Destination PU id.
    pub to: PuId,
    /// Communication scheme annotation (free-form; empty in Listing 1).
    pub scheme: String,
    /// Directionality; `Bidirectional` unless stated otherwise.
    pub directionality: Directionality,
    /// Concrete performance descriptors (bandwidth, latency, …).
    pub descriptor: Descriptor,
}

impl Interconnect {
    /// A bidirectional interconnect of the given type between two PUs.
    pub fn new(ic_type: impl Into<String>, from: impl Into<PuId>, to: impl Into<PuId>) -> Self {
        Self {
            ic_type: ic_type.into(),
            from: from.into(),
            to: to.into(),
            scheme: String::new(),
            directionality: Directionality::Bidirectional,
            descriptor: Descriptor::new(),
        }
    }

    /// Sets the scheme annotation, builder style.
    pub fn with_scheme(mut self, scheme: impl Into<String>) -> Self {
        self.scheme = scheme.into();
        self
    }

    /// Marks the edge unidirectional, builder style.
    pub fn unidirectional(mut self) -> Self {
        self.directionality = Directionality::Unidirectional;
        self
    }

    /// Sets the concrete descriptor, builder style.
    pub fn with_descriptor(mut self, descriptor: Descriptor) -> Self {
        self.descriptor = descriptor;
        self
    }

    /// Whether a transfer from `a` to `b` may use this edge.
    pub fn connects(&self, a: &PuId, b: &PuId) -> bool {
        if self.from == *a && self.to == *b {
            return true;
        }
        self.directionality == Directionality::Bidirectional && self.from == *b && self.to == *a
    }

    /// Whether the edge touches the given PU in either role.
    pub fn touches(&self, pu: &PuId) -> bool {
        self.from == *pu || self.to == *pu
    }

    /// Given one endpoint, returns the other; `None` if `pu` is not an
    /// endpoint, or if the edge is unidirectional *into* `pu` (no outgoing
    /// traversal possible).
    pub fn other_endpoint(&self, pu: &PuId) -> Option<&PuId> {
        if self.from == *pu {
            Some(&self.to)
        } else if self.to == *pu && self.directionality == Directionality::Bidirectional {
            Some(&self.from)
        } else {
            None
        }
    }

    /// Bandwidth in bytes/second from the well-known `BANDWIDTH` property.
    pub fn bandwidth_bps(&self) -> Option<f64> {
        self.descriptor.value_base(wellknown::BANDWIDTH)
    }

    /// Latency in seconds from the well-known `LATENCY` property.
    pub fn latency_s(&self) -> Option<f64> {
        self.descriptor.value_base(wellknown::LATENCY)
    }
}

impl fmt::Display for Interconnect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arrow = match self.directionality {
            Directionality::Bidirectional => "<->",
            Directionality::Unidirectional => "-->",
        };
        write!(f, "{} {} {} [{}]", self.from, arrow, self.to, self.ic_type)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::{Property, PropertyValue};
    use crate::units::Unit;

    #[test]
    fn listing1_edge() {
        let ic = Interconnect::new("rDMA", "0", "1").with_scheme("");
        assert_eq!(ic.ic_type, "rDMA");
        assert!(ic.connects(&PuId::new("0"), &PuId::new("1")));
        assert!(ic.connects(&PuId::new("1"), &PuId::new("0"))); // default bidi
        assert!(!ic.connects(&PuId::new("0"), &PuId::new("2")));
    }

    #[test]
    fn unidirectional_edge() {
        let ic = Interconnect::new("dma", "a", "b").unidirectional();
        assert!(ic.connects(&PuId::new("a"), &PuId::new("b")));
        assert!(!ic.connects(&PuId::new("b"), &PuId::new("a")));
        assert_eq!(ic.other_endpoint(&PuId::new("a")), Some(&PuId::new("b")));
        assert_eq!(ic.other_endpoint(&PuId::new("b")), None);
        assert_eq!(ic.other_endpoint(&PuId::new("c")), None);
    }

    #[test]
    fn touches_either_endpoint() {
        let ic = Interconnect::new("PCIe", "0", "1");
        assert!(ic.touches(&PuId::new("0")));
        assert!(ic.touches(&PuId::new("1")));
        assert!(!ic.touches(&PuId::new("2")));
    }

    #[test]
    fn performance_descriptors() {
        let ic = Interconnect::new("PCIe", "0", "1").with_descriptor(
            Descriptor::new()
                .with(Property {
                    name: wellknown::BANDWIDTH.into(),
                    value: PropertyValue::with_unit(8.0, Unit::GigaBytePerSec),
                    fixed: true,
                    subschema: None,
                })
                .with(Property {
                    name: wellknown::LATENCY.into(),
                    value: PropertyValue::with_unit(10.0, Unit::MicroSecond),
                    fixed: true,
                    subschema: None,
                }),
        );
        assert_eq!(ic.bandwidth_bps(), Some(8e9));
        assert!((ic.latency_s().unwrap() - 1e-5).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(
            Interconnect::new("rDMA", "0", "1").to_string(),
            "0 <-> 1 [rDMA]"
        );
        assert_eq!(
            Interconnect::new("dma", "0", "1")
                .unidirectional()
                .to_string(),
            "0 --> 1 [dma]"
        );
    }
}
