//! Descriptors: ordered, queryable collections of [`Property`] entries.
//!
//! The paper's Figure 3 defines `PUDescriptor`, `MRDescriptor` and
//! `ICDescriptor`, all specializations of an abstract `Descriptor` holding
//! `Property` children. The specialization is positional (which entity owns
//! the descriptor), so a single [`Descriptor`] type suffices; the
//! [`DescriptorKind`] tag records the XML element name for round-tripping.

use crate::property::{Property, PropertyValue};
use std::fmt;

/// Which entity a descriptor belongs to; determines the XML element name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DescriptorKind {
    /// `<PUDescriptor>` on Master/Hybrid/Worker elements.
    Pu,
    /// `<MRDescriptor>` on `MemoryRegion` elements.
    Mr,
    /// `<ICDescriptor>` on Interconnect elements.
    Ic,
}

impl DescriptorKind {
    /// XML element name for this descriptor kind.
    pub fn element_name(self) -> &'static str {
        match self {
            DescriptorKind::Pu => "PUDescriptor",
            DescriptorKind::Mr => "MRDescriptor",
            DescriptorKind::Ic => "ICDescriptor",
        }
    }
}

/// An ordered property list attached to a PU, memory region or interconnect.
///
/// Order is preserved for faithful XML round-trips; lookup by name returns
/// the first match (duplicate names are legal in the PDL — later subschema
/// entries may shadow base entries — and all matches are reachable via
/// [`Descriptor::get_all`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Descriptor {
    properties: Vec<Property>,
}

impl Descriptor {
    /// An empty descriptor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a descriptor from an iterator of properties.
    pub fn from_properties(props: impl IntoIterator<Item = Property>) -> Self {
        Self {
            properties: props.into_iter().collect(),
        }
    }

    /// Appends a property, preserving insertion order.
    pub fn push(&mut self, prop: Property) {
        self.properties.push(prop);
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, prop: Property) -> Self {
        self.push(prop);
        self
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.properties.len()
    }

    /// Whether the descriptor has no properties.
    pub fn is_empty(&self) -> bool {
        self.properties.is_empty()
    }

    /// First property with the given name.
    pub fn get(&self, name: &str) -> Option<&Property> {
        self.properties.iter().find(|p| p.name == name)
    }

    /// Mutable access to the first property with the given name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Property> {
        self.properties.iter_mut().find(|p| p.name == name)
    }

    /// All properties with the given name, in order.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Property> + 'a {
        self.properties.iter().filter(move |p| p.name == name)
    }

    /// Textual value of the first property with the given name.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.get(name).map(|p| p.value.text.as_str())
    }

    /// Integer value of the first property with the given name.
    pub fn value_i64(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(|p| p.value.as_i64())
    }

    /// Float value of the first property with the given name.
    pub fn value_f64(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(|p| p.value.as_f64())
    }

    /// Value of the first property with the given name, converted to base
    /// units of its dimension (bytes, Hz, FLOP/s, …).
    pub fn value_base(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(|p| p.value.in_base_units())
    }

    /// Inserts or replaces the first property with the same name.
    /// Returns the previous property if one was replaced.
    pub fn set(&mut self, prop: Property) -> Option<Property> {
        if let Some(existing) = self.properties.iter_mut().find(|p| p.name == prop.name) {
            Some(std::mem::replace(existing, prop))
        } else {
            self.properties.push(prop);
            None
        }
    }

    /// Removes all properties with the given name, returning how many were
    /// removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let before = self.properties.len();
        self.properties.retain(|p| p.name != name);
        before - self.properties.len()
    }

    /// Iterates over all properties in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Property> {
        self.properties.iter()
    }

    /// Mutable iteration over all properties in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Property> {
        self.properties.iter_mut()
    }

    /// Properties that are still *unfixed* and empty, i.e. placeholders a
    /// later toolchain stage must instantiate (paper §III-B).
    pub fn unresolved(&self) -> impl Iterator<Item = &Property> {
        self.properties
            .iter()
            .filter(|p| !p.fixed && p.value.is_empty())
    }

    /// Instantiates every unfixed property for which `resolve` returns a
    /// value. Returns the number of instantiated properties. This models the
    /// paper's "later instantiation by a runtime or other machine dependent
    /// library".
    pub fn instantiate_with<F>(&mut self, mut resolve: F) -> usize
    where
        F: FnMut(&str) -> Option<PropertyValue>,
    {
        let mut n = 0;
        for p in &mut self.properties {
            if !p.fixed {
                if let Some(v) = resolve(&p.name) {
                    p.value = v;
                    n += 1;
                }
            }
        }
        n
    }
}

impl IntoIterator for Descriptor {
    type Item = Property;
    type IntoIter = std::vec::IntoIter<Property>;

    fn into_iter(self) -> Self::IntoIter {
        self.properties.into_iter()
    }
}

impl<'a> IntoIterator for &'a Descriptor {
    type Item = &'a Property;
    type IntoIter = std::slice::Iter<'a, Property>;

    fn into_iter(self) -> Self::IntoIter {
        self.properties.iter()
    }
}

impl FromIterator<Property> for Descriptor {
    fn from_iter<T: IntoIterator<Item = Property>>(iter: T) -> Self {
        Self::from_properties(iter)
    }
}

impl fmt::Display for Descriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.properties.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Descriptor {
        Descriptor::new()
            .with(Property::fixed("ARCHITECTURE", "gpu"))
            .with(Property::unfixed("DEVICE_NAME", ""))
            .with(Property::fixed("CORES", "15"))
    }

    #[test]
    fn lookup_and_typed_values() {
        let d = sample();
        assert_eq!(d.value("ARCHITECTURE"), Some("gpu"));
        assert_eq!(d.value_i64("CORES"), Some(15));
        assert_eq!(d.value_f64("CORES"), Some(15.0));
        assert_eq!(d.value("MISSING"), None);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn set_replaces_first_match() {
        let mut d = sample();
        let old = d.set(Property::fixed("CORES", "16"));
        assert_eq!(old.unwrap().value.text, "15");
        assert_eq!(d.value_i64("CORES"), Some(16));
        assert_eq!(d.len(), 3);
        assert!(d.set(Property::fixed("NEW", "x")).is_none());
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn remove_counts() {
        let mut d = sample();
        d.push(Property::fixed("CORES", "32"));
        assert_eq!(d.remove("CORES"), 2);
        assert_eq!(d.remove("CORES"), 0);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn duplicates_all_reachable() {
        let mut d = Descriptor::new();
        d.push(Property::fixed("X", "1"));
        d.push(Property::fixed("X", "2"));
        let vals: Vec<_> = d.get_all("X").map(|p| p.value.text.as_str()).collect();
        assert_eq!(vals, ["1", "2"]);
        // get returns the first
        assert_eq!(d.value("X"), Some("1"));
    }

    #[test]
    fn unresolved_and_instantiate() {
        let mut d = sample();
        let unresolved: Vec<_> = d.unresolved().map(|p| p.name.clone()).collect();
        assert_eq!(unresolved, ["DEVICE_NAME"]);
        let n = d.instantiate_with(|name| {
            (name == "DEVICE_NAME").then(|| PropertyValue::text("GeForce GTX 480"))
        });
        assert_eq!(n, 1);
        assert_eq!(d.value("DEVICE_NAME"), Some("GeForce GTX 480"));
        assert_eq!(d.unresolved().count(), 0);
        // Fixed properties are never instantiated.
        let n = d.instantiate_with(|_| Some(PropertyValue::text("clobber")));
        assert_eq!(n, 1); // only the (still unfixed) DEVICE_NAME
        assert_eq!(d.value("ARCHITECTURE"), Some("gpu"));
    }

    #[test]
    fn order_preserved_in_iteration() {
        let d = sample();
        let names: Vec<_> = d.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["ARCHITECTURE", "DEVICE_NAME", "CORES"]);
    }

    #[test]
    fn element_names() {
        assert_eq!(DescriptorKind::Pu.element_name(), "PUDescriptor");
        assert_eq!(DescriptorKind::Mr.element_name(), "MRDescriptor");
        assert_eq!(DescriptorKind::Ic.element_name(), "ICDescriptor");
    }

    #[test]
    fn from_iterator() {
        let d: Descriptor = vec![Property::fixed("A", "1")].into_iter().collect();
        assert_eq!(d.len(), 1);
        let props: Vec<Property> = d.into_iter().collect();
        assert_eq!(props[0].name, "A");
    }
}
