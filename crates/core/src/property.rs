//! Properties: the extensible key/value mechanism of the PDL.
//!
//! Section III-B of the paper: *"we introduce extensible Descriptor and
//! Property types"*. A property is a named value with three orthogonal
//! extension facilities:
//!
//! * **fixed / unfixed** — unfixed values are "marked to be editable by other
//!   tools or users", enabling definition of required descriptors at program
//!   composition time with later instantiation by a runtime (paper §III-B).
//! * **typed subschemas** — concrete toolchains register specialized property
//!   types via XML schema inheritance (`xsi:type="ocl:oclDevicePropertyType"`,
//!   Listing 2). We record the subschema reference on the property.
//! * **units** — values may carry a [`Unit`] annotation.

use crate::units::{to_base, Unit};
use std::fmt;

/// Reference to a registered property subschema, e.g. the `OpenCL` device
/// property type of Listing 2. The `namespace` is the XML prefix ("ocl"),
/// `type_name` the local type name ("oclDevicePropertyType").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SubschemaRef {
    /// Namespace prefix, e.g. `ocl`.
    pub namespace: String,
    /// Local type name, e.g. `oclDevicePropertyType`.
    pub type_name: String,
}

impl SubschemaRef {
    /// Creates a subschema reference from prefix and local type name.
    pub fn new(namespace: impl Into<String>, type_name: impl Into<String>) -> Self {
        Self {
            namespace: namespace.into(),
            type_name: type_name.into(),
        }
    }

    /// Parses the `xsi:type` attribute form `prefix:TypeName`.
    pub fn parse(qualified: &str) -> Option<Self> {
        let (ns, ty) = qualified.split_once(':')?;
        if ns.is_empty() || ty.is_empty() {
            return None;
        }
        Some(Self::new(ns, ty))
    }

    /// The qualified `prefix:TypeName` form used in XML.
    pub fn qualified(&self) -> String {
        format!("{}:{}", self.namespace, self.type_name)
    }
}

impl fmt::Display for SubschemaRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.namespace, self.type_name)
    }
}

/// The value of a [`Property`].
///
/// The canonical representation is textual (as in the XML), optionally
/// annotated with a unit; typed accessors perform parsing on demand.
/// Unfixed properties may have an empty value that a later toolchain stage
/// fills in.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyValue {
    /// Raw textual value exactly as it appears in the XML.
    pub text: String,
    /// Optional unit annotation (`<value unit="kB">…`).
    pub unit: Option<Unit>,
}

impl PropertyValue {
    /// A plain textual value without unit.
    pub fn text(s: impl Into<String>) -> Self {
        Self {
            text: s.into(),
            unit: None,
        }
    }

    /// A numeric value with a unit annotation.
    pub fn with_unit(value: impl fmt::Display, unit: Unit) -> Self {
        Self {
            text: value.to_string(),
            unit: Some(unit),
        }
    }

    /// An empty value, typical for *unfixed* properties awaiting
    /// instantiation by a later tool.
    pub fn empty() -> Self {
        Self::text("")
    }

    /// Whether the value is empty (whitespace counts as empty).
    pub fn is_empty(&self) -> bool {
        self.text.trim().is_empty()
    }

    /// Parses the value as an integer, ignoring surrounding whitespace.
    pub fn as_i64(&self) -> Option<i64> {
        self.text.trim().parse().ok()
    }

    /// Parses the value as a float, ignoring surrounding whitespace.
    pub fn as_f64(&self) -> Option<f64> {
        self.text.trim().parse().ok()
    }

    /// Parses the value as a boolean (`true`/`false`/`1`/`0`, case
    /// insensitive).
    pub fn as_bool(&self) -> Option<bool> {
        match self.text.trim().to_ascii_lowercase().as_str() {
            "true" | "1" | "yes" => Some(true),
            "false" | "0" | "no" => Some(false),
            _ => None,
        }
    }

    /// Numeric value converted to the base unit of its dimension
    /// (bytes, hertz, FLOP/s, …). Returns the raw number when no unit is
    /// attached.
    pub fn in_base_units(&self) -> Option<f64> {
        let v = self.as_f64()?;
        Some(match self.unit {
            Some(u) => to_base(v, u),
            None => v,
        })
    }
}

impl fmt::Display for PropertyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.unit {
            Some(u) => write!(f, "{} {}", self.text, u),
            None => f.write_str(&self.text),
        }
    }
}

/// A single `<Property>` entry of a descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct Property {
    /// Property name (`ARCHITECTURE`, `MAX_COMPUTE_UNITS`, …).
    pub name: String,
    /// Property value with optional unit.
    pub value: PropertyValue,
    /// `fixed="true"` values are immutable platform facts; `fixed="false"`
    /// values may be edited/instantiated by later tools (paper §III-B).
    pub fixed: bool,
    /// Optional subschema type (`xsi:type`), e.g. the `ocl:` properties of
    /// Listing 2. `None` for base-schema properties.
    pub subschema: Option<SubschemaRef>,
}

impl Property {
    /// A fixed base-schema property (Listing 1 style).
    pub fn fixed(name: impl Into<String>, value: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            value: PropertyValue::text(value),
            fixed: true,
            subschema: None,
        }
    }

    /// An unfixed base-schema property (editable by later tools).
    pub fn unfixed(name: impl Into<String>, value: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            value: PropertyValue::text(value),
            fixed: false,
            subschema: None,
        }
    }

    /// An unfixed property carrying a typed subschema reference
    /// (Listing 2 style).
    pub fn typed(name: impl Into<String>, value: PropertyValue, subschema: SubschemaRef) -> Self {
        Self {
            name: name.into(),
            value,
            fixed: false,
            subschema: Some(subschema),
        }
    }

    /// Sets the unit annotation, builder style.
    pub fn with_unit(mut self, unit: Unit) -> Self {
        self.value.unit = Some(unit);
        self
    }

    /// Marks the property fixed/unfixed, builder style.
    pub fn with_fixed(mut self, fixed: bool) -> Self {
        self.fixed = fixed;
        self
    }

    /// Instantiates an *unfixed* property with a concrete value, as a
    /// runtime or machine-dependent library would (paper §III-B). Returns
    /// `false` (and leaves the property untouched) if the property is fixed.
    pub fn instantiate(&mut self, value: PropertyValue) -> bool {
        if self.fixed {
            return false;
        }
        self.value = value;
        true
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)?;
        if !self.fixed {
            f.write_str(" (unfixed)")?;
        }
        if let Some(s) = &self.subschema {
            write!(f, " [{s}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_property() {
        let p = Property::fixed("ARCHITECTURE", "x86");
        assert!(p.fixed);
        assert_eq!(p.name, "ARCHITECTURE");
        assert_eq!(p.value.text, "x86");
        assert!(p.subschema.is_none());
    }

    #[test]
    fn listing2_property() {
        let p = Property::typed(
            "GLOBAL_MEM_SIZE",
            PropertyValue::with_unit(1_572_864u64, Unit::KiloByte),
            SubschemaRef::new("ocl", "oclDevicePropertyType"),
        );
        assert!(!p.fixed);
        assert_eq!(p.value.as_i64(), Some(1_572_864));
        assert_eq!(p.value.in_base_units(), Some(1_572_864_000.0));
        assert_eq!(
            p.subschema.as_ref().unwrap().qualified(),
            "ocl:oclDevicePropertyType"
        );
    }

    #[test]
    fn subschema_parse() {
        let s = SubschemaRef::parse("ocl:oclDevicePropertyType").unwrap();
        assert_eq!(s.namespace, "ocl");
        assert_eq!(s.type_name, "oclDevicePropertyType");
        assert!(SubschemaRef::parse("noprefix").is_none());
        assert!(SubschemaRef::parse(":x").is_none());
        assert!(SubschemaRef::parse("x:").is_none());
    }

    #[test]
    fn unfixed_instantiation() {
        let mut p = Property::unfixed("DEVICE_NAME", "");
        assert!(p.value.is_empty());
        assert!(p.instantiate(PropertyValue::text("GeForce GTX 480")));
        assert_eq!(p.value.text, "GeForce GTX 480");
    }

    #[test]
    fn fixed_rejects_instantiation() {
        let mut p = Property::fixed("ARCHITECTURE", "x86");
        assert!(!p.instantiate(PropertyValue::text("gpu")));
        assert_eq!(p.value.text, "x86");
    }

    #[test]
    fn typed_accessors() {
        let v = PropertyValue::text(" 42 ");
        assert_eq!(v.as_i64(), Some(42));
        assert_eq!(v.as_f64(), Some(42.0));
        assert_eq!(PropertyValue::text("true").as_bool(), Some(true));
        assert_eq!(PropertyValue::text("0").as_bool(), Some(false));
        assert_eq!(PropertyValue::text("maybe").as_bool(), None);
        assert_eq!(PropertyValue::text("x").as_i64(), None);
    }

    #[test]
    fn display_forms() {
        let p = Property::fixed("A", "1").with_unit(Unit::GigaHertz);
        assert_eq!(p.to_string(), "A=1 GHz");
        let q = Property::unfixed("B", "2");
        assert!(q.to_string().contains("(unfixed)"));
    }

    #[test]
    fn base_units_without_unit_annotation() {
        assert_eq!(PropertyValue::text("5").in_base_units(), Some(5.0));
        assert_eq!(PropertyValue::text("abc").in_base_units(), None);
    }
}
