//! Processing units (PU) and the three PU classes of the machine model.
//!
//! Paper §III-A divides processing units into three classes (Figure 2):
//!
//! * **Master** — "a feature rich, general-purpose processing-unit that marks
//!   a possible starting point for execution of a program. Master entities
//!   can only be defined on the highest hierarchical level but may co-exist
//!   with other Masters within the same system."
//! * **Worker** — "a specialized compute resource which is present at lower
//!   hierarchy-levels (leaf nodes) and carries out a specific task. Workers
//!   must be controlled by Master or Hybrid PUs."
//! * **Hybrid** — "can act as Master and Worker PU at the same time. Hybrid
//!   PUs are present at inner nodes of the PU hierarchy and must always be
//!   controlled either by other Hybrid or Master units."
//!
//! These structural rules are enforced by [`validate`](crate::validate::validate).

use crate::descriptor::Descriptor;
use crate::id::{GroupId, PuId, PuIdx};
use crate::memory::MemoryRegion;
use crate::wellknown;
use std::fmt;

/// The class of a processing unit within the control hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PuClass {
    /// General-purpose root PU; program entry point.
    Master,
    /// Inner-node PU that is controlled and controls others.
    Hybrid,
    /// Leaf PU carrying out delegated tasks.
    Worker,
}

impl PuClass {
    /// XML element name (`Master`, `Hybrid`, `Worker`).
    pub fn element_name(self) -> &'static str {
        match self {
            PuClass::Master => "Master",
            PuClass::Hybrid => "Hybrid",
            PuClass::Worker => "Worker",
        }
    }

    /// Whether this class may *control* other PUs, i.e. delegate tasks to
    /// children (the paper's logical control-relationship).
    pub fn may_control(self) -> bool {
        matches!(self, PuClass::Master | PuClass::Hybrid)
    }

    /// Whether this class must itself be controlled (have a parent).
    pub fn must_be_controlled(self) -> bool {
        matches!(self, PuClass::Hybrid | PuClass::Worker)
    }

    /// Parses an XML element name into a class.
    pub fn from_element_name(name: &str) -> Option<Self> {
        match name {
            "Master" => Some(PuClass::Master),
            "Hybrid" => Some(PuClass::Hybrid),
            "Worker" => Some(PuClass::Worker),
            _ => None,
        }
    }
}

impl fmt::Display for PuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.element_name())
    }
}

/// A processing unit node of the platform tree.
///
/// Tree links (`parent`/`children`) are arena indices owned by the
/// [`Platform`](crate::platform::Platform); the PU itself carries the PDL
/// payload: identity, class, multiplicity, descriptor, memory regions and
/// logic-group memberships.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessingUnit {
    /// Platform-unique identifier.
    pub id: PuId,
    /// Master / Hybrid / Worker.
    pub class: PuClass,
    /// Multiplicity (`quantity="8"` describes eight identical units).
    pub quantity: u32,
    /// The `<PUDescriptor>` property list.
    pub descriptor: Descriptor,
    /// Memory regions directly attached to this PU.
    pub memory_regions: Vec<MemoryRegion>,
    /// Logic-group memberships (`LogicGroupAttribute`).
    pub groups: Vec<GroupId>,
    pub(crate) parent: Option<PuIdx>,
    pub(crate) children: Vec<PuIdx>,
}

impl ProcessingUnit {
    /// Creates a PU with quantity 1 and empty payload.
    pub fn new(id: impl Into<PuId>, class: PuClass) -> Self {
        Self {
            id: id.into(),
            class,
            quantity: 1,
            descriptor: Descriptor::new(),
            memory_regions: Vec::new(),
            groups: Vec::new(),
            parent: None,
            children: Vec::new(),
        }
    }

    /// Arena index of the controlling PU, if any.
    pub fn parent(&self) -> Option<PuIdx> {
        self.parent
    }

    /// Arena indices of controlled PUs, in declaration order.
    pub fn children(&self) -> &[PuIdx] {
        &self.children
    }

    /// Whether the PU is a leaf of the control hierarchy.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Whether the PU belongs to the named logic group.
    pub fn in_group(&self, group: &str) -> bool {
        self.groups.iter().any(|g| g.as_str() == group)
    }

    /// Convenience: the well-known `ARCHITECTURE` property value.
    pub fn architecture(&self) -> Option<&str> {
        self.descriptor.value(wellknown::ARCHITECTURE)
    }

    /// Convenience: the well-known `CORES` property value.
    pub fn cores(&self) -> Option<i64> {
        self.descriptor.value_i64(wellknown::CORES)
    }

    /// Convenience: peak double-precision FLOP/s in base units.
    pub fn peak_flops_dp(&self) -> Option<f64> {
        self.descriptor.value_base(wellknown::PEAK_GFLOPS_DP)
    }

    /// Convenience: sustained-efficiency fraction (defaults to 1.0).
    pub fn efficiency(&self) -> f64 {
        self.descriptor
            .value_f64(wellknown::EFFICIENCY)
            .unwrap_or(1.0)
    }

    /// Convenience: software platforms (comma-separated
    /// `SOFTWARE_PLATFORM` property) this PU supports, e.g.
    /// `["OpenCL", "Cuda"]`.
    pub fn software_platforms(&self) -> Vec<&str> {
        self.descriptor
            .value(wellknown::SOFTWARE_PLATFORM)
            .map(|v| {
                v.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl fmt::Display for ProcessingUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(id={}", self.class, self.id)?;
        if self.quantity != 1 {
            write!(f, ", quantity={}", self.quantity)?;
        }
        if let Some(arch) = self.architecture() {
            write!(f, ", arch={arch}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::Property;

    #[test]
    fn class_rules() {
        assert!(PuClass::Master.may_control());
        assert!(PuClass::Hybrid.may_control());
        assert!(!PuClass::Worker.may_control());
        assert!(!PuClass::Master.must_be_controlled());
        assert!(PuClass::Hybrid.must_be_controlled());
        assert!(PuClass::Worker.must_be_controlled());
    }

    #[test]
    fn element_name_round_trip() {
        for c in [PuClass::Master, PuClass::Hybrid, PuClass::Worker] {
            assert_eq!(PuClass::from_element_name(c.element_name()), Some(c));
        }
        assert_eq!(PuClass::from_element_name("Device"), None);
    }

    #[test]
    fn wellknown_accessors() {
        let mut pu = ProcessingUnit::new("1", PuClass::Worker);
        pu.descriptor.push(Property::fixed("ARCHITECTURE", "gpu"));
        pu.descriptor.push(Property::fixed("CORES", "15"));
        pu.descriptor
            .push(Property::fixed("SOFTWARE_PLATFORM", "OpenCL, Cuda"));
        assert_eq!(pu.architecture(), Some("gpu"));
        assert_eq!(pu.cores(), Some(15));
        assert_eq!(pu.software_platforms(), ["OpenCL", "Cuda"]);
        assert_eq!(pu.efficiency(), 1.0);
        assert!(pu.is_leaf());
    }

    #[test]
    fn group_membership() {
        let mut pu = ProcessingUnit::new("1", PuClass::Worker);
        pu.groups.push(GroupId::new("gpus"));
        assert!(pu.in_group("gpus"));
        assert!(!pu.in_group("cpus"));
    }

    #[test]
    fn display_forms() {
        let mut pu = ProcessingUnit::new("0", PuClass::Master);
        assert_eq!(pu.to_string(), "Master(id=0)");
        pu.quantity = 4;
        pu.descriptor.push(Property::fixed("ARCHITECTURE", "x86"));
        assert_eq!(pu.to_string(), "Master(id=0, quantity=4, arch=x86)");
    }

    #[test]
    fn empty_software_platforms() {
        let pu = ProcessingUnit::new("0", PuClass::Master);
        assert!(pu.software_platforms().is_empty());
    }
}
