//! Units of measure for property values.
//!
//! Listing 2 of the paper attaches units to property values
//! (`<ocl:value unit="kB">1572864</ocl:value>`). Concrete descriptors need a
//! common vocabulary so tools can compare values produced by different
//! discovery mechanisms; this module defines that vocabulary together with
//! conversion to canonical base units.
//!
//! Canonical base units:
//! * capacities → bytes
//! * frequencies → hertz
//! * compute rates → FLOP/s
//! * bandwidths → bytes/second
//! * durations → seconds
//! * power → watts

use std::fmt;
use std::str::FromStr;

/// A unit annotation on a property value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    // Capacity (decimal prefixes, as used by the paper's OpenCL dump).
    /// Bytes.
    Byte,
    /// Kilobytes (10^3 B).
    KiloByte,
    /// Megabytes (10^6 B).
    MegaByte,
    /// Gigabytes (10^9 B).
    GigaByte,
    /// Terabytes (10^12 B).
    TeraByte,
    // Capacity (binary prefixes, as reported by e.g. /proc).
    /// Kibibytes (2^10 B).
    KibiByte,
    /// Mebibytes (2^20 B).
    MebiByte,
    /// Gibibytes (2^30 B).
    GibiByte,
    // Frequency.
    /// Hertz.
    Hertz,
    /// Megahertz (10^6 Hz).
    MegaHertz,
    /// Gigahertz (10^9 Hz).
    GigaHertz,
    // Compute rate (double/single precision is a property-name concern).
    /// Floating-point operations per second.
    FlopPerSec,
    /// GFLOP/s (10^9 FLOP/s).
    GigaFlopPerSec,
    /// TFLOP/s (10^12 FLOP/s).
    TeraFlopPerSec,
    // Bandwidth.
    /// Bytes per second.
    BytePerSec,
    /// MB/s (10^6 B/s).
    MegaBytePerSec,
    /// GB/s (10^9 B/s).
    GigaBytePerSec,
    // Duration.
    /// Nanoseconds.
    NanoSecond,
    /// Microseconds.
    MicroSecond,
    /// Milliseconds.
    MilliSecond,
    /// Seconds.
    Second,
    // Power.
    /// Watts.
    Watt,
    /// Kilowatts (10^3 W).
    KiloWatt,
}

impl Unit {
    /// The multiplier that converts a value in this unit to the canonical
    /// base unit of its dimension.
    pub fn to_base_factor(self) -> f64 {
        use Unit::*;
        match self {
            Byte => 1.0,
            KiloByte => 1e3,
            MegaByte => 1e6,
            GigaByte => 1e9,
            TeraByte => 1e12,
            KibiByte => 1024.0,
            MebiByte => 1024.0 * 1024.0,
            GibiByte => 1024.0 * 1024.0 * 1024.0,
            Hertz => 1.0,
            MegaHertz => 1e6,
            GigaHertz => 1e9,
            FlopPerSec => 1.0,
            GigaFlopPerSec => 1e9,
            TeraFlopPerSec => 1e12,
            BytePerSec => 1.0,
            MegaBytePerSec => 1e6,
            GigaBytePerSec => 1e9,
            NanoSecond => 1e-9,
            MicroSecond => 1e-6,
            MilliSecond => 1e-3,
            Second => 1.0,
            Watt => 1.0,
            KiloWatt => 1e3,
        }
    }

    /// Dimension of the unit; values are only comparable within one
    /// dimension.
    pub fn dimension(self) -> Dimension {
        use Unit::*;
        match self {
            Byte | KiloByte | MegaByte | GigaByte | TeraByte | KibiByte | MebiByte | GibiByte => {
                Dimension::Capacity
            }
            Hertz | MegaHertz | GigaHertz => Dimension::Frequency,
            FlopPerSec | GigaFlopPerSec | TeraFlopPerSec => Dimension::ComputeRate,
            BytePerSec | MegaBytePerSec | GigaBytePerSec => Dimension::Bandwidth,
            NanoSecond | MicroSecond | MilliSecond | Second => Dimension::Duration,
            Watt | KiloWatt => Dimension::Power,
        }
    }

    /// Canonical spelling used when serializing to XML.
    pub fn as_str(self) -> &'static str {
        use Unit::*;
        match self {
            Byte => "B",
            KiloByte => "kB",
            MegaByte => "MB",
            GigaByte => "GB",
            TeraByte => "TB",
            KibiByte => "KiB",
            MebiByte => "MiB",
            GibiByte => "GiB",
            Hertz => "Hz",
            MegaHertz => "MHz",
            GigaHertz => "GHz",
            FlopPerSec => "FLOPS",
            GigaFlopPerSec => "GFLOPS",
            TeraFlopPerSec => "TFLOPS",
            BytePerSec => "B/s",
            MegaBytePerSec => "MB/s",
            GigaBytePerSec => "GB/s",
            NanoSecond => "ns",
            MicroSecond => "us",
            MilliSecond => "ms",
            Second => "s",
            Watt => "W",
            KiloWatt => "kW",
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when a unit string is not part of the vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownUnit(pub String);

impl fmt::Display for UnknownUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown unit {:?}", self.0)
    }
}

impl std::error::Error for UnknownUnit {}

impl FromStr for Unit {
    type Err = UnknownUnit;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        use Unit::*;
        // Case-insensitive on the alphabetic part; the paper's listings use
        // "kB", OpenCL dumps often use "KB".
        Ok(match s {
            "B" | "b" | "byte" | "bytes" => Byte,
            "kB" | "KB" | "kb" => KiloByte,
            "MB" | "mb" => MegaByte,
            "GB" | "gb" => GigaByte,
            "TB" | "tb" => TeraByte,
            "KiB" | "kib" => KibiByte,
            "MiB" | "mib" => MebiByte,
            "GiB" | "gib" => GibiByte,
            "Hz" | "hz" => Hertz,
            "MHz" | "mhz" => MegaHertz,
            "GHz" | "ghz" => GigaHertz,
            "FLOPS" | "flops" | "FLOP/s" => FlopPerSec,
            "GFLOPS" | "gflops" | "GFLOP/s" => GigaFlopPerSec,
            "TFLOPS" | "tflops" | "TFLOP/s" => TeraFlopPerSec,
            "B/s" | "b/s" => BytePerSec,
            "MB/s" | "mb/s" => MegaBytePerSec,
            "GB/s" | "gb/s" => GigaBytePerSec,
            "ns" => NanoSecond,
            "us" | "µs" => MicroSecond,
            "ms" => MilliSecond,
            "s" | "sec" => Second,
            "W" | "w" => Watt,
            "kW" | "kw" => KiloWatt,
            other => return Err(UnknownUnit(other.to_string())),
        })
    }
}

/// Physical dimension of a [`Unit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dimension {
    /// Storage capacity (base: bytes).
    Capacity,
    /// Clock frequency (base: hertz).
    Frequency,
    /// Compute throughput (base: FLOP/s).
    ComputeRate,
    /// Transfer bandwidth (base: bytes/second).
    Bandwidth,
    /// Time (base: seconds).
    Duration,
    /// Electrical power (base: watts).
    Power,
}

/// Converts `value` expressed in `unit` to the canonical base unit of the
/// unit's dimension (e.g. `kB` → bytes).
pub fn to_base(value: f64, unit: Unit) -> f64 {
    value * unit.to_base_factor()
}

/// Converts a base-unit `value` to the given display `unit`.
pub fn from_base(value: f64, unit: Unit) -> f64 {
    value / unit.to_base_factor()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_spelling() {
        // Listing 2 uses unit="kB".
        assert_eq!("kB".parse::<Unit>().unwrap(), Unit::KiloByte);
    }

    #[test]
    fn parse_round_trips_canonical_spelling() {
        let all = [
            Unit::Byte,
            Unit::KiloByte,
            Unit::MegaByte,
            Unit::GigaByte,
            Unit::TeraByte,
            Unit::KibiByte,
            Unit::MebiByte,
            Unit::GibiByte,
            Unit::Hertz,
            Unit::MegaHertz,
            Unit::GigaHertz,
            Unit::FlopPerSec,
            Unit::GigaFlopPerSec,
            Unit::TeraFlopPerSec,
            Unit::BytePerSec,
            Unit::MegaBytePerSec,
            Unit::GigaBytePerSec,
            Unit::NanoSecond,
            Unit::MicroSecond,
            Unit::MilliSecond,
            Unit::Second,
            Unit::Watt,
            Unit::KiloWatt,
        ];
        for u in all {
            assert_eq!(u.as_str().parse::<Unit>().unwrap(), u, "unit {u}");
        }
    }

    #[test]
    fn unknown_unit_is_error() {
        let err = "parsecs".parse::<Unit>().unwrap_err();
        assert_eq!(err.0, "parsecs");
        assert!(err.to_string().contains("parsecs"));
    }

    #[test]
    fn capacity_conversion() {
        // The GTX480 global memory from Listing 2: 1572864 kB.
        let bytes = to_base(1_572_864.0, Unit::KiloByte);
        assert_eq!(bytes, 1_572_864_000.0);
        assert_eq!(from_base(bytes, Unit::GigaByte), 1.572864);
    }

    #[test]
    fn binary_prefixes() {
        assert_eq!(to_base(1.0, Unit::GibiByte), 1024.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn dimensions_partition_units() {
        assert_eq!(Unit::KiloByte.dimension(), Dimension::Capacity);
        assert_eq!(Unit::GigaHertz.dimension(), Dimension::Frequency);
        assert_eq!(Unit::GigaFlopPerSec.dimension(), Dimension::ComputeRate);
        assert_eq!(Unit::GigaBytePerSec.dimension(), Dimension::Bandwidth);
        assert_eq!(Unit::MicroSecond.dimension(), Dimension::Duration);
        assert_eq!(Unit::Watt.dimension(), Dimension::Power);
    }

    #[test]
    fn duration_to_seconds() {
        assert!((to_base(250.0, Unit::NanoSecond) - 2.5e-7).abs() < 1e-20);
        assert_eq!(to_base(3.0, Unit::MilliSecond), 0.003);
    }
}
