//! A rustc-style diagnostics framework shared by all PDL tooling.
//!
//! Every problem a tool can report — structural validation issues, deeper
//! platform analyses, program/mapping analyses over annotated sources, and
//! trace-replay findings — is expressed as a [`Diagnostic`]: a stable code,
//! a severity, a human-readable message, and optionally a source span and
//! machine-readable subject. Codes are partitioned by prefix:
//!
//! * `P0xx` — structural platform rules (paper §III-A), migrated from
//!   [`crate::validate::check`].
//! * `P1xx` — deeper platform analyses (cycles, reachability, endpoint
//!   resolution, subschema typing) and schema-level XML findings.
//! * `C0xx` — Cascabel program/mapping analyses.
//! * `T0xx` — trace-replay (schedule conformance) findings.
//!
//! The human renderer lives here; the JSON renderer lives in `pdl-analyze`
//! next to its dependency-free JSON value type.

use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only; never affects exit status.
    Note,
    /// Suspicious but possibly intentional; exit status is unaffected.
    Warning,
    /// A genuine defect; linting exits nonzero.
    Error,
}

impl Severity {
    /// Lowercase label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A source position a diagnostic can point at (1-based line/column of an
/// XML element or an annotated-C line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// File the span refers to, when known.
    pub file: Option<String>,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (0 = column unknown, render as line only).
    pub col: u32,
}

impl Span {
    /// A span with no file association.
    pub fn at(line: u32, col: u32) -> Self {
        Span {
            file: None,
            line,
            col,
        }
    }

    /// Attaches a file name.
    #[must_use]
    pub fn in_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(file) = &self.file {
            write!(f, "{file}:")?;
        }
        if self.col == 0 {
            write!(f, "{}", self.line)
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// One finding: stable code, severity, message, optional span/subject/notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`P003`, `C001`, `T002`, …). Codes are append-only: a
    /// published code never changes meaning.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable, single-sentence message.
    pub message: String,
    /// Where in the source the problem is, when a source exists.
    pub span: Option<Span>,
    /// Machine-readable anchor (a PU id, task interface, group name, task
    /// index) for tools that post-process JSON output.
    pub subject: Option<String>,
    /// Secondary explanations and suggestions.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Error, message)
    }

    /// A new warning diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Warning, message)
    }

    /// A new diagnostic with an explicit severity.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: None,
            subject: None,
            notes: Vec::new(),
        }
    }

    /// Attaches a source span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attaches a machine-readable subject.
    #[must_use]
    pub fn with_subject(mut self, subject: impl Into<String>) -> Self {
        self.subject = Some(subject.into());
        self
    }

    /// Appends a secondary note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic in the human `severity[code]: message` form,
    /// followed by indented notes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(span) = &self.span {
            out.push_str(&format!("{span}: "));
        }
        out.push_str(&format!(
            "{}[{}]: {}",
            self.severity, self.code, self.message
        ));
        for note in &self.notes {
            out.push_str(&format!("\n  note: {note}"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// An ordered collection of diagnostics from one analysis run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// The findings, in emission order (or sorted via [`Report::sort`]).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends another report's diagnostics.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Iterates over the diagnostics.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter()
    }

    /// Whether any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of errors.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warnings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// The multiset of codes, sorted — what golden tests compare against.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self.diagnostics.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes
    }

    /// Sorts diagnostics by (file, line, column, code) for stable output.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            let key = |d: &Diagnostic| {
                (
                    d.span.as_ref().and_then(|s| s.file.clone()),
                    d.span.as_ref().map_or(u32::MAX, |s| s.line),
                    d.span.as_ref().map_or(u32::MAX, |s| s.col),
                    d.code,
                )
            };
            key(a).cmp(&key(b))
        });
    }

    /// Renders all diagnostics plus a one-line summary, human style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        ));
        out
    }
}

impl FromIterator<Diagnostic> for Report {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Self {
        Report {
            diagnostics: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_with_span_and_notes() {
        let d = Diagnostic::error("P003", "Master PU \"m2\" is not at the top level")
            .with_span(Span::at(4, 9).in_file("bad.xml"))
            .with_subject("m2")
            .with_note("Masters can only appear at the highest hierarchical level");
        let s = d.render();
        assert!(s.starts_with("bad.xml:4:9: error[P003]:"));
        assert!(s.contains("note: Masters"));
    }

    #[test]
    fn report_counts_and_codes() {
        let mut r = Report::new();
        r.push(Diagnostic::warning("C009", "w"));
        r.push(Diagnostic::error("P001", "e"));
        r.push(Diagnostic::error("P001", "e2"));
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 2);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.codes(), vec!["C009", "P001", "P001"]);
    }

    #[test]
    fn sort_orders_by_position() {
        let mut r = Report::new();
        r.push(Diagnostic::error("P002", "later").with_span(Span::at(9, 1)));
        r.push(Diagnostic::error("P001", "earlier").with_span(Span::at(2, 5)));
        r.push(Diagnostic::error("P000", "spanless"));
        r.sort();
        assert_eq!(r.diagnostics[0].code, "P001");
        assert_eq!(r.diagnostics[1].code, "P002");
        assert_eq!(r.diagnostics[2].code, "P000");
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}
