//! Identifier newtypes used throughout the machine model.
//!
//! The PDL identifies processing units, memory regions and logic groups by
//! string identifiers (Listing 1 of the paper uses `id="0"`, `id="1"`, …).
//! We keep identifiers as strings to stay faithful to the XML representation,
//! but wrap them in newtypes so the different id spaces cannot be confused.

use std::borrow::Borrow;
use std::fmt;

macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(String);

        impl $name {
            /// Creates a new identifier from anything string-like.
            pub fn new(s: impl Into<String>) -> Self {
                Self(s.into())
            }

            /// Returns the identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// Consumes the identifier, returning the underlying `String`.
            pub fn into_string(self) -> String {
                self.0
            }

            /// Returns `true` if the identifier is empty.
            ///
            /// Empty identifiers are rejected by
            /// [`validate`](crate::validate::validate), but can transiently
            /// exist while a description is being authored.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self(s)
            }
        }

        impl From<u64> for $name {
            fn from(n: u64) -> Self {
                Self(n.to_string())
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }

        impl PartialEq<str> for $name {
            fn eq(&self, other: &str) -> bool {
                self.0 == other
            }
        }

        impl PartialEq<&str> for $name {
            fn eq(&self, other: &&str) -> bool {
                self.0 == *other
            }
        }
    };
}

string_id! {
    /// Identifier of a processing unit (`<Master id="0">`).
    ///
    /// Unique within one [`Platform`](crate::platform::Platform).
    PuId
}

string_id! {
    /// Identifier of a memory region.
    ///
    /// Unique within the owning processing unit.
    MrId
}

string_id! {
    /// A logic-group name as introduced by the paper's
    /// `LogicGroupAttribute`: an arbitrary label shared by a sub-set of
    /// processing units, referenced by task `execute` annotations.
    GroupId
}

/// Index of a processing unit inside a [`Platform`](crate::platform::Platform)
/// arena. Stable for the lifetime of the platform value; invalidated by
/// structural mutation through [`PlatformBuilder`](crate::platform::PlatformBuilder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PuIdx(pub(crate) u32);

impl PuIdx {
    /// Returns the raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_usize(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "platform arena overflow");
        PuIdx(i as u32)
    }
}

impl fmt::Display for PuIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_round_trip() {
        let id = PuId::new("42");
        assert_eq!(id.to_string(), "42");
        assert_eq!(id.as_str(), "42");
    }

    #[test]
    fn from_u64() {
        assert_eq!(PuId::from(7u64), PuId::new("7"));
    }

    #[test]
    fn ids_hash_like_strings() {
        let mut set = HashSet::new();
        set.insert(PuId::new("a"));
        assert!(set.contains("a"));
        assert!(!set.contains("b"));
    }

    #[test]
    fn distinct_id_types_are_distinct() {
        // Compile-time property: PuId and GroupId cannot be compared.
        // We just check both construct fine from the same text.
        let p = PuId::new("gpu0");
        let g = GroupId::new("gpu0");
        assert_eq!(p.as_str(), g.as_str());
    }

    #[test]
    fn empty_detection() {
        assert!(PuId::new("").is_empty());
        assert!(!PuId::new("0").is_empty());
    }

    #[test]
    fn puidx_roundtrip() {
        let i = PuIdx::from_usize(5);
        assert_eq!(i.index(), 5);
        assert_eq!(i.to_string(), "#5");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(PuId::new("a") < PuId::new("b"));
        assert!(PuId::new("10") < PuId::new("9")); // string order, documented
    }
}
