//! Schema versioning.
//!
//! Paper §III-B: *"Predefined Descriptor and Property subschemas have unique
//! identification and versioning support provided by the XSD."* Platforms and
//! registered subschemas carry a `major.minor` version; compatibility follows
//! the usual rule that minor revisions are backward compatible.

use std::fmt;
use std::str::FromStr;

/// A `major.minor` schema version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Version {
    /// Incompatible-change counter.
    pub major: u32,
    /// Backward-compatible-change counter.
    pub minor: u32,
}

impl Version {
    /// Creates a version.
    pub const fn new(major: u32, minor: u32) -> Self {
        Self { major, minor }
    }

    /// The base PDL schema version implemented by this crate.
    pub const CURRENT: Version = Version::new(1, 0);

    /// Whether a document written against `other` can be read by a tool
    /// implementing `self`: same major, and the tool's minor is at least the
    /// document's minor.
    pub fn can_read(self, other: Version) -> bool {
        self.major == other.major && self.minor >= other.minor
    }
}

impl Default for Version {
    fn default() -> Self {
        Version::CURRENT
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

/// Error parsing a version string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionParseError(pub String);

impl fmt::Display for VersionParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid version string {:?} (expected MAJOR.MINOR)",
            self.0
        )
    }
}

impl std::error::Error for VersionParseError {}

impl FromStr for Version {
    type Err = VersionParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || VersionParseError(s.to_string());
        let (maj, min) = s.split_once('.').ok_or_else(err)?;
        Ok(Version {
            major: maj.trim().parse().map_err(|_| err())?,
            minor: min.trim().parse().map_err(|_| err())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let v: Version = "2.7".parse().unwrap();
        assert_eq!(v, Version::new(2, 7));
        assert_eq!(v.to_string(), "2.7");
    }

    #[test]
    fn rejects_garbage() {
        assert!("".parse::<Version>().is_err());
        assert!("1".parse::<Version>().is_err());
        assert!("1.x".parse::<Version>().is_err());
        assert!("a.1".parse::<Version>().is_err());
    }

    #[test]
    fn compatibility_rule() {
        let tool = Version::new(1, 3);
        assert!(tool.can_read(Version::new(1, 0)));
        assert!(tool.can_read(Version::new(1, 3)));
        assert!(!tool.can_read(Version::new(1, 4)));
        assert!(!tool.can_read(Version::new(2, 0)));
        assert!(!tool.can_read(Version::new(0, 3)));
    }

    #[test]
    fn ordering() {
        assert!(Version::new(1, 9) < Version::new(2, 0));
        assert!(Version::new(1, 2) < Version::new(1, 10));
    }
}
