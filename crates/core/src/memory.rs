//! Memory regions (MR): directly addressable memory attached to PUs.
//!
//! Paper §III-A: *"Memory regions can be present for all processing units
//! within the abstract machine. While the abstract model only supports the
//! definition of directly addressable MRs, concrete instantiations could
//! express qualitative properties […] affinities, relative speeds to PUs,
//! sizes or other descriptors which are highly system dependent."*

use crate::descriptor::Descriptor;
use crate::id::MrId;
use crate::wellknown;

/// A memory region owned by a processing unit.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryRegion {
    /// Identifier, unique within the owning PU.
    pub id: MrId,
    /// Concrete qualitative properties (size, bandwidth, latency, kind…).
    pub descriptor: Descriptor,
}

impl MemoryRegion {
    /// Creates a memory region with an empty descriptor.
    pub fn new(id: impl Into<MrId>) -> Self {
        Self {
            id: id.into(),
            descriptor: Descriptor::new(),
        }
    }

    /// Builder-style descriptor population.
    pub fn with_descriptor(mut self, descriptor: Descriptor) -> Self {
        self.descriptor = descriptor;
        self
    }

    /// Capacity in bytes, read from the well-known `SIZE` property
    /// (unit-converted). `None` when the descriptor does not state a size.
    pub fn size_bytes(&self) -> Option<f64> {
        self.descriptor.value_base(wellknown::SIZE)
    }

    /// Bandwidth to the owning PU in bytes/second, from the well-known
    /// `BANDWIDTH` property.
    pub fn bandwidth_bps(&self) -> Option<f64> {
        self.descriptor.value_base(wellknown::BANDWIDTH)
    }

    /// Access latency in seconds, from the well-known `LATENCY` property.
    pub fn latency_s(&self) -> Option<f64> {
        self.descriptor.value_base(wellknown::LATENCY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::{Property, PropertyValue};
    use crate::units::Unit;

    #[test]
    fn qualitative_properties() {
        let mr = MemoryRegion::new("gmem0").with_descriptor(
            Descriptor::new()
                .with(Property {
                    name: wellknown::SIZE.into(),
                    value: PropertyValue::with_unit(1_572_864u64, Unit::KiloByte),
                    fixed: true,
                    subschema: None,
                })
                .with(Property {
                    name: wellknown::BANDWIDTH.into(),
                    value: PropertyValue::with_unit(177.4, Unit::GigaBytePerSec),
                    fixed: true,
                    subschema: None,
                }),
        );
        assert_eq!(mr.size_bytes(), Some(1_572_864_000.0));
        assert_eq!(mr.bandwidth_bps(), Some(177.4e9));
        assert_eq!(mr.latency_s(), None);
    }

    #[test]
    fn empty_region() {
        let mr = MemoryRegion::new("m");
        assert!(mr.descriptor.is_empty());
        assert_eq!(mr.size_bytes(), None);
        assert_eq!(mr.id, MrId::new("m"));
    }
}
