//! Generic architectural patterns (paper Figure 2).
//!
//! The PDL's value proposition is that *abstract control patterns* (e.g.
//! Master–Worker) are first-class and portable: programs reference the
//! pattern, tools map the pattern onto concrete platforms. This module
//! provides constructors for the canonical patterns used throughout the
//! paper and the literature it cites, and a [`PatternKind`] vocabulary that
//! `pdl-query` matches concrete platforms against.

use crate::platform::{Platform, PlatformBuilder, PuHandle};
use crate::property::Property;
use std::fmt;

/// The canonical control-relationship patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// One Master, one or more directly attached Workers
    /// (OpenCL/CUDA host–device, paper Listing 1).
    HostDevice,
    /// One Master controlling a flat pool of homogeneous Workers
    /// (classic master–worker, also the Cell B.E. PPE/SPE shape).
    MasterWorkerPool,
    /// Master → Hybrid inner nodes → Workers (hierarchical systems,
    /// e.g. clusters of accelerator nodes; Figure 2 of the paper).
    Hierarchical,
    /// Multiple top-level Masters sharing Workers via interconnects
    /// (dual-host systems).
    MultiMaster,
}

impl fmt::Display for PatternKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PatternKind::HostDevice => "host-device",
            PatternKind::MasterWorkerPool => "master-worker-pool",
            PatternKind::Hierarchical => "hierarchical",
            PatternKind::MultiMaster => "multi-master",
        };
        f.write_str(s)
    }
}

/// Builds the abstract host–device pattern: one Master (`m0`), `devices`
/// Workers (`w0`…), one interconnect per device. No concrete properties —
/// this is a *generic* descriptor in the paper's sense; concrete platforms
/// instantiate it.
pub fn host_device(devices: u32) -> Platform {
    let mut b = Platform::builder(format!("pattern:host-device:{devices}"));
    let m = b.master("m0");
    b.prop(m, Property::fixed("PATTERN_ROLE", "host"));
    for i in 0..devices {
        let w = b.worker(m, format!("w{i}")).expect("master controls");
        b.prop(w, Property::fixed("PATTERN_ROLE", "device"));
        b.interconnect(crate::interconnect::Interconnect::new(
            "link",
            "m0",
            format!("w{i}"),
        ));
    }
    b.build().expect("pattern is structurally valid")
}

/// Builds the master–worker pool pattern: one Master with a single Worker
/// node of `quantity = pool_size` (the PDL `quantity` facility).
pub fn master_worker_pool(pool_size: u32) -> Platform {
    let mut b = Platform::builder(format!("pattern:master-worker-pool:{pool_size}"));
    let m = b.master("m0");
    b.prop(m, Property::fixed("PATTERN_ROLE", "master"));
    let w = b.worker(m, "pool").expect("master controls");
    b.quantity(w, pool_size.max(1));
    b.prop(w, Property::fixed("PATTERN_ROLE", "worker"));
    b.interconnect(crate::interconnect::Interconnect::new("link", "m0", "pool"));
    b.build().expect("pattern is structurally valid")
}

/// Builds the hierarchical pattern of Figure 2: one Master controlling
/// `nodes` Hybrid inner nodes, each controlling `workers_per_node` Workers.
pub fn hierarchical(nodes: u32, workers_per_node: u32) -> Platform {
    let mut b = Platform::builder(format!("pattern:hierarchical:{nodes}x{workers_per_node}"));
    let m = b.master("m0");
    b.prop(m, Property::fixed("PATTERN_ROLE", "root"));
    for n in 0..nodes {
        let h = b.hybrid(m, format!("h{n}")).expect("master controls");
        b.prop(h, Property::fixed("PATTERN_ROLE", "inner"));
        b.interconnect(crate::interconnect::Interconnect::new(
            "link",
            "m0",
            format!("h{n}"),
        ));
        for w in 0..workers_per_node {
            let id = format!("h{n}w{w}");
            let wh = b.worker(h, id.clone()).expect("hybrid controls");
            b.prop(wh, Property::fixed("PATTERN_ROLE", "leaf"));
            b.interconnect(crate::interconnect::Interconnect::new(
                "link",
                format!("h{n}"),
                id,
            ));
        }
    }
    b.build().expect("pattern is structurally valid")
}

/// Builds a multi-master pattern: `masters` top-level Masters, each with one
/// Worker, cross-connected so each Master can reach each Worker.
pub fn multi_master(masters: u32) -> Platform {
    let mut b = Platform::builder(format!("pattern:multi-master:{masters}"));
    let mut worker_ids = Vec::new();
    for i in 0..masters {
        let m = b.master(format!("m{i}"));
        let wid = format!("w{i}");
        b.worker(m, wid.clone()).expect("master controls");
        worker_ids.push(wid);
    }
    for i in 0..masters {
        for wid in &worker_ids {
            b.interconnect(crate::interconnect::Interconnect::new(
                "link",
                format!("m{i}"),
                wid.clone(),
            ));
        }
    }
    b.build().expect("pattern is structurally valid")
}

/// Wires an interconnect between two PUs identified by builder handles —
/// convenience so pattern builders need not track ids separately.
pub fn link(b: &mut PlatformBuilder, from: PuHandle, to: PuHandle, ic_type: &str) {
    let from_id = b.id_of(from).clone();
    let to_id = b.id_of(to).clone();
    b.interconnect(crate::interconnect::Interconnect::new(
        ic_type, from_id, to_id,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pu::PuClass;

    #[test]
    fn host_device_shape() {
        let p = host_device(2);
        assert_eq!(p.masters().count(), 1);
        assert_eq!(p.workers().count(), 2);
        assert_eq!(p.interconnects().len(), 2);
        assert_eq!(p.height(), 1);
    }

    #[test]
    fn host_device_zero_devices() {
        let p = host_device(0);
        assert_eq!(p.workers().count(), 0);
        assert_eq!(p.masters().count(), 1);
    }

    #[test]
    fn pool_uses_quantity() {
        let p = master_worker_pool(8);
        assert_eq!(p.len(), 2);
        assert_eq!(p.total_units(), 9);
        let (_, w) = p.pu_by_id("pool").unwrap();
        assert_eq!(w.quantity, 8);
        assert_eq!(w.class, PuClass::Worker);
    }

    #[test]
    fn pool_clamps_zero() {
        let p = master_worker_pool(0);
        let (_, w) = p.pu_by_id("pool").unwrap();
        assert_eq!(w.quantity, 1);
    }

    #[test]
    fn hierarchical_shape() {
        let p = hierarchical(3, 4);
        assert_eq!(p.masters().count(), 1);
        assert_eq!(p.hybrids().count(), 3);
        assert_eq!(p.workers().count(), 12);
        assert_eq!(p.height(), 2);
        // every worker is controlled by a hybrid
        for (i, w) in p.workers() {
            let parent = w.parent().unwrap();
            assert_eq!(p.pu(parent).class, PuClass::Hybrid);
            let _ = i;
        }
    }

    #[test]
    fn multi_master_shape() {
        let p = multi_master(2);
        assert_eq!(p.masters().count(), 2);
        assert_eq!(p.workers().count(), 2);
        // full bipartite master->worker connectivity
        assert_eq!(p.interconnects().len(), 4);
    }

    #[test]
    fn patterns_validate() {
        for p in [
            host_device(3),
            master_worker_pool(16),
            hierarchical(2, 2),
            multi_master(3),
        ] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn pattern_kind_display() {
        assert_eq!(PatternKind::HostDevice.to_string(), "host-device");
        assert_eq!(PatternKind::Hierarchical.to_string(), "hierarchical");
    }
}
