//! Error types for the machine model.

use crate::id::{PuId, PuIdx};
use std::fmt;

/// A single structural problem found by validation.
///
/// Each variant corresponds to one of the structural rules of §III-A of the
/// paper (Master at top level only, Workers at leaves, Hybrids controlled,
/// …) or to a referential-integrity rule required for the description to be
/// processable by tools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationIssue {
    /// Two PUs share an id.
    DuplicatePuId(PuId),
    /// A PU has an empty id.
    EmptyPuId(PuIdx),
    /// A Master PU appears below the top level.
    MasterNotTopLevel(PuId),
    /// A Worker PU has children (must be a leaf).
    WorkerHasChildren(PuId),
    /// A Worker or Hybrid PU has no controlling parent.
    Uncontrolled(PuId),
    /// A Hybrid PU at the top level (must be controlled by Master/Hybrid).
    HybridNotControlled(PuId),
    /// `quantity="0"` — at least one unit must exist.
    ZeroQuantity(PuId),
    /// An interconnect endpoint references an unknown PU id.
    DanglingInterconnect {
        /// The unresolved endpoint id.
        endpoint: PuId,
        /// Index of the interconnect in the platform's list.
        ic_index: usize,
    },
    /// An interconnect connects a PU to itself.
    SelfLoopInterconnect {
        /// The PU both ends reference.
        endpoint: PuId,
        /// Index of the interconnect in the platform's list.
        ic_index: usize,
    },
    /// Duplicate memory-region id within one PU.
    DuplicateMemoryRegion {
        /// The owning PU.
        pu: PuId,
        /// The repeated MR id.
        mr: String,
    },
    /// A logic group with an empty name.
    EmptyGroupName(PuId),
    /// A property with an empty name.
    EmptyPropertyName(PuId),
    /// A *fixed* property with an empty value — fixed values are platform
    /// facts and may not be placeholders.
    FixedPropertyWithoutValue {
        /// The owning PU.
        pu: PuId,
        /// The property name.
        property: String,
    },
}

impl ValidationIssue {
    /// The stable diagnostic code for this issue (the `P0xx` range of the
    /// shared code space in [`crate::diag`]).
    pub fn code(&self) -> &'static str {
        use ValidationIssue::*;
        match self {
            DuplicatePuId(_) => "P001",
            EmptyPuId(_) => "P002",
            MasterNotTopLevel(_) => "P003",
            WorkerHasChildren(_) => "P004",
            Uncontrolled(_) => "P005",
            HybridNotControlled(_) => "P006",
            ZeroQuantity(_) => "P007",
            DanglingInterconnect { .. } => "P008",
            SelfLoopInterconnect { .. } => "P009",
            DuplicateMemoryRegion { .. } => "P010",
            EmptyGroupName(_) => "P011",
            EmptyPropertyName(_) => "P012",
            FixedPropertyWithoutValue { .. } => "P013",
        }
    }

    /// The PU id (or interconnect endpoint id) this issue is about, when it
    /// has one — used as the diagnostic subject.
    pub fn subject(&self) -> Option<&str> {
        use ValidationIssue::*;
        match self {
            DuplicatePuId(id)
            | MasterNotTopLevel(id)
            | WorkerHasChildren(id)
            | Uncontrolled(id)
            | HybridNotControlled(id)
            | ZeroQuantity(id)
            | EmptyGroupName(id)
            | EmptyPropertyName(id) => Some(id.as_str()),
            DanglingInterconnect { endpoint, .. } | SelfLoopInterconnect { endpoint, .. } => {
                Some(endpoint.as_str())
            }
            DuplicateMemoryRegion { pu, .. } | FixedPropertyWithoutValue { pu, .. } => {
                Some(pu.as_str())
            }
            EmptyPuId(_) => None,
        }
    }

    /// Converts the issue into a [`crate::diag::Diagnostic`] (always an
    /// error — §III-A rules are hard requirements).
    pub fn to_diagnostic(&self) -> crate::diag::Diagnostic {
        let mut d = crate::diag::Diagnostic::error(self.code(), self.to_string());
        if let Some(s) = self.subject() {
            d = d.with_subject(s);
        }
        d
    }
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ValidationIssue::*;
        match self {
            DuplicatePuId(id) => write!(f, "duplicate PU id {id:?}"),
            EmptyPuId(idx) => write!(f, "PU at arena index {idx} has an empty id"),
            MasterNotTopLevel(id) => write!(
                f,
                "Master PU {id:?} is not at the top level (Masters can only be defined on the highest hierarchical level)"
            ),
            WorkerHasChildren(id) => write!(
                f,
                "Worker PU {id:?} has children (Workers are leaf nodes and cannot control other PUs)"
            ),
            Uncontrolled(id) => write!(
                f,
                "PU {id:?} must be controlled by a Master or Hybrid PU but has no parent"
            ),
            HybridNotControlled(id) => write!(
                f,
                "Hybrid PU {id:?} is at the top level; Hybrids must always be controlled by Master or Hybrid units"
            ),
            ZeroQuantity(id) => write!(f, "PU {id:?} has quantity 0"),
            DanglingInterconnect { endpoint, ic_index } => write!(
                f,
                "interconnect #{ic_index} references unknown PU id {endpoint:?}"
            ),
            SelfLoopInterconnect { endpoint, ic_index } => write!(
                f,
                "interconnect #{ic_index} connects PU {endpoint:?} to itself"
            ),
            DuplicateMemoryRegion { pu, mr } => {
                write!(f, "PU {pu:?} declares memory region {mr:?} more than once")
            }
            EmptyGroupName(id) => write!(f, "PU {id:?} has an empty logic-group name"),
            EmptyPropertyName(id) => write!(f, "PU {id:?} has a property with an empty name"),
            FixedPropertyWithoutValue { pu, property } => write!(
                f,
                "PU {pu:?}: fixed property {property:?} has an empty value (only unfixed properties may be placeholders)"
            ),
        }
    }
}

/// Errors produced by the machine-model API.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Validation found one or more structural issues.
    Invalid(Vec<ValidationIssue>),
    /// A lookup referenced an unknown PU id.
    UnknownPu(PuId),
    /// A builder operation referenced a handle from another builder, or a
    /// parent that cannot control children.
    BadHandle(String),
    /// Attempt to attach a child to a PU class that may not control
    /// (i.e. a Worker).
    CannotControl {
        /// The would-be parent.
        parent: PuId,
        /// Its class (always `Worker` in practice).
        class: crate::pu::PuClass,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Invalid(issues) => {
                writeln!(
                    f,
                    "platform description is invalid ({} issues):",
                    issues.len()
                )?;
                for issue in issues {
                    writeln!(f, "  - {issue}")?;
                }
                Ok(())
            }
            ModelError::UnknownPu(id) => write!(f, "unknown PU id {id:?}"),
            ModelError::BadHandle(msg) => write!(f, "bad builder handle: {msg}"),
            ModelError::CannotControl { parent, class } => write!(
                f,
                "PU {parent:?} of class {class} cannot control other processing units"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_messages_are_informative() {
        let i = ValidationIssue::MasterNotTopLevel(PuId::new("3"));
        assert!(i.to_string().contains("highest hierarchical level"));
        let i = ValidationIssue::WorkerHasChildren(PuId::new("w"));
        assert!(i.to_string().contains("leaf"));
    }

    #[test]
    fn model_error_aggregates_issues() {
        let e = ModelError::Invalid(vec![
            ValidationIssue::ZeroQuantity(PuId::new("a")),
            ValidationIssue::EmptyGroupName(PuId::new("b")),
        ]);
        let msg = e.to_string();
        assert!(msg.contains("2 issues"));
        assert!(msg.contains("quantity 0"));
        assert!(msg.contains("logic-group"));
    }
}
