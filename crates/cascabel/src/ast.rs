//! The annotated-program AST.
//!
//! Cascabel does not need a full C AST: it needs the annotated function
//! definitions (task implementations), the annotated call sites (task
//! executions) and everything else as passthrough text (§IV-C step 3
//! constructs output files around these anchors).

use crate::pragma::{ExecutePragma, TaskPragma};

/// A C function parameter (`double *A`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CParam {
    /// Type text, e.g. `double *`.
    pub ty: String,
    /// Parameter name.
    pub name: String,
}

/// A function definition outlined as a task implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFunction {
    /// The annotation that outlined it.
    pub pragma: TaskPragma,
    /// Return type text.
    pub return_type: String,
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<CParam>,
    /// Body source text, braces included.
    pub body: String,
    /// 1-based line of the definition.
    pub line: u32,
}

/// An annotated call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskCall {
    /// The annotation marking it.
    pub pragma: ExecutePragma,
    /// Called function name.
    pub callee: String,
    /// Argument expressions, verbatim.
    pub args: Vec<String>,
    /// 1-based line of the call.
    pub line: u32,
}

/// One top-level item of an annotated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// An annotated task implementation.
    TaskFunction(TaskFunction),
    /// An annotated task invocation.
    TaskCall(TaskCall),
    /// Anything else, passed through verbatim (token-reconstructed).
    Passthrough(String),
}

/// A parsed annotated program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// All task implementations.
    pub fn task_functions(&self) -> impl Iterator<Item = &TaskFunction> {
        self.items.iter().filter_map(|i| match i {
            Item::TaskFunction(f) => Some(f),
            _ => None,
        })
    }

    /// All annotated call sites.
    pub fn task_calls(&self) -> impl Iterator<Item = &TaskCall> {
        self.items.iter().filter_map(|i| match i {
            Item::TaskCall(c) => Some(c),
            _ => None,
        })
    }
}
