//! The `#pragma cascabel` annotation grammar (paper §IV-A).
//!
//! ```text
//! #pragma cascabel task
//!     : targetplatformlist      e.g.  x86  |  OpenCL, Cuda
//!     : taskidentifier          e.g.  I_vecadd
//!     : taskname                e.g.  vecadd01
//!     : parameterlist           e.g.  (A: readwrite, B: read)
//!     [: access(...)]           e.g.  access(in: B, inout: A)
//!
//! #pragma cascabel execute taskidentifier
//!     : executiongroup          e.g.  executionset01
//!     (distributionslist)       e.g.  (A:BLOCK:N, B:BLOCK:N)
//! ```

use hetero_rt::data::AccessMode;
use std::fmt;

/// Data distribution of one parameter in an execute annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistributionKind {
    /// Contiguous blocks.
    Block,
    /// Round-robin elements.
    Cyclic,
    /// Blocks distributed round-robin.
    BlockCyclic,
    /// Not distributed (whole object).
    Whole,
}

impl DistributionKind {
    fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_uppercase().as_str() {
            "BLOCK" => Some(DistributionKind::Block),
            "CYCLIC" => Some(DistributionKind::Cyclic),
            "BLOCKCYCLIC" | "BLOCK-CYCLIC" => Some(DistributionKind::BlockCyclic),
            "WHOLE" | "" => Some(DistributionKind::Whole),
            _ => None,
        }
    }
}

impl fmt::Display for DistributionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DistributionKind::Block => "BLOCK",
            DistributionKind::Cyclic => "CYCLIC",
            DistributionKind::BlockCyclic => "BLOCKCYCLIC",
            DistributionKind::Whole => "WHOLE",
        })
    }
}

/// One entry of a distributions list: `A:BLOCK:N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distribution {
    /// Parameter name.
    pub param: String,
    /// Distribution kind.
    pub kind: DistributionKind,
    /// Optional size expression (`N`, `1024`).
    pub size: Option<String>,
}

/// A parsed `task` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPragma {
    /// Concrete platforms the following implementation targets
    /// (`x86`, `OpenCL`, `Cuda`, `CellSDK`).
    pub target_platforms: Vec<String>,
    /// Task interface name shared by all implementations.
    pub task_identifier: String,
    /// Unique name of this implementation.
    pub task_name: String,
    /// Parameters with access modes, in order.
    pub params: Vec<(String, AccessMode)>,
    /// Dataflow overrides from an optional `access(in|out|inout: param)`
    /// clause. Entries refine the parameterlist mode of the named parameter
    /// (e.g. a `readwrite` buffer that a given implementation only reads).
    /// Names not present in `params` are a `C010` diagnostic, not a parse
    /// error.
    pub accesses: Vec<(String, AccessMode)>,
}

impl TaskPragma {
    /// The parameters with `access(…)` overrides applied, in declaration
    /// order. This is the dataflow signature analyses should use.
    pub fn effective_params(&self) -> Vec<(String, AccessMode)> {
        self.params
            .iter()
            .map(|(name, mode)| {
                let mode = self
                    .accesses
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or(*mode, |(_, m)| *m);
                (name.clone(), mode)
            })
            .collect()
    }
}

/// A parsed `execute` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutePragma {
    /// Task interface being invoked.
    pub task_identifier: String,
    /// Execution group (references a PDL `LogicGroupAttribute`).
    pub execution_group: String,
    /// Parameter distributions.
    pub distributions: Vec<Distribution>,
}

/// Any cascabel annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pragma {
    /// Task-implementation outline.
    Task(TaskPragma),
    /// Call-site marker.
    Execute(ExecutePragma),
}

/// Error parsing a pragma line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaError {
    /// Description.
    pub message: String,
    /// The offending pragma text.
    pub text: String,
}

impl fmt::Display for PragmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad cascabel pragma ({}): {:?}", self.message, self.text)
    }
}

impl std::error::Error for PragmaError {}

/// Whether a preprocessor line is a cascabel pragma at all.
pub fn is_cascabel_pragma(line: &str) -> bool {
    let rest = line.trim_start();
    let Some(rest) = rest.strip_prefix('#') else {
        return false;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("pragma") else {
        return false;
    };
    rest.trim_start().starts_with("cascabel")
}

/// Parses a `#pragma cascabel …` line.
pub fn parse_pragma(line: &str) -> Result<Pragma, PragmaError> {
    let err = |m: &str| PragmaError {
        message: m.to_string(),
        text: line.to_string(),
    };
    if !is_cascabel_pragma(line) {
        return Err(err("not a cascabel pragma"));
    }
    let body = line
        .trim_start()
        .trim_start_matches('#')
        .trim_start()
        .strip_prefix("pragma")
        .unwrap()
        .trim_start()
        .strip_prefix("cascabel")
        .unwrap()
        .trim();

    if let Some(rest) = body.strip_prefix("task") {
        parse_task(rest.trim(), line)
    } else if let Some(rest) = body.strip_prefix("execute") {
        parse_execute(rest.trim(), line)
    } else {
        Err(err("expected 'task' or 'execute'"))
    }
}

/// Splits on `:` that are not inside parentheses.
fn split_toplevel_colons(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ':' if depth == 0 => {
                parts.push(cur.trim().to_string());
                cur = String::new();
            }
            _ => cur.push(c),
        }
    }
    parts.push(cur.trim().to_string());
    parts
}

fn parse_task(rest: &str, line: &str) -> Result<Pragma, PragmaError> {
    let err = |m: &str| PragmaError {
        message: m.to_string(),
        text: line.to_string(),
    };
    // rest looks like ": x86 : I_vecadd : vecadd01 : (A: readwrite, B: read)"
    // optionally followed by ": access(in: B, inout: A)".
    let parts = split_toplevel_colons(rest);
    // First element is empty (text starts with ':').
    let fields: Vec<&String> = parts.iter().filter(|p| !p.is_empty()).collect();
    if !(4..=5).contains(&fields.len()) {
        return Err(err(&format!(
            "task pragma needs 4 ':'-separated fields (platforms, identifier, name, parameters) plus an optional access(...) clause, got {}",
            fields.len()
        )));
    }
    let target_platforms: Vec<String> = fields[0]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if target_platforms.is_empty() {
        return Err(err("empty targetplatformlist"));
    }
    let task_identifier = fields[1].clone();
    let task_name = fields[2].clone();
    if task_identifier.is_empty() || task_name.is_empty() {
        return Err(err("empty task identifier or name"));
    }

    let plist = fields[3].trim();
    let plist = plist
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| err("parameterlist must be parenthesized"))?;
    let mut params = Vec::new();
    for entry in plist.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, mode) = entry
            .split_once(':')
            .ok_or_else(|| err("parameter entry must be 'name: accessmode'"))?;
        let mode = AccessMode::parse(mode)
            .ok_or_else(|| err(&format!("unknown access mode {:?}", mode.trim())))?;
        params.push((name.trim().to_string(), mode));
    }

    let mut accesses = Vec::new();
    if let Some(clause) = fields.get(4) {
        let body = clause
            .trim()
            .strip_prefix("access")
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('('))
            .and_then(|s| s.trim_end().strip_suffix(')'))
            .ok_or_else(|| err("fifth field must be an access(...) clause"))?;
        for entry in body.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (mode, name) = entry
                .split_once(':')
                .ok_or_else(|| err("access entry must be 'in|out|inout: param'"))?;
            let mode = AccessMode::parse(mode)
                .ok_or_else(|| err(&format!("unknown access mode {:?}", mode.trim())))?;
            accesses.push((name.trim().to_string(), mode));
        }
    }

    Ok(Pragma::Task(TaskPragma {
        target_platforms,
        task_identifier,
        task_name,
        params,
        accesses,
    }))
}

fn parse_execute(rest: &str, line: &str) -> Result<Pragma, PragmaError> {
    let err = |m: &str| PragmaError {
        message: m.to_string(),
        text: line.to_string(),
    };
    // rest looks like "I_vecadd : executionset01 (A:BLOCK:N, B:BLOCK:N)"
    // Distributions list is optional.
    let (head, dist_text) = match rest.find('(') {
        Some(p) => {
            let d = rest[p..]
                .strip_prefix('(')
                .and_then(|s| s.trim_end().strip_suffix(')'))
                .ok_or_else(|| err("unbalanced distributions list"))?;
            (&rest[..p], Some(d))
        }
        None => (rest, None),
    };
    let parts = split_toplevel_colons(head);
    let fields: Vec<&String> = parts.iter().filter(|p| !p.is_empty()).collect();
    if fields.is_empty() || fields.len() > 2 {
        return Err(err(
            "execute pragma needs 'taskidentifier : executiongroup (distributions)'",
        ));
    }
    let task_identifier = fields[0]
        .split_whitespace()
        .next()
        .unwrap_or("")
        .to_string();
    if task_identifier.is_empty() {
        return Err(err("missing task identifier"));
    }
    let execution_group = fields
        .get(1)
        .map(|s| s.split_whitespace().next().unwrap_or("").to_string())
        .unwrap_or_default();

    let mut distributions = Vec::new();
    if let Some(text) = dist_text {
        for entry in text.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let mut it = entry.split(':').map(str::trim);
            let param = it
                .next()
                .filter(|s| !s.is_empty())
                .ok_or_else(|| err("distribution entry missing parameter name"))?
                .to_string();
            let kind = match it.next() {
                None => DistributionKind::Whole,
                Some(k) => DistributionKind::parse(k)
                    .ok_or_else(|| err(&format!("unknown distribution {k:?}")))?,
            };
            let size = it.next().map(str::to_string);
            distributions.push(Distribution { param, kind, size });
        }
    }
    Ok(Pragma::Execute(ExecutePragma {
        task_identifier,
        execution_group,
        distributions,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_task_example() {
        // Paper §IV-A, reformatted on one line (continuations are folded by
        // the lexer before we see them).
        let p = parse_pragma(
            "#pragma cascabel task : x86 : I_vecadd : vecadd01 : (A: readwrite, B: read)",
        )
        .unwrap();
        match p {
            Pragma::Task(t) => {
                assert_eq!(t.target_platforms, ["x86"]);
                assert_eq!(t.task_identifier, "I_vecadd");
                assert_eq!(t.task_name, "vecadd01");
                assert_eq!(
                    t.params,
                    vec![
                        ("A".to_string(), AccessMode::ReadWrite),
                        ("B".to_string(), AccessMode::Read)
                    ]
                );
            }
            _ => panic!("expected task"),
        }
    }

    #[test]
    fn parameterlist_accepts_separator_mode_spellings() {
        // Access modes normalize case and internal separators the same way
        // distribution kinds do (BLOCK-CYCLIC == BLOCKCYCLIC); these forms
        // were rejected before.
        let p = parse_pragma(
            "#pragma cascabel task : x86 : I_t : t01 : (A: Read-Write, B: IN, C: READ_WRITE)",
        )
        .unwrap();
        match p {
            Pragma::Task(t) => assert_eq!(
                t.params,
                vec![
                    ("A".to_string(), AccessMode::ReadWrite),
                    ("B".to_string(), AccessMode::Read),
                    ("C".to_string(), AccessMode::ReadWrite)
                ]
            ),
            _ => panic!("expected task"),
        }
    }

    #[test]
    fn paper_execute_example() {
        let p = parse_pragma(
            "#pragma cascabel execute I_vecadd : executionset01 (A:BLOCK:N, B:BLOCK:N)",
        )
        .unwrap();
        match p {
            Pragma::Execute(e) => {
                assert_eq!(e.task_identifier, "I_vecadd");
                assert_eq!(e.execution_group, "executionset01");
                assert_eq!(e.distributions.len(), 2);
                assert_eq!(e.distributions[0].param, "A");
                assert_eq!(e.distributions[0].kind, DistributionKind::Block);
                assert_eq!(e.distributions[0].size.as_deref(), Some("N"));
            }
            _ => panic!("expected execute"),
        }
    }

    #[test]
    fn multi_platform_task() {
        let p = parse_pragma(
            "#pragma cascabel task : OpenCL, Cuda : I_dgemm : dgemm_gpu : (A: read, B: read, C: readwrite)",
        )
        .unwrap();
        match p {
            Pragma::Task(t) => {
                assert_eq!(t.target_platforms, ["OpenCL", "Cuda"]);
                assert_eq!(t.params.len(), 3);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn execute_without_distributions_or_group() {
        let p = parse_pragma("#pragma cascabel execute I_dgemm").unwrap();
        match p {
            Pragma::Execute(e) => {
                assert_eq!(e.task_identifier, "I_dgemm");
                assert!(e.execution_group.is_empty());
                assert!(e.distributions.is_empty());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn distribution_kinds() {
        let p = parse_pragma(
            "#pragma cascabel execute I_x : g (A:CYCLIC, B:BLOCKCYCLIC:64, C, D:WHOLE)",
        )
        .unwrap();
        match p {
            Pragma::Execute(e) => {
                assert_eq!(e.distributions[0].kind, DistributionKind::Cyclic);
                assert_eq!(e.distributions[1].kind, DistributionKind::BlockCyclic);
                assert_eq!(e.distributions[1].size.as_deref(), Some("64"));
                assert_eq!(e.distributions[2].kind, DistributionKind::Whole);
                assert_eq!(e.distributions[3].kind, DistributionKind::Whole);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn access_clause_overrides_modes() {
        let p = parse_pragma(
            "#pragma cascabel task : x86 : I_vecadd : vecadd01 : (A: readwrite, B: read) : access(in: A, out: B)",
        )
        .unwrap();
        match p {
            Pragma::Task(t) => {
                assert_eq!(
                    t.accesses,
                    vec![
                        ("A".to_string(), AccessMode::Read),
                        ("B".to_string(), AccessMode::Write)
                    ]
                );
                // Parameterlist is untouched; effective view applies the
                // overrides in declaration order.
                assert_eq!(t.params[0].1, AccessMode::ReadWrite);
                assert_eq!(
                    t.effective_params(),
                    vec![
                        ("A".to_string(), AccessMode::Read),
                        ("B".to_string(), AccessMode::Write)
                    ]
                );
            }
            _ => panic!("expected task"),
        }
    }

    #[test]
    fn access_clause_inout_and_partial() {
        let p = parse_pragma(
            "#pragma cascabel task : x86 : I_k : k01 : (A: read, B: write) : access(inout: B)",
        )
        .unwrap();
        match p {
            Pragma::Task(t) => {
                assert_eq!(
                    t.effective_params(),
                    vec![
                        ("A".to_string(), AccessMode::Read),
                        ("B".to_string(), AccessMode::ReadWrite)
                    ]
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn bad_access_clauses_rejected() {
        let e = parse_pragma("#pragma cascabel task : x86 : I_k : k : (A: read) : frob(in: A)")
            .unwrap_err();
        assert!(e.message.contains("access"));
        let e = parse_pragma("#pragma cascabel task : x86 : I_k : k : (A: read) : access(zap: A)")
            .unwrap_err();
        assert!(e.message.contains("access mode"));
        let e = parse_pragma(
            "#pragma cascabel task : x86 : I_k : k : (A: read) : access(in: A) : extra",
        )
        .unwrap_err();
        assert!(e.message.contains("got 6"));
    }

    #[test]
    fn detection() {
        assert!(is_cascabel_pragma("#pragma cascabel task : a : b : c : ()"));
        assert!(is_cascabel_pragma("  # pragma cascabel execute x"));
        assert!(!is_cascabel_pragma("#pragma omp parallel"));
        assert!(!is_cascabel_pragma("#include <stdio.h>"));
        assert!(!is_cascabel_pragma("int x;"));
    }

    #[test]
    fn errors_are_specific() {
        let e = parse_pragma("#pragma cascabel task : x86 : I_v : (A: read)").unwrap_err();
        assert!(e.message.contains("4"));
        let e = parse_pragma("#pragma cascabel task : : I_v : n : (A: read)").unwrap_err();
        assert!(e.message.contains("4") || e.message.contains("empty"));
        let e = parse_pragma("#pragma cascabel task : x86 : I_v : n : (A: sideways)").unwrap_err();
        assert!(e.message.contains("access mode"));
        let e = parse_pragma("#pragma cascabel frobnicate").unwrap_err();
        assert!(e.message.contains("task' or 'execute"));
        let e = parse_pragma("#pragma omp parallel").unwrap_err();
        assert!(e.message.contains("not a cascabel"));
    }

    #[test]
    fn whitespace_robustness() {
        let p = parse_pragma(
            "#pragma   cascabel   task :  x86 ,  OpenCL :  I_k  :  k01  : ( A : read , B : write )",
        )
        .unwrap();
        match p {
            Pragma::Task(t) => {
                assert_eq!(t.target_platforms, ["x86", "OpenCL"]);
                assert_eq!(t.params[1], ("B".to_string(), AccessMode::Write));
            }
            _ => panic!(),
        }
    }
}
