//! # cascabel — PDL-driven source-to-source compiler
//!
//! Reproduction of the paper's prototype (§IV, Figure 4): a compiler that
//! takes **serial C programs with `#pragma cascabel` task annotations** and,
//! **parameterized by a PDL platform descriptor**, produces programs for a
//! heterogeneous runtime — without modifying the input source.
//!
//! Pipeline (one module per stage):
//!
//! | Stage | Paper | Module |
//! |---|---|---|
//! | Lex/parse annotated C | ROSE frontend | [`lex`], [`pragma`], [`parse`] |
//! | Task registration | §IV-C step 1 | [`repository`] |
//! | Static pre-selection | §IV-C step 2 | [`preselect`] |
//! | Execution-group mapping | §IV-B | [`mapping`] |
//! | Output generation | §IV-C step 3 | [`codegen`] |
//! | Compilation plan | §IV-C step 4 | [`compplan`] |
//! | End-to-end driver | Figure 4 | [`driver`] |
//!
//! ```
//! use cascabel::driver::Cascabel;
//! use cascabel::codegen::ProblemSpec;
//!
//! let src = r#"
//! #pragma cascabel task : x86 : I_vecadd : vecadd01 : (A: readwrite, B: read)
//! void vector_add(double *A, double *B) { }
//! #pragma cascabel execute I_vecadd : gpus (A:BLOCK:N, B:BLOCK:N)
//! vector_add(A, B);
//! "#;
//!
//! let mut cc = Cascabel::new(pdl_discover::synthetic::xeon_2gpu_testbed());
//! let result = cc.compile(src, &ProblemSpec::with_size("N", 1 << 20)).unwrap();
//! assert_eq!(result.output.mappings[0].target_pus, ["gpu0", "gpu1"]);
//! ```
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod codegen;
pub mod compplan;
pub mod driver;
pub mod lex;
pub mod mapping;
pub mod parse;
pub mod pragma;
pub mod preselect;
pub mod repository;

pub use codegen::ProblemSpec;
pub use driver::{Cascabel, CascabelError, CompileResult};
