//! Output generation (paper §IV-C step 3).
//!
//! "Based on the previously analyzed platform information, output
//! source-files are constructed. This includes insertion of highly platform
//! specific code for data-partitioning, transfer and task invocations."
//!
//! Two artifacts are produced per translation:
//!
//! 1. **Generated source text** — a StarPU-style C program per target
//!    architecture (host file with `starpu_*` calls replacing annotated call
//!    sites, plus per-arch kernel files for the selected variants). These
//!    are what the paper's prototype fed to `gcc`/`nvcc`; here they are
//!    inspectable artifacts checked by golden tests.
//! 2. **An executable task graph** — a [`hetero_rt::graph::TaskGraph`]
//!    shaped exactly like the generated program, runnable on the simulated
//!    or threaded engine. This is how the reproduction *executes* its
//!    generated programs.

use crate::ast::{Item, Program};
use crate::mapping::{map_call, CallMapping, MappingError};
use crate::pragma::DistributionKind;
use crate::preselect::InterfaceSelection;
use crate::repository::{platform_to_arch, TaskRepository};
use hetero_rt::graph::TaskGraph;
use hetero_rt::task::{Codelet, Variant};
use kernels::graphs as workloads;
use pdl_core::platform::Platform;
use std::collections::BTreeMap;
use std::fmt;

/// Cost/size information the annotations alone cannot provide: concrete
/// values for size parameters (`N`) and FLOP estimates for interfaces with
/// no built-in workload shape.
#[derive(Debug, Clone, Default)]
pub struct ProblemSpec {
    /// Values of size parameters referenced by distributions (e.g. `N`).
    pub sizes: BTreeMap<String, usize>,
    /// FLOP estimates for generic interfaces.
    pub flops_hints: BTreeMap<String, f64>,
    /// Tile size for tiled decompositions (defaults to size/4).
    pub tile: Option<usize>,
}

impl ProblemSpec {
    /// Spec with one size parameter.
    pub fn with_size(name: &str, value: usize) -> Self {
        let mut s = ProblemSpec::default();
        s.sizes.insert(name.to_string(), value);
        s
    }

    fn resolve_size(&self, expr: Option<&str>) -> Option<usize> {
        let e = expr?;
        if let Ok(v) = e.parse::<usize>() {
            return Some(v);
        }
        self.sizes.get(e).copied()
    }
}

/// Codegen errors.
#[derive(Debug)]
pub enum CodegenError {
    /// Mapping a call site failed.
    Mapping(MappingError),
    /// A size parameter could not be resolved to a value.
    UnresolvedSize {
        /// Interface of the call.
        interface: String,
        /// The unresolved expression.
        expr: String,
    },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Mapping(e) => e.fmt(f),
            CodegenError::UnresolvedSize { interface, expr } => write!(
                f,
                "cannot resolve size expression {expr:?} for {interface:?}; provide it in ProblemSpec::sizes"
            ),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<MappingError> for CodegenError {
    fn from(e: MappingError) -> Self {
        CodegenError::Mapping(e)
    }
}

/// Everything one translation produces.
#[derive(Debug)]
pub struct GeneratedOutput {
    /// The host source file (StarPU-style C).
    pub main_source: String,
    /// Per-architecture kernel source files: arch → (filename, content).
    pub kernel_sources: BTreeMap<String, Vec<(String, String)>>,
    /// Static mapping per annotated call, in source order.
    pub mappings: Vec<CallMapping>,
    /// The runnable task graph equivalent of the generated program.
    pub graph: TaskGraph,
}

/// Statically maps every annotated call site of the program, in source
/// order.
///
/// Split out of [`generate`] so the driver can time the mapping step as its
/// own compile phase; [`generate_with_mappings`] consumes the result.
pub fn map_calls(
    program: &Program,
    selections: &[InterfaceSelection],
    platform: &Platform,
) -> Result<Vec<CallMapping>, CodegenError> {
    program
        .items
        .iter()
        .filter_map(|item| match item {
            Item::TaskCall(call) => Some(map_call(call, selections, platform).map_err(Into::into)),
            _ => None,
        })
        .collect()
}

/// Generates output for an annotated program against a target platform.
///
/// `selections` must come from [`crate::preselect::preselect`] over the same
/// repository and platform.
pub fn generate(
    program: &Program,
    repository: &TaskRepository,
    selections: &[InterfaceSelection],
    platform: &Platform,
    spec: &ProblemSpec,
) -> Result<GeneratedOutput, CodegenError> {
    let mappings = map_calls(program, selections, platform)?;
    generate_with_mappings(program, repository, selections, platform, spec, mappings)
}

/// [`generate`] with call mappings precomputed by [`map_calls`].
///
/// Call sites beyond the supplied mappings (never the case when the same
/// program produced them) are mapped on the fly.
pub fn generate_with_mappings(
    program: &Program,
    repository: &TaskRepository,
    selections: &[InterfaceSelection],
    platform: &Platform,
    spec: &ProblemSpec,
    mappings: Vec<CallMapping>,
) -> Result<GeneratedOutput, CodegenError> {
    let mut main = String::new();
    let mut kernel_sources: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    let mut supplied = mappings.into_iter();
    let mut mappings = Vec::new();
    let mut graph = TaskGraph::new();

    main.push_str(&format!(
        "/* Generated by Cascabel for platform {:?} — do not edit. */\n#include <starpu.h>\n\n",
        platform.name
    ));

    // Emit kernel files for every kept variant of every interface.
    for selection in selections {
        let Some(interface) = repository.interface(&selection.interface) else {
            continue;
        };
        for decision in &selection.decisions {
            if !decision.kept {
                continue;
            }
            let Some(imp) = interface
                .implementations
                .iter()
                .find(|i| i.name == decision.implementation)
            else {
                continue;
            };
            for platform_name in &imp.target_platforms {
                let (arch, _) = platform_to_arch(platform_name);
                let filename = format!("{}_{}.{}", imp.name, arch, ext_for(platform_name));
                let content = format!(
                    "/* task {iface} — variant {name} for {plat} (eligible PUs: {pus}) */\n{src}\n",
                    iface = selection.interface,
                    name = imp.name,
                    plat = platform_name,
                    pus = decision.eligible_pus.join(", "),
                    src = imp.source
                );
                kernel_sources
                    .entry(arch.to_string())
                    .or_default()
                    .push((filename, content));
            }
        }
    }

    // Walk the program: passthrough verbatim, call sites replaced.
    main.push_str("int main(int argc, char **argv) {\n  starpu_init(NULL);\n");
    for item in &program.items {
        match item {
            Item::Passthrough(text) => {
                main.push_str("  /* passthrough */ ");
                main.push_str(text.trim());
                main.push('\n');
            }
            Item::TaskFunction(f) => {
                main.push_str(&format!(
                    "  /* task implementation {} outlined to repository */\n",
                    f.pragma.task_name
                ));
            }
            Item::TaskCall(call) => {
                let mapping = match supplied.next() {
                    Some(m) => m,
                    None => map_call(call, selections, platform)?,
                };
                emit_call(&mut main, call, &mapping);
                build_graph_for_call(&mut graph, call, repository, &mapping, spec)?;
                mappings.push(mapping);
            }
        }
    }
    main.push_str("  starpu_task_wait_for_all();\n  starpu_shutdown();\n  return 0;\n}\n");

    Ok(GeneratedOutput {
        main_source: main,
        kernel_sources,
        mappings,
        graph,
    })
}

fn ext_for(platform_name: &str) -> &'static str {
    match platform_name.to_ascii_lowercase().as_str() {
        "cuda" => "cu",
        "opencl" => "cl",
        "cellsdk" | "cell" | "spu" => "spu.c",
        _ => "c",
    }
}

fn emit_call(main: &mut String, call: &crate::ast::TaskCall, mapping: &CallMapping) {
    main.push_str(&format!(
        "  /* cascabel execute: {iface} group={group:?} -> PUs [{pus}] variants [{vars}] */\n",
        iface = mapping.interface,
        group = mapping.execution_group,
        pus = mapping.target_pus.join(", "),
        vars = mapping.usable_variants.join(", "),
    ));
    for (i, arg) in call.args.iter().enumerate() {
        main.push_str(&format!(
            "  starpu_data_handle_t h{i} = cascabel_register({arg});\n"
        ));
    }
    main.push_str(&format!(
        "  cascabel_submit_{iface}({args});\n",
        iface = mapping.interface,
        args = (0..call.args.len())
            .map(|i| format!("h{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
}

/// Builds the runnable task-graph fragment for one call site.
fn build_graph_for_call(
    graph: &mut TaskGraph,
    call: &crate::ast::TaskCall,
    repository: &TaskRepository,
    mapping: &CallMapping,
    spec: &ProblemSpec,
) -> Result<(), CodegenError> {
    // Execution group: plain names pass to the runtime; set expressions were
    // already resolved statically into `mapping.target_pus`, so the runtime
    // group filter is skipped for them (None) and the static mapping stands.
    let group = match mapping.execution_group.as_str() {
        "" => None,
        g if g.chars().all(|c| c.is_alphanumeric() || c == '_') => Some(g.to_string()),
        _ => None,
    };

    // Problem size from the first distribution with a size expression.
    let size_expr = call
        .pragma
        .distributions
        .iter()
        .find_map(|d| d.size.as_deref());
    let n = spec.resolve_size(size_expr);

    match mapping.interface.as_str() {
        "I_dgemm" => {
            let n = n.ok_or_else(|| CodegenError::UnresolvedSize {
                interface: mapping.interface.clone(),
                expr: size_expr.unwrap_or("N").to_string(),
            })?;
            let tile = spec.tile.unwrap_or_else(|| (n / 4).max(1));
            let sub = workloads::dgemm_graph(n, tile, group);
            absorb(graph, sub);
        }
        "I_vecadd" => {
            let n = n.ok_or_else(|| CodegenError::UnresolvedSize {
                interface: mapping.interface.clone(),
                expr: size_expr.unwrap_or("N").to_string(),
            })?;
            let chunks = if call
                .pragma
                .distributions
                .iter()
                .any(|d| d.kind != DistributionKind::Whole)
            {
                mapping.target_pus.len().max(1)
            } else {
                1
            };
            let sub = workloads::vecadd_graph(n, chunks, group);
            absorb(graph, sub);
        }
        other => {
            // Generic interface: codelet from the kept variants; one task
            // per BLOCK-distributed chunk (distribution list present), else
            // a single task. Cost comes from ProblemSpec hints.
            let iface = repository
                .interface(other)
                .expect("mapping implies interface");
            let mut codelet = Codelet::new(other);
            for imp in &iface.implementations {
                if !mapping.usable_variants.contains(&imp.name) {
                    continue;
                }
                for (arch, sw) in imp.arch_requirements() {
                    let mut v = Variant::new(arch).with_speedup(imp.speedup);
                    if let Some(sw) = sw {
                        v = v.requiring(sw);
                    }
                    codelet.variants.push(v);
                }
            }
            let c = graph.add_codelet(codelet);
            let flops = spec.flops_hints.get(other).copied().unwrap_or(1e9);
            let blocked = call
                .pragma
                .distributions
                .iter()
                .any(|d| d.kind != DistributionKind::Whole);
            let chunks = if blocked {
                mapping.target_pus.len().max(1)
            } else {
                1
            };
            let mode_of = |i: usize| {
                iface
                    .implementations
                    .first()
                    .and_then(|imp| imp.params.get(i))
                    .map(|(_, m)| *m)
                    .unwrap_or(hetero_rt::data::AccessMode::ReadWrite)
            };
            // Each chunk gets its own slice handles so chunks stay
            // independent (BLOCK semantics); whole-object args share one
            // handle across chunks.
            let chunk_bytes = n.map(|n| (n * 8) as f64 / chunks as f64).unwrap_or(8.0);
            for chunk in 0..chunks {
                let accesses = call
                    .args
                    .iter()
                    .enumerate()
                    .map(|(i, arg)| {
                        let h = graph.register_data(
                            if chunks == 1 {
                                arg.clone()
                            } else {
                                format!("{arg}[{chunk}]")
                            },
                            chunk_bytes,
                        );
                        hetero_rt::task::DataAccess {
                            handle: h,
                            mode: mode_of(i),
                        }
                    })
                    .collect();
                graph.submit(
                    c,
                    if chunks == 1 {
                        format!("{other}@L{}", call.line)
                    } else {
                        format!("{other}@L{}[{chunk}]", call.line)
                    },
                    flops / chunks as f64,
                    accesses,
                    group.clone(),
                );
            }
        }
    }
    Ok(())
}

/// Appends all codelets/data/tasks of `sub` into `graph`, remapping indices.
fn absorb(graph: &mut TaskGraph, sub: TaskGraph) {
    let codelet_base: Vec<usize> = sub
        .codelets
        .iter()
        .map(|c| graph.add_codelet(c.clone()))
        .collect();
    let mut handle_map = Vec::with_capacity(sub.data.len());
    for i in 0..sub.data.len() {
        let meta = sub.data.meta(hetero_rt::data::HandleId(i));
        handle_map.push(graph.register_data(meta.label.clone(), meta.size_bytes));
    }
    for t in &sub.tasks {
        let accesses = t
            .accesses
            .iter()
            .map(|a| hetero_rt::task::DataAccess {
                handle: handle_map[a.handle.0],
                mode: a.mode,
            })
            .collect();
        graph.submit(
            codelet_base[t.codelet],
            t.label.clone(),
            t.flops,
            accesses,
            t.execution_group.clone(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;
    use crate::preselect::preselect;
    use pdl_discover::synthetic;

    const VECADD_SRC: &str = r#"
#pragma cascabel task : x86 : I_vecadd : vecadd01 : (A: readwrite, B: read)
void vector_add(double *A, double *B) { for (int i = 0; i < N; i++) A[i] += B[i]; }

#pragma cascabel execute I_vecadd : gpus (A:BLOCK:N, B:BLOCK:N)
vector_add(A, B);
"#;

    fn translate(
        src: &str,
        platform: &pdl_core::platform::Platform,
        spec: &ProblemSpec,
    ) -> GeneratedOutput {
        let prog = parse_program(src).unwrap();
        let mut repo = TaskRepository::with_builtin_expert_variants();
        for f in prog.task_functions() {
            // Input-program vecadd01 may collide with nothing; register.
            let _ = repo.register_function(f);
        }
        let selections = preselect(&repo, platform);
        generate(&prog, &repo, &selections, platform, spec).unwrap()
    }

    #[test]
    fn vecadd_translation_produces_graph_and_source() {
        let p = synthetic::xeon_2gpu_testbed();
        let out = translate(VECADD_SRC, &p, &ProblemSpec::with_size("N", 1_000_000));
        // Graph: one vecadd task per target PU in the gpus group (2).
        assert_eq!(out.graph.len(), 2);
        assert!(out.main_source.contains("starpu_init"));
        assert!(out.main_source.contains("cascabel_submit_I_vecadd"));
        assert!(out.main_source.contains("group=\"gpus\""));
        assert_eq!(out.mappings.len(), 1);
        assert_eq!(out.mappings[0].target_pus, ["gpu0", "gpu1"]);
        // Kernel files generated for kept variants.
        assert!(out.kernel_sources.contains_key("x86"));
        assert!(out.kernel_sources.contains_key("gpu"));
    }

    #[test]
    fn unresolved_size_is_error() {
        let p = synthetic::xeon_2gpu_testbed();
        let prog = parse_program(VECADD_SRC).unwrap();
        let mut repo = TaskRepository::with_builtin_expert_variants();
        for f in prog.task_functions() {
            let _ = repo.register_function(f);
        }
        let selections = preselect(&repo, &p);
        let err = generate(&prog, &repo, &selections, &p, &ProblemSpec::default()).unwrap_err();
        assert!(matches!(err, CodegenError::UnresolvedSize { .. }));
        assert!(err.to_string().contains("N"));
    }

    #[test]
    fn numeric_size_needs_no_spec() {
        let src = r#"
#pragma cascabel execute I_vecadd : gpus (A:BLOCK:4096, B:BLOCK:4096)
vector_add(A, B);
"#;
        let p = synthetic::xeon_2gpu_testbed();
        let out = translate(src, &p, &ProblemSpec::default());
        assert_eq!(out.graph.len(), 2);
    }

    #[test]
    fn dgemm_translation_builds_tiled_graph() {
        let src =
            "#pragma cascabel execute I_dgemm : (A:BLOCK:N, B:BLOCK:N, C:BLOCK:N)\ndgemm(A, B, C);";
        let p = synthetic::xeon_2gpu_testbed();
        let mut spec = ProblemSpec::with_size("N", 8192);
        spec.tile = Some(2048);
        let out = translate(src, &p, &spec);
        assert_eq!(out.graph.len(), 64); // (8192/2048)^3
        assert!((out.graph.total_flops() - kernels::dgemm::dgemm_flops(8192)).abs() < 1.0);
    }

    #[test]
    fn generic_interface_single_task() {
        let src = r#"
#pragma cascabel task : x86 : I_custom : custom01 : (X: readwrite)
void custom(double *X) { work(X); }
#pragma cascabel execute I_custom :
custom(X);
"#;
        let p = synthetic::xeon_x5550_host();
        let mut spec = ProblemSpec::default();
        spec.flops_hints.insert("I_custom".into(), 5e9);
        let out = translate(src, &p, &spec);
        assert_eq!(out.graph.len(), 1);
        assert_eq!(out.graph.tasks[0].flops, 5e9);
        assert_eq!(out.graph.tasks[0].accesses.len(), 1);
    }

    #[test]
    fn main_source_structure() {
        let p = synthetic::xeon_2gpu_testbed();
        let out = translate(VECADD_SRC, &p, &ProblemSpec::with_size("N", 1024));
        let src = &out.main_source;
        let init = src.find("starpu_init").unwrap();
        let submit = src.find("cascabel_submit").unwrap();
        let wait = src.find("starpu_task_wait_for_all").unwrap();
        let shutdown = src.find("starpu_shutdown").unwrap();
        assert!(init < submit && submit < wait && wait < shutdown);
    }

    #[test]
    fn multi_call_program_concatenates_graphs() {
        let src = r#"
#pragma cascabel task : x86 : I_vecadd : vecadd01 : (A: readwrite, B: read)
void vector_add(double *A, double *B) { }

#pragma cascabel execute I_vecadd : gpus (A:BLOCK:N, B:BLOCK:N)
vector_add(A, B);

#pragma cascabel execute I_dgemm : (A:BLOCK:N, B:BLOCK:N, C:BLOCK:N)
dgemm(A, B, C);
"#;
        let p = synthetic::xeon_2gpu_testbed();
        let mut spec = ProblemSpec::with_size("N", 2048);
        spec.tile = Some(1024);
        let out = translate(src, &p, &spec);
        assert_eq!(out.mappings.len(), 2);
        // 2 vecadd chunks (gpus group) + 8 dgemm tile tasks (2048/1024)³.
        assert_eq!(out.graph.len(), 2 + 8);
        // Codelet tables concatenated without clobbering.
        let names: Vec<&str> = out.graph.codelets.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"I_vecadd"));
        assert!(names.contains(&"I_dgemm"));
        // Graph is runnable end to end.
        let machine = simhw::machine::SimMachine::from_platform(&p);
        let report = hetero_rt::sim_engine::simulate(
            &out.graph,
            &machine,
            &mut hetero_rt::scheduler::HeftScheduler,
            &hetero_rt::sim_engine::SimOptions::default(),
        )
        .unwrap();
        assert_eq!(report.assignments.len(), 10);
    }

    #[test]
    fn kernel_files_have_sensible_extensions() {
        let p = synthetic::xeon_2gpu_testbed();
        let out = translate(VECADD_SRC, &p, &ProblemSpec::with_size("N", 1024));
        let gpu_files = &out.kernel_sources["gpu"];
        assert!(gpu_files
            .iter()
            .any(|(name, _)| name.ends_with(".cl") || name.ends_with(".cu")));
        let cpu_files = &out.kernel_sources["x86"];
        assert!(cpu_files.iter().all(|(name, _)| name.ends_with(".c")));
    }
}
