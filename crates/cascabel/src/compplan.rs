//! Compilation/link-plan derivation (paper §IV-C step 4).
//!
//! "After all required source-files have been constructed, platform
//! specific compilers (e.g., nvcc, gcc-spu, xlc) produce one or more
//! executables. The required compilation and linking plan is derived from
//! information available in the platform description file."
//!
//! The planner groups output files by the architecture of the PUs selected
//! to run them, reads each architecture's `COMPILER`/`LINK_LIBS` properties
//! from the PDL, and emits an ordered plan of compile steps plus one link
//! step.

use pdl_core::platform::Platform;
use pdl_core::wellknown;
use std::collections::BTreeMap;
use std::fmt;

/// One compiler invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileStep {
    /// Architecture the step targets (`x86`, `gpu`, `spe`).
    pub arch: String,
    /// Compiler executable from the PDL `COMPILER` property
    /// (default `cc`).
    pub compiler: String,
    /// Source files fed to this step.
    pub sources: Vec<String>,
    /// Object file produced.
    pub object: String,
}

/// The final link invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkStep {
    /// Linker driver (host architecture's compiler).
    pub linker: String,
    /// Objects from all compile steps.
    pub objects: Vec<String>,
    /// Libraries from the PDL `LINK_LIBS` properties plus the runtime.
    pub libraries: Vec<String>,
    /// Output executable name.
    pub output: String,
}

/// A complete compilation plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompilationPlan {
    /// Compile steps, one per architecture with sources.
    pub compiles: Vec<CompileStep>,
    /// The link step.
    pub link: LinkStep,
}

impl fmt::Display for CompilationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.compiles {
            writeln!(
                f,
                "{} -c {} -o {}",
                c.compiler,
                c.sources.join(" "),
                c.object
            )?;
        }
        writeln!(
            f,
            "{} {} {} -o {}",
            self.link.linker,
            self.link.objects.join(" "),
            self.link
                .libraries
                .iter()
                .map(|l| format!("-l{l}"))
                .collect::<Vec<_>>()
                .join(" "),
            self.link.output
        )
    }
}

/// Derives the plan: `sources_by_arch` maps architecture → generated source
/// files; compiler names come from the first PU of each architecture that
/// declares a `COMPILER` property.
pub fn derive_plan(
    platform: &Platform,
    sources_by_arch: &BTreeMap<String, Vec<String>>,
    output: &str,
) -> CompilationPlan {
    // arch → compiler from PDL.
    let mut compiler_of: BTreeMap<String, String> = BTreeMap::new();
    let mut libs: Vec<String> = Vec::new();
    for (_, pu) in platform.dfs() {
        if let (Some(arch), Some(compiler)) =
            (pu.architecture(), pu.descriptor.value(wellknown::COMPILER))
        {
            compiler_of
                .entry(arch.to_string())
                .or_insert_with(|| compiler.to_string());
        }
        if let Some(l) = pu.descriptor.value(wellknown::LINK_LIBS) {
            for lib in l.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                if !libs.contains(&lib.to_string()) {
                    libs.push(lib.to_string());
                }
            }
        }
    }
    // The runtime system named in the PDL is linked in.
    if let Some(rt) = platform
        .dfs()
        .find_map(|(_, pu)| pu.descriptor.value(wellknown::RUNTIME_SYSTEM))
    {
        let lib = rt.to_ascii_lowercase();
        if !libs.contains(&lib) {
            libs.push(lib);
        }
    }

    let mut compiles = Vec::new();
    for (arch, sources) in sources_by_arch {
        if sources.is_empty() {
            continue;
        }
        let compiler = compiler_of
            .get(arch)
            .cloned()
            .unwrap_or_else(|| "cc".to_string());
        compiles.push(CompileStep {
            arch: arch.clone(),
            compiler,
            object: format!("{output}_{arch}.o"),
            sources: sources.clone(),
        });
    }

    // Host linker: x86 compiler if present, else first compile step's, else cc.
    let linker = compiler_of
        .get("x86")
        .cloned()
        .or_else(|| compiles.first().map(|c| c.compiler.clone()))
        .unwrap_or_else(|| "cc".to_string());

    CompilationPlan {
        link: LinkStep {
            linker,
            objects: compiles.iter().map(|c| c.object.clone()).collect(),
            libraries: libs,
            output: output.to_string(),
        },
        compiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_discover::synthetic;

    fn sources(pairs: &[(&str, &[&str])]) -> BTreeMap<String, Vec<String>> {
        pairs
            .iter()
            .map(|(a, s)| {
                (
                    a.to_string(),
                    s.iter().map(std::string::ToString::to_string).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn testbed_plan_uses_pdl_compilers() {
        let p = synthetic::xeon_2gpu_testbed();
        let plan = derive_plan(
            &p,
            &sources(&[("x86", &["main_cpu.c"]), ("gpu", &["dgemm_kernel.cu"])]),
            "dgemm_starpu",
        );
        assert_eq!(plan.compiles.len(), 2);
        let gpu = plan.compiles.iter().find(|c| c.arch == "gpu").unwrap();
        assert_eq!(gpu.compiler, "nvcc"); // from the GPU PUDescriptor
        let cpu = plan.compiles.iter().find(|c| c.arch == "x86").unwrap();
        assert_eq!(cpu.compiler, "gcc"); // from the host PUDescriptor
        assert_eq!(plan.link.linker, "gcc");
        // Runtime system from the PDL is linked.
        assert!(plan.link.libraries.contains(&"starpu".to_string()));
        assert_eq!(plan.link.objects.len(), 2);
        assert_eq!(plan.link.output, "dgemm_starpu");
    }

    #[test]
    fn cell_plan_uses_xlc_and_spu_gcc() {
        let p = synthetic::cell_be();
        let plan = derive_plan(
            &p,
            &sources(&[("ppe", &["main_ppe.c"]), ("spe", &["kernel_spe.c"])]),
            "app",
        );
        let ppe = plan.compiles.iter().find(|c| c.arch == "ppe").unwrap();
        assert_eq!(ppe.compiler, "xlc");
        let spe = plan.compiles.iter().find(|c| c.arch == "spe").unwrap();
        assert_eq!(spe.compiler, "gcc-spu");
    }

    #[test]
    fn unknown_arch_falls_back_to_cc() {
        let p = synthetic::xeon_x5550_host();
        let plan = derive_plan(&p, &sources(&[("fpga", &["bitstream.c"])]), "x");
        assert_eq!(plan.compiles[0].compiler, "cc");
    }

    #[test]
    fn empty_sources_skipped() {
        let p = synthetic::xeon_x5550_host();
        let plan = derive_plan(&p, &sources(&[("x86", &[])]), "x");
        assert!(plan.compiles.is_empty());
        assert_eq!(plan.link.linker, "gcc"); // still derived from PDL
    }

    #[test]
    fn display_renders_shell_like_plan() {
        let p = synthetic::xeon_2gpu_testbed();
        let plan = derive_plan(&p, &sources(&[("x86", &["a.c"])]), "out");
        let text = plan.to_string();
        assert!(text.contains("gcc -c a.c -o out_x86.o"));
        assert!(text.contains("-lstarpu"));
        assert!(text.contains("-o out"));
    }
}
