//! The task-implementation repository (paper §IV-C step 1).
//!
//! "Code regions outlined by task annotations are registered in the task
//! repository. In case multiple implementation variants for the same task
//! interface exist, those are marked for potential variant selection."
//!
//! The repository also holds *expert-provided* implementations (Figure 1:
//! "Expert programmers provide implementation variants for specific
//! platforms") — e.g. the `CuBLAS` DGEMM the paper's experiment selects,
//! which is not present in the serial input program.

use crate::ast::TaskFunction;
use crate::pragma::TaskPragma;
use hetero_rt::data::AccessMode;
use std::collections::BTreeMap;
use std::fmt;

/// Where an implementation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImplOrigin {
    /// Outlined in the input program.
    InputProgram,
    /// Pre-registered expert implementation from the repository.
    Repository,
}

/// Maps an annotation target platform (`x86`, `OpenCL`, `Cuda`, `CellSDK`)
/// to the PDL vocabulary: (ARCHITECTURE, required `SOFTWARE_PLATFORM`).
pub fn platform_to_arch(platform: &str) -> (&'static str, Option<&'static str>) {
    match platform.to_ascii_lowercase().as_str() {
        "x86" | "cpu" | "serial" => ("x86", None),
        "opencl" => ("gpu", Some("OpenCL")),
        "cuda" => ("gpu", Some("Cuda")),
        "cellsdk" | "cell" | "spu" => ("spe", Some("CellSDK")),
        _ => ("unknown", None),
    }
}

/// One registered task implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskImpl {
    /// Unique implementation name (`vecadd01`, `dgemm_cublas`).
    pub name: String,
    /// Concrete platforms it targets.
    pub target_platforms: Vec<String>,
    /// Parameters with access modes.
    pub params: Vec<(String, AccessMode)>,
    /// Implementation source (body text for input-program tasks; the whole
    /// function for repository entries).
    pub source: String,
    /// Provenance.
    pub origin: ImplOrigin,
    /// Relative throughput vs. the nominal device rate (expert variants may
    /// declare tuned speedups).
    pub speedup: f64,
}

impl TaskImpl {
    /// `(arch, software_platform)` pairs this implementation can run on.
    pub fn arch_requirements(&self) -> Vec<(&'static str, Option<&'static str>)> {
        self.target_platforms
            .iter()
            .map(|p| platform_to_arch(p))
            .collect()
    }

    /// Whether this is a sequential CPU fall-back.
    pub fn is_cpu_fallback(&self) -> bool {
        self.arch_requirements().iter().any(|(a, _)| *a == "x86")
    }
}

/// A task interface: same functionality and signature across variants.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskInterface {
    /// Interface name (`I_dgemm`).
    pub identifier: String,
    /// Registered implementations.
    pub implementations: Vec<TaskImpl>,
}

impl TaskInterface {
    /// Whether any implementation is a CPU fall-back (§IV-C requires one).
    pub fn has_cpu_fallback(&self) -> bool {
        self.implementations.iter().any(TaskImpl::is_cpu_fallback)
    }
}

/// Errors of repository registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepositoryError {
    /// Two implementations share a task name.
    DuplicateImplName(String),
    /// Signature mismatch between variants of one interface: all task
    /// implementations "must reference to this name" with "same
    /// functionality and function signature" (§IV-A).
    SignatureMismatch {
        /// The interface.
        interface: String,
        /// The offending implementation.
        implementation: String,
    },
}

impl fmt::Display for RepositoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepositoryError::DuplicateImplName(n) => {
                write!(f, "duplicate task implementation name {n:?}")
            }
            RepositoryError::SignatureMismatch {
                interface,
                implementation,
            } => write!(
                f,
                "implementation {implementation:?} does not match the signature of interface {interface:?} (same functionality and function signature required)"
            ),
        }
    }
}

impl std::error::Error for RepositoryError {}

/// The repository: interfaces keyed by identifier.
#[derive(Debug, Clone, Default)]
pub struct TaskRepository {
    interfaces: BTreeMap<String, TaskInterface>,
}

impl TaskRepository {
    /// An empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// A repository preloaded with the expert implementations used by the
    /// paper's experiment: multithreaded + `CuBLAS` + `OpenCL` DGEMM, GPU
    /// vecadd.
    pub fn with_builtin_expert_variants() -> Self {
        let mut repo = Self::new();
        let dgemm_params = vec![
            ("A".to_string(), AccessMode::Read),
            ("B".to_string(), AccessMode::Read),
            ("C".to_string(), AccessMode::ReadWrite),
        ];
        repo.register_expert(
            "I_dgemm",
            TaskImpl {
                name: "dgemm_gotoblas".into(),
                target_platforms: vec!["x86".into()],
                params: dgemm_params.clone(),
                source: "/* GotoBLAS2 1.13 dgemm_() call */".into(),
                origin: ImplOrigin::Repository,
                speedup: 1.0,
            },
        )
        .expect("fresh repo");
        repo.register_expert(
            "I_dgemm",
            TaskImpl {
                name: "dgemm_cublas".into(),
                target_platforms: vec!["Cuda".into()],
                params: dgemm_params.clone(),
                source: "/* CuBLAS (Cuda Toolkit 3.2) cublasDgemm call */".into(),
                origin: ImplOrigin::Repository,
                speedup: 1.0,
            },
        )
        .expect("fresh repo");
        repo.register_expert(
            "I_dgemm",
            TaskImpl {
                name: "dgemm_opencl".into(),
                target_platforms: vec!["OpenCL".into()],
                params: dgemm_params,
                source: "/* hand-written OpenCL dgemm kernel */".into(),
                origin: ImplOrigin::Repository,
                speedup: 0.85,
            },
        )
        .expect("fresh repo");
        repo.register_expert(
            "I_vecadd",
            TaskImpl {
                name: "vecadd_opencl".into(),
                target_platforms: vec!["OpenCL".into()],
                params: vec![
                    ("A".to_string(), AccessMode::ReadWrite),
                    ("B".to_string(), AccessMode::Read),
                ],
                source: "/* OpenCL vecadd kernel */".into(),
                origin: ImplOrigin::Repository,
                speedup: 1.0,
            },
        )
        .expect("fresh repo");
        repo
    }

    /// Registers a task implementation outlined in the input program.
    pub fn register_function(&mut self, f: &TaskFunction) -> Result<(), RepositoryError> {
        self.register_pragma(&f.pragma, f.body.clone(), ImplOrigin::InputProgram)
    }

    /// Registers from a parsed task pragma.
    pub fn register_pragma(
        &mut self,
        pragma: &TaskPragma,
        source: String,
        origin: ImplOrigin,
    ) -> Result<(), RepositoryError> {
        self.register_impl(
            &pragma.task_identifier,
            TaskImpl {
                name: pragma.task_name.clone(),
                target_platforms: pragma.target_platforms.clone(),
                params: pragma.params.clone(),
                source,
                origin,
                speedup: 1.0,
            },
        )
    }

    /// Registers an expert implementation.
    pub fn register_expert(
        &mut self,
        interface: &str,
        implementation: TaskImpl,
    ) -> Result<(), RepositoryError> {
        self.register_impl(interface, implementation)
    }

    fn register_impl(
        &mut self,
        interface: &str,
        implementation: TaskImpl,
    ) -> Result<(), RepositoryError> {
        let entry = self
            .interfaces
            .entry(interface.to_string())
            .or_insert_with(|| TaskInterface {
                identifier: interface.to_string(),
                ..Default::default()
            });
        if entry
            .implementations
            .iter()
            .any(|i| i.name == implementation.name)
        {
            return Err(RepositoryError::DuplicateImplName(implementation.name));
        }
        // Signature check: parameter names + modes must match existing
        // variants (the interface contract of §IV-A).
        if let Some(first) = entry.implementations.first() {
            if first.params != implementation.params {
                return Err(RepositoryError::SignatureMismatch {
                    interface: interface.to_string(),
                    implementation: implementation.name,
                });
            }
        }
        entry.implementations.push(implementation);
        Ok(())
    }

    /// Looks up an interface.
    pub fn interface(&self, identifier: &str) -> Option<&TaskInterface> {
        self.interfaces.get(identifier)
    }

    /// All interfaces, sorted by identifier.
    pub fn interfaces(&self) -> impl Iterator<Item = &TaskInterface> {
        self.interfaces.values()
    }

    /// Number of interfaces.
    pub fn len(&self) -> usize {
        self.interfaces.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.interfaces.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_mapping() {
        assert_eq!(platform_to_arch("x86"), ("x86", None));
        assert_eq!(platform_to_arch("Cuda"), ("gpu", Some("Cuda")));
        assert_eq!(platform_to_arch("OpenCL"), ("gpu", Some("OpenCL")));
        assert_eq!(platform_to_arch("CellSDK"), ("spe", Some("CellSDK")));
        assert_eq!(platform_to_arch("vhdl"), ("unknown", None));
    }

    #[test]
    fn builtin_repo_has_paper_variants() {
        let repo = TaskRepository::with_builtin_expert_variants();
        let dgemm = repo.interface("I_dgemm").unwrap();
        assert_eq!(dgemm.implementations.len(), 3);
        assert!(dgemm.has_cpu_fallback());
        let names: Vec<&str> = dgemm
            .implementations
            .iter()
            .map(|i| i.name.as_str())
            .collect();
        assert!(names.contains(&"dgemm_cublas"));
        assert!(names.contains(&"dgemm_gotoblas"));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut repo = TaskRepository::with_builtin_expert_variants();
        let err = repo
            .register_expert(
                "I_dgemm",
                TaskImpl {
                    name: "dgemm_cublas".into(),
                    target_platforms: vec!["Cuda".into()],
                    params: vec![
                        ("A".to_string(), AccessMode::Read),
                        ("B".to_string(), AccessMode::Read),
                        ("C".to_string(), AccessMode::ReadWrite),
                    ],
                    source: String::new(),
                    origin: ImplOrigin::Repository,
                    speedup: 1.0,
                },
            )
            .unwrap_err();
        assert!(matches!(err, RepositoryError::DuplicateImplName(_)));
    }

    #[test]
    fn signature_mismatch_rejected() {
        let mut repo = TaskRepository::with_builtin_expert_variants();
        let err = repo
            .register_expert(
                "I_dgemm",
                TaskImpl {
                    name: "dgemm_weird".into(),
                    target_platforms: vec!["x86".into()],
                    params: vec![("X".to_string(), AccessMode::Read)], // wrong!
                    source: String::new(),
                    origin: ImplOrigin::Repository,
                    speedup: 1.0,
                },
            )
            .unwrap_err();
        assert!(matches!(err, RepositoryError::SignatureMismatch { .. }));
        assert!(err.to_string().contains("signature"));
    }

    #[test]
    fn input_program_registration() {
        use crate::parse::parse_program;
        let src = "#pragma cascabel task : x86 : I_k : k01 : (A: readwrite)\nvoid k(double *A) { work(); }";
        let prog = parse_program(src).unwrap();
        let mut repo = TaskRepository::new();
        for f in prog.task_functions() {
            repo.register_function(f).unwrap();
        }
        let iface = repo.interface("I_k").unwrap();
        assert_eq!(iface.implementations.len(), 1);
        assert_eq!(iface.implementations[0].origin, ImplOrigin::InputProgram);
        assert!(iface.implementations[0].source.contains("work"));
    }

    #[test]
    fn cpu_fallback_detection() {
        let imp = TaskImpl {
            name: "g".into(),
            target_platforms: vec!["OpenCL".into()],
            params: vec![],
            source: String::new(),
            origin: ImplOrigin::Repository,
            speedup: 1.0,
        };
        assert!(!imp.is_cpu_fallback());
        let iface = TaskInterface {
            identifier: "I".into(),
            implementations: vec![imp],
        };
        assert!(!iface.has_cpu_fallback());
    }
}
