//! Static task pre-selection against a target PDL descriptor
//! (paper §IV-C step 2).
//!
//! "The platform patterns specified for available task implementation
//! variants are compared to the platform description of the target
//! environment. This serves pre-pruning of task variants not suitable for
//! the target as well as static mapping of tasks to potentially available
//! hardware resources."

use crate::repository::{TaskImpl, TaskInterface, TaskRepository};
use pdl_core::platform::Platform;
use pdl_query::capability::{Requirement, RequirementSet};
use std::fmt;

/// Decision for one implementation variant.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantDecision {
    /// Implementation name.
    pub implementation: String,
    /// Kept (true) or pruned (false).
    pub kept: bool,
    /// PU ids the variant can run on (empty if pruned).
    pub eligible_pus: Vec<String>,
    /// Human-readable reason when pruned.
    pub reason: Option<String>,
}

/// Pre-selection result for one interface.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceSelection {
    /// Interface identifier.
    pub interface: String,
    /// Per-variant decisions, in registration order.
    pub decisions: Vec<VariantDecision>,
}

impl InterfaceSelection {
    /// Names of kept variants.
    pub fn kept(&self) -> impl Iterator<Item = &str> {
        self.decisions
            .iter()
            .filter(|d| d.kept)
            .map(|d| d.implementation.as_str())
    }

    /// Number of pruned variants.
    pub fn pruned_count(&self) -> usize {
        self.decisions.iter().filter(|d| !d.kept).count()
    }
}

/// Errors of pre-selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreselectError {
    /// No variant of the interface can run anywhere on the target and there
    /// is no sequential fall-back to keep the program compilable (§IV-C:
    /// "This ensures the application can always be compiled for a Master PU").
    NoVariantForTarget {
        /// The interface.
        interface: String,
        /// Target platform name.
        platform: String,
    },
}

impl fmt::Display for PreselectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreselectError::NoVariantForTarget {
                interface,
                platform,
            } => write!(
                f,
                "no implementation variant of {interface:?} can execute on platform {platform:?} and no sequential fall-back exists"
            ),
        }
    }
}

impl std::error::Error for PreselectError {}

/// The requirement set a variant imposes on a PU, derived from its target
/// platforms.
pub fn variant_requirements(imp: &TaskImpl) -> Vec<RequirementSet> {
    imp.arch_requirements()
        .into_iter()
        .map(|(arch, sw)| {
            let mut set = RequirementSet::new().with(Requirement::Architecture(arch.to_string()));
            if let Some(sw) = sw {
                set = set.with(Requirement::SoftwarePlatform(sw.to_string()));
            }
            set
        })
        .collect()
}

/// Pre-selects variants of one interface for a target platform.
pub fn preselect_interface(
    interface: &TaskInterface,
    platform: &Platform,
) -> Result<InterfaceSelection, PreselectError> {
    let mut decisions = Vec::new();
    for imp in &interface.implementations {
        let mut eligible: Vec<String> = Vec::new();
        for set in variant_requirements(imp) {
            for (_, pu) in set.matches(platform) {
                let id = pu.id.as_str().to_string();
                if !eligible.contains(&id) {
                    eligible.push(id);
                }
            }
        }
        let kept = !eligible.is_empty();
        decisions.push(VariantDecision {
            implementation: imp.name.clone(),
            kept,
            reason: if kept {
                None
            } else {
                Some(format!(
                    "no PU on {:?} satisfies targets {:?}",
                    platform.name, imp.target_platforms
                ))
            },
            eligible_pus: eligible,
        });
    }
    if decisions.iter().all(|d| !d.kept) {
        return Err(PreselectError::NoVariantForTarget {
            interface: interface.identifier.clone(),
            platform: platform.name.clone(),
        });
    }
    Ok(InterfaceSelection {
        interface: interface.identifier.clone(),
        decisions,
    })
}

/// Pre-selects all interfaces of a repository.
///
/// Interfaces with *no* runnable variant are not an error here — the
/// repository may hold implementations for programs other than the one
/// being compiled. They are returned with every variant pruned; invoking
/// such an interface surfaces as a mapping error
/// ([`crate::mapping::MappingError::EmptyMapping`]). Use
/// [`preselect_interface`] for the strict per-interface check (§IV-C's
/// fall-back guarantee).
pub fn preselect(repository: &TaskRepository, platform: &Platform) -> Vec<InterfaceSelection> {
    repository
        .interfaces()
        .map(|i| match preselect_interface(i, platform) {
            Ok(sel) => sel,
            Err(PreselectError::NoVariantForTarget { .. }) => InterfaceSelection {
                interface: i.identifier.clone(),
                decisions: i
                    .implementations
                    .iter()
                    .map(|imp| VariantDecision {
                        implementation: imp.name.clone(),
                        kept: false,
                        eligible_pus: Vec::new(),
                        reason: Some(format!(
                            "no PU on {:?} satisfies targets {:?}",
                            platform.name, imp.target_platforms
                        )),
                    })
                    .collect(),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::{ImplOrigin, TaskRepository};
    use hetero_rt::data::AccessMode;
    use pdl_discover::synthetic;

    fn repo() -> TaskRepository {
        TaskRepository::with_builtin_expert_variants()
    }

    #[test]
    fn gpu_variants_pruned_on_cpu_only_target() {
        let sel = preselect(&repo(), &synthetic::xeon_x5550_host());
        let dgemm = sel.iter().find(|s| s.interface == "I_dgemm").unwrap();
        let kept: Vec<&str> = dgemm.kept().collect();
        assert_eq!(kept, ["dgemm_gotoblas"]);
        assert_eq!(dgemm.pruned_count(), 2);
        let cublas = dgemm
            .decisions
            .iter()
            .find(|d| d.implementation == "dgemm_cublas")
            .unwrap();
        assert!(!cublas.kept);
        assert!(cublas.reason.as_ref().unwrap().contains("Cuda"));
    }

    #[test]
    fn gpu_variants_kept_on_gpu_target() {
        let sel = preselect(&repo(), &synthetic::xeon_2gpu_testbed());
        let dgemm = sel.iter().find(|s| s.interface == "I_dgemm").unwrap();
        let kept: Vec<&str> = dgemm.kept().collect();
        assert_eq!(kept.len(), 3);
        let cublas = dgemm
            .decisions
            .iter()
            .find(|d| d.implementation == "dgemm_cublas")
            .unwrap();
        assert_eq!(cublas.eligible_pus, ["gpu0", "gpu1"]);
        let goto = dgemm
            .decisions
            .iter()
            .find(|d| d.implementation == "dgemm_gotoblas")
            .unwrap();
        // host Master (the guaranteed fall-back location) + 6 CPU workers
        assert_eq!(goto.eligible_pus.len(), 7);
    }

    #[test]
    fn cell_target_selects_nothing_gpu() {
        // The Cell has a PPE master (arch "ppe") and SPE workers — no "x86"
        // PU, so the dgemm interface has no runnable variant: the strict
        // per-interface check errors (fall-back guarantee violated) …
        let r = repo();
        let iface = r.interface("I_dgemm").unwrap();
        let err = preselect_interface(iface, &synthetic::cell_be()).unwrap_err();
        assert!(matches!(err, PreselectError::NoVariantForTarget { .. }));
        assert!(err.to_string().contains("fall-back"));
        // … while whole-repository preselection records it as all-pruned.
        let sel = preselect(&r, &synthetic::cell_be());
        let dgemm = sel.iter().find(|s| s.interface == "I_dgemm").unwrap();
        assert_eq!(dgemm.kept().count(), 0);
    }

    #[test]
    fn cell_variant_selected_on_cell() {
        let mut r = TaskRepository::new();
        r.register_expert(
            "I_dgemm",
            crate::repository::TaskImpl {
                name: "dgemm_spe".into(),
                target_platforms: vec!["CellSDK".into()],
                params: vec![
                    ("A".to_string(), AccessMode::Read),
                    ("B".to_string(), AccessMode::Read),
                    ("C".to_string(), AccessMode::ReadWrite),
                ],
                source: String::new(),
                origin: ImplOrigin::Repository,
                speedup: 1.0,
            },
        )
        .unwrap();
        let sel = preselect(&r, &synthetic::cell_be());
        let d = &sel[0].decisions[0];
        assert!(d.kept);
        assert_eq!(d.eligible_pus.len(), 8); // all SPEs
    }

    #[test]
    fn varying_pdl_changes_selection_without_changing_program() {
        // The paper's headline property: same repository (= same input
        // program), different PDL descriptor → different selected variants.
        let r = repo();
        let cpu_sel = preselect(&r, &synthetic::xeon_x5550_host());
        let gpu_sel = preselect(&r, &synthetic::xeon_2gpu_testbed());
        let kept =
            |sel: &[InterfaceSelection]| -> usize { sel.iter().map(|s| s.kept().count()).sum() };
        assert!(kept(&gpu_sel) > kept(&cpu_sel));
    }

    #[test]
    fn requirement_derivation() {
        let imp = crate::repository::TaskImpl {
            name: "x".into(),
            target_platforms: vec!["Cuda".into(), "x86".into()],
            params: vec![],
            source: String::new(),
            origin: ImplOrigin::Repository,
            speedup: 1.0,
        };
        let reqs = variant_requirements(&imp);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].requirements.len(), 2); // arch + software platform
        assert_eq!(reqs[1].requirements.len(), 1); // arch only
    }
}
