//! Task mapping: execution groups → processing-unit subsets (paper §IV-B).
//!
//! "The execute annotation enables via the `LogicGroupAttribute` the
//! specification of execution groups for denoting sub-parts of a
//! heterogeneous platform where specific tasks are intended to execute."
//! The mapper resolves each call-site's execution group against the target
//! PDL (group set-expressions from `pdl-query` are accepted), intersects it
//! with the PUs the selected variants can actually run on, and reports the
//! static mapping a compiler or runtime refines further.

use crate::ast::TaskCall;
use crate::preselect::InterfaceSelection;
use hetero_rt::thread_engine::Placement;
use pdl_core::platform::Platform;
use pdl_query::groups;
use std::collections::BTreeSet;
use std::fmt;

/// Static mapping for one annotated call site.
#[derive(Debug, Clone, PartialEq)]
pub struct CallMapping {
    /// The task interface invoked.
    pub interface: String,
    /// The execution group named in the annotation (empty = whole platform).
    pub execution_group: String,
    /// PU ids the call may run on: (group members ∪ whole platform when no
    /// group) ∩ variant-eligible PUs.
    pub target_pus: Vec<String>,
    /// Implementation variants usable on at least one target PU.
    pub usable_variants: Vec<String>,
}

/// Mapping errors.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingError {
    /// The execution group expression failed to parse/resolve.
    BadGroup {
        /// The group expression.
        group: String,
        /// Resolver message.
        message: String,
    },
    /// The group exists but contains no PU able to run any kept variant.
    EmptyMapping {
        /// The interface.
        interface: String,
        /// The group.
        group: String,
    },
    /// The call references an interface with no pre-selection result
    /// (unknown task identifier).
    UnknownInterface(String),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::BadGroup { group, message } => {
                write!(f, "cannot resolve execution group {group:?}: {message}")
            }
            MappingError::EmptyMapping { interface, group } => write!(
                f,
                "execution group {group:?} contains no processing unit able to run any variant of {interface:?}"
            ),
            MappingError::UnknownInterface(i) => {
                write!(f, "execute annotation references unknown task interface {i:?}")
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// Maps one call site.
pub fn map_call(
    call: &TaskCall,
    selections: &[InterfaceSelection],
    platform: &Platform,
) -> Result<CallMapping, MappingError> {
    let interface = &call.pragma.task_identifier;
    let selection = selections
        .iter()
        .find(|s| &s.interface == interface)
        .ok_or_else(|| MappingError::UnknownInterface(interface.clone()))?;

    // Group scope: named group (set expression allowed) or whole platform.
    let group = call.pragma.execution_group.clone();
    let scope: BTreeSet<String> = if group.is_empty() {
        platform
            .iter()
            .map(|(_, pu)| pu.id.as_str().to_string())
            .collect()
    } else {
        let idxs = groups::resolve(platform, &group).map_err(|e| MappingError::BadGroup {
            group: group.clone(),
            message: e.to_string(),
        })?;
        idxs.into_iter()
            .map(|i| platform.pu(i).id.as_str().to_string())
            .collect()
    };

    let mut target_pus: Vec<String> = Vec::new();
    let mut usable_variants: Vec<String> = Vec::new();
    for d in &selection.decisions {
        if !d.kept {
            continue;
        }
        let usable_here: Vec<&String> = d
            .eligible_pus
            .iter()
            .filter(|pu| scope.contains(*pu))
            .collect();
        if !usable_here.is_empty() {
            usable_variants.push(d.implementation.clone());
            for pu in usable_here {
                if !target_pus.contains(pu) {
                    target_pus.push(pu.clone());
                }
            }
        }
    }

    if target_pus.is_empty() {
        return Err(MappingError::EmptyMapping {
            interface: interface.clone(),
            group,
        });
    }

    Ok(CallMapping {
        interface: interface.clone(),
        execution_group: group,
        target_pus,
        usable_variants,
    })
}

/// Derives a thread-engine [`Placement`] from a program's call mappings:
/// every distinct execution group named by an `execute` annotation becomes
/// one placement group with one worker thread per group-member PU.
///
/// This closes the loop the paper sketches between the platform description
/// and the runtime: logic groups authored in the PDL (§III-B) flow through
/// Cascabel annotations (§IV) into actual worker-thread affinity in
/// [`hetero_rt::thread_engine::ThreadedExecutor`]. Calls without a group
/// (whole-platform scope) contribute no placement group — their tasks run
/// anywhere.
pub fn thread_placement(
    mappings: &[CallMapping],
    platform: &Platform,
) -> Result<Placement, MappingError> {
    let mut placement = Placement::new();
    placement.platform = Some(platform.name.clone());
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for m in mappings {
        if m.execution_group.is_empty() || !seen.insert(&m.execution_group) {
            continue;
        }
        let members =
            groups::resolve(platform, &m.execution_group).map_err(|e| MappingError::BadGroup {
                group: m.execution_group.clone(),
                message: e.to_string(),
            })?;
        // Member PU ids label the trace lanes of an execution under this
        // placement (PDL identity end to end).
        let pu_ids: Vec<String> = members
            .iter()
            .map(|&idx| platform.pu(idx).id.as_str().to_string())
            .collect();
        placement = placement.with_group(&m.execution_group, members.len());
        if let Some(g) = placement.groups.last_mut() {
            g.members = pu_ids;
        }
    }
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;
    use crate::preselect::preselect;
    use crate::repository::TaskRepository;
    use pdl_discover::synthetic;

    fn call(src: &str) -> TaskCall {
        parse_program(src)
            .unwrap()
            .task_calls()
            .next()
            .unwrap()
            .clone()
    }

    fn setup(platform: &pdl_core::platform::Platform) -> Vec<InterfaceSelection> {
        preselect(&TaskRepository::with_builtin_expert_variants(), platform)
    }

    #[test]
    fn maps_to_gpu_group() {
        let p = synthetic::xeon_2gpu_testbed();
        let sel = setup(&p);
        let c = call("#pragma cascabel execute I_dgemm : gpus (A:BLOCK:N)\ndgemm(A, B, C);");
        let m = map_call(&c, &sel, &p).unwrap();
        assert_eq!(m.target_pus, ["gpu0", "gpu1"]);
        assert!(m.usable_variants.contains(&"dgemm_cublas".to_string()));
        assert!(!m.usable_variants.contains(&"dgemm_gotoblas".to_string()));
    }

    #[test]
    fn maps_to_whole_platform_without_group() {
        let p = synthetic::xeon_2gpu_testbed();
        let sel = setup(&p);
        let c = call("#pragma cascabel execute I_dgemm\ndgemm(A, B, C);");
        let m = map_call(&c, &sel, &p).unwrap();
        // host Master (fall-back location) + 6 CPU workers + 2 GPUs
        assert_eq!(m.target_pus.len(), 9);
        assert_eq!(m.usable_variants.len(), 3);
    }

    #[test]
    fn group_set_expression() {
        let p = synthetic::xeon_2gpu_testbed();
        let sel = setup(&p);
        let c = call("#pragma cascabel execute I_dgemm : cpus+gpus\ndgemm(A, B, C);");
        let m = map_call(&c, &sel, &p).unwrap();
        assert_eq!(m.target_pus.len(), 8); // group scope excludes the Master
    }

    #[test]
    fn empty_group_mapping_is_error() {
        let p = synthetic::xeon_x5550_host(); // no "gpus" group
        let sel = setup(&p);
        let c = call("#pragma cascabel execute I_dgemm : gpus\ndgemm(A, B, C);");
        let err = map_call(&c, &sel, &p).unwrap_err();
        assert!(matches!(err, MappingError::EmptyMapping { .. }));
    }

    #[test]
    fn bad_group_expression_is_error() {
        let p = synthetic::xeon_2gpu_testbed();
        let sel = setup(&p);
        let c = call("#pragma cascabel execute I_dgemm : @bogus\ndgemm(A, B, C);");
        let err = map_call(&c, &sel, &p).unwrap_err();
        assert!(matches!(err, MappingError::BadGroup { .. }));
    }

    #[test]
    fn unknown_interface_is_error() {
        let p = synthetic::xeon_2gpu_testbed();
        let sel = setup(&p);
        let c = call("#pragma cascabel execute I_mystery : gpus\nmystery(A);");
        let err = map_call(&c, &sel, &p).unwrap_err();
        assert!(matches!(err, MappingError::UnknownInterface(_)));
    }

    #[test]
    fn thread_placement_from_mappings() {
        let p = synthetic::xeon_2gpu_testbed();
        let sel = setup(&p);
        let prog = "#pragma cascabel execute I_dgemm : gpus (A:BLOCK:N)\n\
                    dgemm(A, B, C);\n\
                    #pragma cascabel execute I_dgemm : cpus\n\
                    dgemm(D, E, F);\n\
                    #pragma cascabel execute I_dgemm : gpus\n\
                    dgemm(G, H, I);\n";
        let mappings: Vec<CallMapping> = parse_program(prog)
            .unwrap()
            .task_calls()
            .map(|c| map_call(c, &sel, &p).unwrap())
            .collect();
        let placement = thread_placement(&mappings, &p).unwrap();
        // Duplicate "gpus" collapses; one worker per group member PU.
        assert_eq!(placement.groups.len(), 2);
        assert_eq!(placement.groups[0].name, "gpus");
        assert_eq!(placement.groups[0].workers, 2);
        assert_eq!(placement.groups[1].name, "cpus");
        assert_eq!(placement.groups[1].workers, 6);
        assert_eq!(placement.total_workers(), 8);
    }

    #[test]
    fn cpu_group_excludes_gpu_variants() {
        let p = synthetic::xeon_2gpu_testbed();
        let sel = setup(&p);
        let c = call("#pragma cascabel execute I_dgemm : cpus\ndgemm(A, B, C);");
        let m = map_call(&c, &sel, &p).unwrap();
        assert_eq!(m.usable_variants, ["dgemm_gotoblas"]);
        assert_eq!(m.target_pus.len(), 6);
    }
}
