//! Parser: token stream → annotated [`Program`].
//!
//! Strategy: walk the token stream; a cascabel `task` pragma must be
//! followed by a function definition (`type name(params) { … }`), a
//! cascabel `execute` pragma by a call statement (`name(args);`). Everything
//! else is collected as passthrough text. Non-cascabel preprocessor lines
//! pass through untouched.

use crate::ast::{CParam, Item, Program, TaskCall, TaskFunction};
use crate::lex::{lex, LexError, Spanned, Tok};
use crate::pragma::{is_cascabel_pragma, parse_pragma, Pragma, PragmaError};
use std::fmt;

/// Errors from the Cascabel frontend.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// A cascabel pragma line is malformed.
    Pragma(PragmaError),
    /// A pragma was not followed by the expected construct.
    Structure {
        /// 1-based line of the pragma.
        line: u32,
        /// Description of what was expected.
        message: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => e.fmt(f),
            ParseError::Pragma(e) => e.fmt(f),
            ParseError::Structure { line, message } => {
                write!(f, "parse error after pragma on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

impl From<PragmaError> for ParseError {
    fn from(e: PragmaError) -> Self {
        ParseError::Pragma(e)
    }
}

/// Parses annotated C-subset source.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, at: 0 };
    p.parse()
}

struct Parser {
    toks: Vec<Spanned>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.toks.get(self.at)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.at).cloned();
        if t.is_some() {
            self.at += 1;
        }
        t
    }

    fn parse(&mut self) -> Result<Program, ParseError> {
        let mut items = Vec::new();
        let mut passthrough = String::new();

        while let Some(sp) = self.peek().cloned() {
            match &sp.tok {
                Tok::Hash(text) if is_cascabel_pragma(text) => {
                    if !passthrough.trim().is_empty() {
                        items.push(Item::Passthrough(std::mem::take(&mut passthrough)));
                    } else {
                        passthrough.clear();
                    }
                    self.bump();
                    let pragma = parse_pragma(text)?;
                    match pragma {
                        Pragma::Task(tp) => {
                            let f = self.parse_function(tp, sp.line)?;
                            items.push(Item::TaskFunction(f));
                        }
                        Pragma::Execute(ep) => {
                            let c = self.parse_call(ep, sp.line)?;
                            items.push(Item::TaskCall(c));
                        }
                    }
                }
                _ => {
                    let t = self.bump().expect("peeked");
                    push_token_text(&mut passthrough, &t.tok);
                }
            }
        }
        if !passthrough.trim().is_empty() {
            items.push(Item::Passthrough(passthrough));
        }
        Ok(Program { items })
    }

    /// `type name ( params ) { balanced }` — also tolerates a trailing `;`.
    fn parse_function(
        &mut self,
        pragma: crate::pragma::TaskPragma,
        pragma_line: u32,
    ) -> Result<TaskFunction, ParseError> {
        let err = |line: u32, message: &str| ParseError::Structure {
            line,
            message: message.to_string(),
        };

        // Return type: idents (and `*`) until we see `name (`.
        let mut type_toks: Vec<String> = Vec::new();
        let name;
        let line;
        loop {
            match self.bump() {
                None => {
                    return Err(err(
                        pragma_line,
                        "expected function definition after task pragma",
                    ))
                }
                Some(sp) => match &sp.tok {
                    Tok::Ident(id) => {
                        // Is the next token '('? Then this ident is the name.
                        if matches!(self.peek().map(|s| &s.tok), Some(Tok::Punct('('))) {
                            name = id.clone();
                            line = sp.line;
                            break;
                        }
                        type_toks.push(id.clone());
                    }
                    Tok::Punct('*') => type_toks.push("*".to_string()),
                    other => {
                        return Err(err(
                            sp.line,
                            &format!("unexpected {other} in function signature"),
                        ))
                    }
                },
            }
        }
        if type_toks.is_empty() {
            return Err(err(line, "missing return type"));
        }

        self.bump(); // '('
        let params = self.parse_c_params(line)?;

        // Body: balanced braces.
        match self.peek().map(|s| s.tok.clone()) {
            Some(Tok::Punct('{')) => {}
            _ => return Err(err(line, "expected function body '{'")),
        }
        let body = self.take_balanced_braces(line)?;
        // Tolerate a trailing semicolon (the paper writes `{ ... };`).
        if matches!(self.peek().map(|s| &s.tok), Some(Tok::Punct(';'))) {
            self.bump();
        }

        Ok(TaskFunction {
            pragma,
            return_type: type_toks.join(" "),
            name,
            params,
            body,
            line,
        })
    }

    fn parse_c_params(&mut self, line: u32) -> Result<Vec<CParam>, ParseError> {
        let err = |message: &str| ParseError::Structure {
            line,
            message: message.to_string(),
        };
        let mut params = Vec::new();
        let mut cur: Vec<String> = Vec::new();
        let mut depth = 1usize;
        loop {
            let Some(sp) = self.bump() else {
                return Err(err("unterminated parameter list"));
            };
            match &sp.tok {
                Tok::Punct('(') => {
                    depth += 1;
                    cur.push("(".into());
                }
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        if !cur.is_empty() {
                            params.push(split_c_param(&cur));
                        }
                        return Ok(params);
                    }
                    cur.push(")".into());
                }
                Tok::Punct(',') if depth == 1 => {
                    if !cur.is_empty() {
                        params.push(split_c_param(&cur));
                        cur.clear();
                    }
                }
                other => cur.push(other.to_string()),
            }
        }
    }

    fn take_balanced_braces(&mut self, line: u32) -> Result<String, ParseError> {
        let err = || ParseError::Structure {
            line,
            message: "unbalanced braces in function body".to_string(),
        };
        let mut depth = 0usize;
        let mut text = String::new();
        loop {
            let Some(sp) = self.bump() else {
                return Err(err());
            };
            match &sp.tok {
                Tok::Punct('{') => {
                    depth += 1;
                    text.push('{');
                }
                Tok::Punct('}') => {
                    depth -= 1;
                    text.push('}');
                    if depth == 0 {
                        return Ok(text);
                    }
                }
                other => {
                    push_token_text(&mut text, other);
                }
            }
        }
    }

    /// `name ( args ) ;`
    fn parse_call(
        &mut self,
        pragma: crate::pragma::ExecutePragma,
        pragma_line: u32,
    ) -> Result<TaskCall, ParseError> {
        let err = |line: u32, message: &str| ParseError::Structure {
            line,
            message: message.to_string(),
        };
        let (callee, line) = match self.bump() {
            Some(Spanned {
                tok: Tok::Ident(id),
                line,
            }) => (id, line),
            Some(sp) => return Err(err(sp.line, "expected call statement after execute pragma")),
            None => {
                return Err(err(
                    pragma_line,
                    "expected call statement after execute pragma",
                ))
            }
        };
        match self.bump().map(|s| s.tok) {
            Some(Tok::Punct('(')) => {}
            _ => return Err(err(line, "expected '(' in annotated call")),
        }
        let mut args = Vec::new();
        let mut cur = String::new();
        let mut depth = 1usize;
        loop {
            let Some(sp) = self.bump() else {
                return Err(err(line, "unterminated argument list"));
            };
            match &sp.tok {
                Tok::Punct('(') => {
                    depth += 1;
                    cur.push('(');
                }
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        if !cur.trim().is_empty() {
                            args.push(cur.trim().to_string());
                        }
                        break;
                    }
                    cur.push(')');
                }
                Tok::Punct(',') if depth == 1 => {
                    args.push(cur.trim().to_string());
                    cur.clear();
                }
                other => push_token_text(&mut cur, other),
            }
        }
        if !matches!(self.peek().map(|s| &s.tok), Some(Tok::Punct(';'))) {
            return Err(err(line, "expected ';' after annotated call"));
        }
        self.bump();
        Ok(TaskCall {
            pragma,
            callee,
            args,
            line,
        })
    }
}

/// Appends a token's text with simple spacing.
fn push_token_text(out: &mut String, tok: &Tok) {
    match tok {
        Tok::Punct(c) => out.push(*c),
        other => {
            if out
                .chars()
                .last()
                .map(|c| c.is_alphanumeric() || c == '_')
                .unwrap_or(false)
            {
                out.push(' ');
            }
            out.push_str(&other.to_string());
        }
    }
}

/// Splits accumulated parameter tokens into type text and name (last ident).
fn split_c_param(toks: &[String]) -> CParam {
    let name_pos = toks.iter().rposition(|t| {
        t.chars()
            .next()
            .map(|c| c.is_alphabetic() || c == '_')
            .unwrap_or(false)
    });
    match name_pos {
        Some(p) => CParam {
            ty: toks[..p].join(" "),
            name: toks[p].clone(),
        },
        None => CParam {
            ty: toks.join(" "),
            name: String::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_rt::data::AccessMode;

    /// The paper's §IV-A example, verbatim modulo formatting.
    const PAPER_EXAMPLE: &str = r#"
#include <stdio.h>

// Task definition
#pragma cascabel task : x86 : I_vecadd : vecadd01 : (A: readwrite, B: read)
void vector_add(double *A, double *B) { for (int i = 0; i < N; i++) A[i] += B[i]; };

int main() {
    double *A = make(N);
    double *B = make(N);
    // Task execution
    #pragma cascabel execute I_vecadd : executionset01 (A:BLOCK:N, B:BLOCK:N)
    vector_add(A, B);
    return 0;
}
"#;

    #[test]
    fn paper_example_parses() {
        let prog = parse_program(PAPER_EXAMPLE).unwrap();
        let funcs: Vec<_> = prog.task_functions().collect();
        assert_eq!(funcs.len(), 1);
        let f = funcs[0];
        assert_eq!(f.name, "vector_add");
        assert_eq!(f.return_type, "void");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "A");
        assert_eq!(f.params[0].ty, "double *");
        assert_eq!(f.pragma.task_identifier, "I_vecadd");
        assert_eq!(f.pragma.params[0].1, AccessMode::ReadWrite);
        assert!(
            f.body.contains("A[i]+=B[i]")
                || f.body.contains("A[i] += B[i]")
                || f.body.contains("+=")
        );

        let calls: Vec<_> = prog.task_calls().collect();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].callee, "vector_add");
        assert_eq!(calls[0].args, vec!["A", "B"]);
        assert_eq!(calls[0].pragma.execution_group, "executionset01");
    }

    #[test]
    fn passthrough_preserved() {
        let prog = parse_program(PAPER_EXAMPLE).unwrap();
        let passthrough: String = prog
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Passthrough(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        assert!(passthrough.contains("main"));
        assert!(passthrough.contains("return 0"));
    }

    #[test]
    fn nested_braces_in_body() {
        let src = "#pragma cascabel task : x86 : I_k : k01 : (A: read)\nvoid k(double *A) { if (x) { while (y) { z(); } } }";
        let prog = parse_program(src).unwrap();
        let f = prog.task_functions().next().unwrap();
        assert_eq!(f.body.matches('{').count(), 3);
        assert_eq!(f.body.matches('}').count(), 3);
    }

    #[test]
    fn call_with_expression_args() {
        let src = "#pragma cascabel execute I_k : g\nk(a + b, f(c, d), n * 2);";
        let prog = parse_program(src).unwrap();
        let c = prog.task_calls().next().unwrap();
        assert_eq!(c.args.len(), 3);
        assert!(c.args[1].contains("f(c,d)") || c.args[1].contains("f(c, d)"));
    }

    #[test]
    fn multiple_variants_same_interface() {
        let src = r#"
#pragma cascabel task : x86 : I_dgemm : dgemm_cpu : (A: read, B: read, C: readwrite)
void dgemm_cpu(double *A, double *B, double *C) { cblas(); }
#pragma cascabel task : Cuda : I_dgemm : dgemm_gpu : (A: read, B: read, C: readwrite)
void dgemm_gpu(double *A, double *B, double *C) { cublas(); }
"#;
        let prog = parse_program(src).unwrap();
        let funcs: Vec<_> = prog.task_functions().collect();
        assert_eq!(funcs.len(), 2);
        assert_eq!(
            funcs[0].pragma.task_identifier,
            funcs[1].pragma.task_identifier
        );
        assert_ne!(funcs[0].pragma.task_name, funcs[1].pragma.task_name);
    }

    #[test]
    fn pragma_not_followed_by_function_is_error() {
        let src = "#pragma cascabel task : x86 : I_k : k01 : (A: read)\nint x = 3;";
        // "int x = 3;" — the parser sees `int x` then `=` (not '('), error.
        let err = parse_program(src).unwrap_err();
        assert!(matches!(err, ParseError::Structure { .. }));
    }

    #[test]
    fn execute_not_followed_by_call_is_error() {
        let src = "#pragma cascabel execute I_k : g\nint x;";
        let err = parse_program(src).unwrap_err();
        assert!(matches!(err, ParseError::Structure { .. }));
    }

    #[test]
    fn missing_semicolon_after_call_is_error() {
        let src = "#pragma cascabel execute I_k : g\nk(a)";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn non_cascabel_pragmas_pass_through() {
        let src = "#pragma omp parallel\nint x;";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.task_functions().count(), 0);
        let Item::Passthrough(t) = &prog.items[0] else {
            panic!()
        };
        assert!(t.contains("#pragma omp parallel"));
    }

    #[test]
    fn continuation_pragmas_work_through_lexer() {
        let src = "#pragma cascabel task \\\n : x86 \\\n : I_k \\\n : k01 \\\n : (A: read)\nvoid k(double *A) { }";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.task_functions().count(), 1);
    }

    #[test]
    fn empty_parameter_function() {
        let src = "#pragma cascabel task : x86 : I_n : n01 : ()\nvoid nop() { }";
        let prog = parse_program(src).unwrap();
        let f = prog.task_functions().next().unwrap();
        assert!(f.params.is_empty());
        assert!(f.pragma.params.is_empty());
    }
}
