//! Lexer for the C subset Cascabel processes.
//!
//! The paper's prototype used the ROSE compiler framework; this reproduction
//! replaces it with a purpose-built frontend (see DESIGN.md). The lexer
//! recognizes exactly what the pipeline needs: identifiers, literals,
//! punctuation, comments (skipped) and `#pragma` lines (captured whole, with
//! line continuations), with line tracking for diagnostics.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`void`, `double`, `vector_add`).
    Ident(String),
    /// Numeric literal (verbatim text).
    Number(String),
    /// String literal (verbatim, including quotes).
    Str(String),
    /// Char literal (verbatim, including quotes).
    Char(String),
    /// Any single punctuation character (`(`, `)`, `{`, `}`, `;`, `,`, `*`,
    /// `=`, …) or multi-char operator captured char by char.
    Punct(char),
    /// A full `#pragma`/`#include`/… preprocessor line (without newline;
    /// backslash continuations folded in).
    Hash(String),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) | Tok::Number(s) | Tok::Str(s) | Tok::Char(s) | Tok::Hash(s) => {
                f.write_str(s)
            }
            Tok::Punct(c) => write!(f, "{c}"),
        }
    }
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line of its first character.
    pub line: u32,
}

/// A lexical error (unterminated string/comment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the problem.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes C-subset source.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line: u32 = 1;

    macro_rules! err {
        ($msg:expr) => {
            return Err(LexError {
                line,
                message: $msg.to_string(),
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        line = start_line;
                        err!("unterminated block comment");
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            '#' => {
                // Preprocessor line; fold backslash continuations.
                let tok_line = line;
                let mut text = String::new();
                while i < bytes.len() {
                    if bytes[i] == '\\' && i + 1 < bytes.len() && bytes[i + 1] == '\n' {
                        text.push(' ');
                        line += 1;
                        i += 2;
                        continue;
                    }
                    if bytes[i] == '\n' {
                        break;
                    }
                    text.push(bytes[i]);
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Hash(text.trim_end().to_string()),
                    line: tok_line,
                });
            }
            '"' => {
                let tok_line = line;
                let mut text = String::from('"');
                i += 1;
                loop {
                    if i >= bytes.len() {
                        line = tok_line;
                        err!("unterminated string literal");
                    }
                    let ch = bytes[i];
                    text.push(ch);
                    i += 1;
                    if ch == '\\' && i < bytes.len() {
                        text.push(bytes[i]);
                        i += 1;
                    } else if ch == '"' {
                        break;
                    } else if ch == '\n' {
                        line += 1;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(text),
                    line: tok_line,
                });
            }
            '\'' => {
                let tok_line = line;
                let mut text = String::from('\'');
                i += 1;
                loop {
                    if i >= bytes.len() {
                        line = tok_line;
                        err!("unterminated char literal");
                    }
                    let ch = bytes[i];
                    text.push(ch);
                    i += 1;
                    if ch == '\\' && i < bytes.len() {
                        text.push(bytes[i]);
                        i += 1;
                    } else if ch == '\'' {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Char(text),
                    line: tok_line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let tok_line = line;
                let mut text = String::new();
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    text.push(bytes[i]);
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(text),
                    line: tok_line,
                });
            }
            c if c.is_ascii_digit() => {
                let tok_line = line;
                let mut text = String::new();
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric() || bytes[i] == '.' || bytes[i] == '_')
                {
                    text.push(bytes[i]);
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Number(text),
                    line: tok_line,
                });
            }
            other => {
                out.push(Spanned {
                    tok: Tok::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_function() {
        let t = toks("void f(double *A) { return; }");
        assert_eq!(t[0], Tok::Ident("void".into()));
        assert_eq!(t[1], Tok::Ident("f".into()));
        assert_eq!(t[2], Tok::Punct('('));
        assert!(t.contains(&Tok::Punct('*')));
        assert!(t.contains(&Tok::Ident("return".into())));
    }

    #[test]
    fn pragma_captured_whole() {
        let t = toks("#pragma cascabel task : x86 : I_vecadd : v01 : (A: readwrite)\nint x;");
        assert_eq!(
            t[0],
            Tok::Hash("#pragma cascabel task : x86 : I_vecadd : v01 : (A: readwrite)".into())
        );
        assert_eq!(t[1], Tok::Ident("int".into()));
    }

    #[test]
    fn pragma_line_continuations_folded() {
        let t = toks("#pragma cascabel task \\\n : x86 \\\n : I_v\nint x;");
        match &t[0] {
            Tok::Hash(s) => {
                assert!(s.contains(": x86"));
                assert!(s.contains(": I_v"));
            }
            other => panic!("expected Hash, got {other:?}"),
        }
        // Line numbers after continuation are correct.
        let spanned = lex("#pragma a \\\n b\nint x;").unwrap();
        assert_eq!(spanned[1].line, 3);
    }

    #[test]
    fn comments_skipped() {
        let t = toks("// line comment\nint /* block */ x; /* multi\nline */ y;");
        assert_eq!(
            t,
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct(';'),
                Tok::Ident("y".into()),
                Tok::Punct(';')
            ]
        );
    }

    #[test]
    fn strings_and_chars_verbatim() {
        let t = toks(r#"printf("hi \"there\"", 'x', '\n');"#);
        assert!(t.contains(&Tok::Str(r#""hi \"there\"""#.into())));
        assert!(t.contains(&Tok::Char("'x'".into())));
        assert!(t.contains(&Tok::Char(r"'\n'".into())));
    }

    #[test]
    fn numbers() {
        let t = toks("x = 8192 * 3.14e2;");
        assert!(t.contains(&Tok::Number("8192".into())));
        assert!(t.contains(&Tok::Number("3.14e2".into())));
    }

    #[test]
    fn line_tracking() {
        let spanned = lex("int a;\nint b;\n\nint c;").unwrap();
        let line_of = |name: &str| {
            spanned
                .iter()
                .find(|s| s.tok == Tok::Ident(name.into()))
                .unwrap()
                .line
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 2);
        assert_eq!(line_of("c"), 4);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("'u").is_err());
        let e = lex("int x;\n\"oops").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn empty_input() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("  \n\t ").unwrap().is_empty());
    }
}
