//! The Cascabel driver: the end-to-end pipeline of Figure 4.
//!
//! ```text
//! annotated C source ──parse──▶ Program
//!          repository ◀─register─┘
//!               │ static pre-selection (target PDL)
//!               ▼
//!        output generation (main + kernels + runnable graph)
//!               │
//!               ▼
//!        compilation plan (from PDL COMPILER/LINK_LIBS)
//! ```
//!
//! "By varying the target PDL descriptor our compiler can generate code for
//! different target architectures without the need to modify the source
//! program" — [`Cascabel::compile`] takes the same source and any platform.

use crate::codegen::{
    generate_with_mappings, map_calls, CodegenError, GeneratedOutput, ProblemSpec,
};
use crate::compplan::{derive_plan, CompilationPlan};
use crate::parse::{parse_program, ParseError};
use crate::preselect::{preselect, InterfaceSelection, PreselectError};
use crate::repository::{RepositoryError, TaskRepository};
use hetero_trace::{PhaseSpan, PhaseTimer};
use pdl_core::platform::Platform;
use std::collections::BTreeMap;
use std::fmt;

/// Any error of the pipeline.
#[derive(Debug)]
pub enum CascabelError {
    /// Frontend failure.
    Parse(ParseError),
    /// Task registration failure.
    Repository(RepositoryError),
    /// Pre-selection failure (no runnable variant).
    Preselect(PreselectError),
    /// Output generation failure.
    Codegen(CodegenError),
}

impl fmt::Display for CascabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CascabelError::Parse(e) => e.fmt(f),
            CascabelError::Repository(e) => e.fmt(f),
            CascabelError::Preselect(e) => e.fmt(f),
            CascabelError::Codegen(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CascabelError {}

impl From<ParseError> for CascabelError {
    fn from(e: ParseError) -> Self {
        CascabelError::Parse(e)
    }
}
impl From<RepositoryError> for CascabelError {
    fn from(e: RepositoryError) -> Self {
        CascabelError::Repository(e)
    }
}
impl From<PreselectError> for CascabelError {
    fn from(e: PreselectError) -> Self {
        CascabelError::Preselect(e)
    }
}
impl From<CodegenError> for CascabelError {
    fn from(e: CodegenError) -> Self {
        CascabelError::Codegen(e)
    }
}

/// The complete result of one translation.
#[derive(Debug)]
pub struct CompileResult {
    /// Generated sources + runnable graph + mappings.
    pub output: GeneratedOutput,
    /// Pre-selection decisions per interface.
    pub selections: Vec<InterfaceSelection>,
    /// The compilation/link plan derived from the PDL.
    pub plan: CompilationPlan,
    /// Timed pipeline phases (`parse`, `preselect`, `mapping`, `codegen`,
    /// `compplan`) on one monotonic clock — convert with
    /// [`hetero_trace::RunTrace::from_phases`] for Chrome-trace export.
    pub phases: Vec<PhaseSpan>,
}

impl CompileResult {
    /// Writes all generated artifacts into `dir`, like the paper's prototype
    /// constructing output source files (§IV-C step 3): the host program,
    /// one kernel file per selected variant, the compilation plan as a
    /// shell-like script, and a human-readable mapping report. Returns the
    /// written paths.
    pub fn write_to_dir(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let mut put = |name: String, content: &str| -> std::io::Result<()> {
            let path = dir.join(name);
            std::fs::write(&path, content)?;
            written.push(path);
            Ok(())
        };
        put("cascabel_main.c".to_string(), &self.output.main_source)?;
        for files in self.output.kernel_sources.values() {
            for (name, content) in files {
                put(name.clone(), content)?;
            }
        }
        put("build_plan.sh".to_string(), &self.plan.to_string())?;
        let mut report = String::from(
            "# Cascabel mapping report
",
        );
        for m in &self.output.mappings {
            report.push_str(&format!(
                "{} group={:?} pus=[{}] variants=[{}]
",
                m.interface,
                m.execution_group,
                m.target_pus.join(", "),
                m.usable_variants.join(", ")
            ));
        }
        for s in &self.selections {
            for d in &s.decisions {
                report.push_str(&format!(
                    "{}::{} {}
",
                    s.interface,
                    d.implementation,
                    if d.kept { "kept" } else { "pruned" }
                ));
            }
        }
        put("mapping_report.txt".to_string(), &report)?;
        Ok(written)
    }
}

/// The source-to-source compiler, parameterized by a PDL descriptor.
#[derive(Debug, Clone)]
pub struct Cascabel {
    platform: Platform,
    repository: TaskRepository,
    provenance: Option<String>,
}

impl Cascabel {
    /// A compiler targeting `platform`, with the built-in expert variants
    /// preloaded.
    pub fn new(platform: Platform) -> Self {
        Cascabel {
            platform,
            repository: TaskRepository::with_builtin_expert_variants(),
            provenance: None,
        }
    }

    /// A compiler with an empty repository (tasks come only from input
    /// programs).
    pub fn with_empty_repository(platform: Platform) -> Self {
        Cascabel {
            platform,
            repository: TaskRepository::new(),
            provenance: None,
        }
    }

    /// A compiler whose target platform is resolved through a registry
    /// snapshot (`req` is a version requirement such as `"latest"`,
    /// `"^1.2"` or `"=1.0.0"`). The resolved pin — name, version and
    /// content address — is recorded as [`Cascabel::provenance`], so a
    /// compilation can always be traced back to the exact descriptor
    /// revision that drove it.
    pub fn from_registry(
        snapshot: &pdl_registry::Snapshot,
        name: &str,
        req: &str,
    ) -> Result<Self, pdl_registry::RegistryError> {
        let resolved = snapshot.resolve_str(name, req)?;
        let mut c = Cascabel::new(resolved.platform.platform().clone());
        c.provenance = Some(resolved.pin());
        Ok(c)
    }

    /// The target platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The registry pin (`name@version (hash)`) the platform was resolved
    /// from, if [`Cascabel::from_registry`] was used.
    pub fn provenance(&self) -> Option<&str> {
        self.provenance.as_deref()
    }

    /// Mutable repository access (register expert variants).
    pub fn repository_mut(&mut self) -> &mut TaskRepository {
        &mut self.repository
    }

    /// Read access to the repository.
    pub fn repository(&self) -> &TaskRepository {
        &self.repository
    }

    /// Runs the full pipeline on annotated source.
    ///
    /// Each pipeline step is timed as a named phase on one monotonic clock;
    /// the spans come back in [`CompileResult::phases`].
    pub fn compile(
        &mut self,
        source: &str,
        spec: &ProblemSpec,
    ) -> Result<CompileResult, CascabelError> {
        let mut timer = PhaseTimer::new();

        // 1. Frontend + task registration (§IV-C step 1).
        timer.start("parse");
        let program = parse_program(source)?;
        for f in program.task_functions() {
            match self.repository.register_function(f) {
                Ok(()) => {}
                // Re-compiling the same source against another PDL is the
                // paper's central scenario; the repository already holds the
                // implementation, which is fine.
                Err(RepositoryError::DuplicateImplName(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        timer.end();

        // 2. Static pre-selection (§IV-C step 2).
        let selections = timer.scope("preselect", |_| preselect(&self.repository, &self.platform));

        // 3. Output generation (§IV-C step 3): call mapping first, then
        // source emission + graph construction from the mapped calls.
        timer.start("mapping");
        let mappings = map_calls(&program, &selections, &self.platform)?;
        timer.end();
        timer.start("codegen");
        let output = generate_with_mappings(
            &program,
            &self.repository,
            &selections,
            &self.platform,
            spec,
            mappings,
        )?;
        timer.end();

        // 4. Compilation plan (§IV-C step 4).
        let plan = timer.scope("compplan", |_| {
            let mut sources_by_arch: BTreeMap<String, Vec<String>> = BTreeMap::new();
            sources_by_arch
                .entry("x86".to_string())
                .or_default()
                .push("cascabel_main.c".to_string());
            for (arch, files) in &output.kernel_sources {
                let entry = sources_by_arch.entry(arch.clone()).or_default();
                for (name, _) in files {
                    entry.push(name.clone());
                }
            }
            derive_plan(&self.platform, &sources_by_arch, "cascabel_out")
        });

        Ok(CompileResult {
            output,
            selections,
            plan,
            phases: timer.finish(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_discover::synthetic;

    /// The paper's experiment input: a serial program whose single annotated
    /// call multiplies two 8192×8192 matrices via an optimized BLAS library.
    pub const DGEMM_INPUT: &str = r#"
#include <cblas.h>

#pragma cascabel task : x86 : I_dgemm : dgemm_serial : (A: read, B: read, C: readwrite)
void my_dgemm(double *A, double *B, double *C) { cblas_dgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans, N, N, N, 1.0, A, N, B, N, 1.0, C, N); }

#pragma cascabel execute I_dgemm : (A:BLOCK:N, B:BLOCK:N, C:BLOCK:N)
my_dgemm(A, B, C);
"#;

    #[test]
    fn same_source_two_platforms() {
        // The Fig. 5 scenario: identical input, two PDL descriptors.
        let mut spec = ProblemSpec::with_size("N", 8192);
        spec.tile = Some(2048);

        let mut cpu = Cascabel::new(synthetic::xeon_x5550_host());
        let cpu_result = cpu.compile(DGEMM_INPUT, &spec).unwrap();

        let mut gpu = Cascabel::new(synthetic::xeon_2gpu_testbed());
        let gpu_result = gpu.compile(DGEMM_INPUT, &spec).unwrap();

        // CPU build keeps only CPU variants; GPU build keeps CuBLAS too.
        let kept = |r: &CompileResult| -> Vec<String> {
            r.selections
                .iter()
                .flat_map(|s| s.kept().map(str::to_string))
                .collect()
        };
        assert!(!kept(&cpu_result).contains(&"dgemm_cublas".to_string()));
        assert!(kept(&gpu_result).contains(&"dgemm_cublas".to_string()));

        // Both graphs carry the full 8192³×2 FLOPs.
        let total = kernels::dgemm::dgemm_flops(8192);
        assert!((cpu_result.output.graph.total_flops() - total).abs() < 1.0);
        assert!((gpu_result.output.graph.total_flops() - total).abs() < 1.0);

        // Plans differ: the GPU build compiles with nvcc too.
        assert!(gpu_result
            .plan
            .compiles
            .iter()
            .any(|c| c.compiler == "nvcc"));
        assert!(!cpu_result
            .plan
            .compiles
            .iter()
            .any(|c| c.compiler == "nvcc"));
    }

    #[test]
    fn compile_times_every_pipeline_phase() {
        let mut c = Cascabel::new(synthetic::xeon_2gpu_testbed());
        let spec = ProblemSpec::with_size("N", 1024);
        let r = c.compile(DGEMM_INPUT, &spec).unwrap();
        let names: Vec<&str> = r.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            ["parse", "preselect", "mapping", "codegen", "compplan"]
        );
        // One shared clock: phases are sequential and non-overlapping.
        for pair in r.phases.windows(2) {
            assert!(pair[0].end_ns <= pair[1].start_ns, "{pair:?}");
        }
        // The spans convert into a valid trace for the Chrome exporter.
        let trace = hetero_trace::RunTrace::from_phases(Some("testbed".into()), &r.phases);
        trace.validate().expect("phase trace is well-formed");
    }

    #[test]
    fn recompilation_is_idempotent() {
        let mut c = Cascabel::new(synthetic::xeon_2gpu_testbed());
        let spec = ProblemSpec::with_size("N", 1024);
        let r1 = c.compile(DGEMM_INPUT, &spec).unwrap();
        let r2 = c.compile(DGEMM_INPUT, &spec).unwrap();
        assert_eq!(r1.output.graph.len(), r2.output.graph.len());
    }

    #[test]
    fn empty_repository_requires_input_variants() {
        let mut c = Cascabel::with_empty_repository(synthetic::xeon_x5550_host());
        let spec = ProblemSpec::with_size("N", 256);
        let r = c.compile(DGEMM_INPUT, &spec).unwrap();
        // Only the input-program's serial variant exists.
        let dgemm = r
            .selections
            .iter()
            .find(|s| s.interface == "I_dgemm")
            .unwrap();
        let kept: Vec<&str> = dgemm.kept().collect();
        assert_eq!(kept, ["dgemm_serial"]);
    }

    #[test]
    fn parse_errors_surface() {
        let mut c = Cascabel::new(synthetic::xeon_x5550_host());
        let err = c
            .compile("#pragma cascabel task : broken", &ProblemSpec::default())
            .unwrap_err();
        assert!(matches!(err, CascabelError::Parse(_)));
    }

    #[test]
    fn write_to_dir_produces_all_artifacts() {
        let dir = std::env::temp_dir().join(format!("cascabel-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Cascabel::new(synthetic::xeon_2gpu_testbed());
        let spec = ProblemSpec::with_size("N", 1024);
        let r = c.compile(DGEMM_INPUT, &spec).unwrap();
        let written = r.write_to_dir(&dir).unwrap();
        assert!(written.iter().any(|p| p.ends_with("cascabel_main.c")));
        assert!(written.iter().any(|p| p.ends_with("build_plan.sh")));
        assert!(written.iter().any(|p| p.ends_with("mapping_report.txt")));
        // CuBLAS kernel file present on the GPU target.
        assert!(written.iter().any(|p| p
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("cublas")));
        let main = std::fs::read_to_string(dir.join("cascabel_main.c")).unwrap();
        assert!(main.contains("starpu_init"));
        let plan = std::fs::read_to_string(dir.join("build_plan.sh")).unwrap();
        assert!(plan.contains("nvcc"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plan_includes_generated_main() {
        let mut c = Cascabel::new(synthetic::xeon_2gpu_testbed());
        let spec = ProblemSpec::with_size("N", 1024);
        let r = c.compile(DGEMM_INPUT, &spec).unwrap();
        let x86 = r.plan.compiles.iter().find(|s| s.arch == "x86").unwrap();
        assert!(x86.sources.contains(&"cascabel_main.c".to_string()));
    }

    #[test]
    fn from_registry_pins_the_resolved_revision() {
        let reg = pdl_registry::Registry::new();
        reg.publish(&synthetic::xeon_2gpu_testbed());
        let snap = reg.snapshot();
        let mut c = Cascabel::from_registry(&snap, "xeon-x5550-gtx480-gtx285", "latest").unwrap();
        let pin = c.provenance().unwrap().to_string();
        assert!(pin.starts_with("xeon-x5550-gtx480-gtx285@1.0.0"));
        // The resolved (canonicalized) platform compiles like the direct one.
        let r = c
            .compile(DGEMM_INPUT, &ProblemSpec::with_size("N", 1024))
            .unwrap();
        assert!(!r.output.mappings.is_empty());
        assert!(matches!(
            Cascabel::from_registry(&snap, "nope", "latest"),
            Err(pdl_registry::RegistryError::UnknownPlatform(_))
        ));
    }
}
