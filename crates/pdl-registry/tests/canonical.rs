//! Property tests for the canonicality of interning: semantically equal
//! documents must hash to the same content address, regardless of
//! attribute order, surrounding whitespace, or layer composition order —
//! and a registry's self-diff must always be empty.

use pdl_core::prelude::*;
use pdl_registry::{
    canonicalize, compose, content_hash, Layer, LayerKind, Registry, Target, VersionReq,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Tiny deterministic LCG for shuffles, seeded from a drawn `u64`.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }

    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = (self.next() as usize) % (i + 1);
            xs.swap(i, j);
        }
    }
}

type PropSpec = (String, String);
type WorkerSpec = (String, Vec<PropSpec>);

/// Builds a platform from worker specs, with controllable presentation:
/// worker insertion order, per-descriptor property order, and whitespace
/// padding around values.
fn build(name: &str, workers: &[WorkerSpec], seed: Option<u64>, pad: bool) -> Platform {
    let mut order: Vec<usize> = (0..workers.len()).collect();
    if let Some(s) = seed {
        Lcg(s).shuffle(&mut order);
    }
    let mut b = Platform::builder(name);
    let m = b.master("host");
    b.prop(m, Property::fixed("ARCHITECTURE", "x86"));
    for &wi in &order {
        let (id, props) = &workers[wi];
        let w = b.worker(m, format!("w-{id}")).unwrap();
        let mut props: Vec<&PropSpec> = props.iter().collect();
        if let Some(s) = seed {
            Lcg(s ^ wi as u64).shuffle(&mut props);
        }
        for (pname, pval) in props {
            let val = if pad {
                format!("  {pval} ")
            } else {
                pval.clone()
            };
            b.prop(w, Property::fixed(pname.clone(), val));
        }
        b.interconnect(if wi % 2 == 0 {
            Interconnect::new("PCIe", "host", format!("w-{id}"))
        } else {
            // Bidirectional edges may be written in either direction.
            Interconnect::new("PCIe", format!("w-{id}"), "host")
        });
    }
    b.build_unchecked()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn presentation_does_not_change_the_address(
        workers in vec(("[a-z][a-z0-9]{0,4}", vec(("[A-Z]{3,8}", "[a-z0-9]{1,6}"), 1..4)), 1..5),
        seed in any::<u64>(),
    ) {
        // De-duplicate worker ids: equal ids would merge differently
        // depending on insertion order, which is a semantic difference.
        let mut workers = workers;
        workers.sort_by(|a, b| a.0.cmp(&b.0));
        workers.dedup_by(|a, b| a.0 == b.0);

        let plain = build("prop-node", &workers, None, false);
        let shuffled = build("prop-node", &workers, Some(seed), true);
        prop_assert_eq!(content_hash(&plain), content_hash(&shuffled));
        // Canonicalization is a fixpoint and preserves the address.
        let canon = canonicalize(&shuffled);
        prop_assert_eq!(content_hash(&canon), content_hash(&plain));
        prop_assert_eq!(canonicalize(&canon), canon.clone());
    }

    #[test]
    fn layer_composition_order_is_immaterial(
        freqs in vec("[0-9]\\.[0-9]{1,2}", 2..5),
        seed in any::<u64>(),
    ) {
        let base = build(
            "layered-node",
            &[("a".into(), vec![("KIND".into(), "gpu".into())])],
            None,
            false,
        );
        let kinds = [
            LayerKind::Isa,
            LayerKind::Microarchitecture,
            LayerKind::Environment,
        ];
        let layers: Vec<Layer> = freqs
            .iter()
            .enumerate()
            .map(|(i, f)| {
                Layer::new(kinds[i % 3], format!("layer-{i}"))
                    .set(Target::All, Property::fixed(format!("P{i}"), f.clone()))
                    .set(
                        Target::Pu("host".into()),
                        Property::fixed("FREQUENCY", f.clone()),
                    )
            })
            .collect();
        let mut shuffled = layers.clone();
        Lcg(seed).shuffle(&mut shuffled);
        let a = compose(&base, &layers);
        let b = compose(&base, &shuffled);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn registry_self_diff_is_always_empty(
        workers in vec(("[a-z][a-z0-9]{0,4}", vec(("[A-Z]{3,8}", "[a-z0-9]{1,6}"), 1..4)), 1..4),
        seed in any::<u64>(),
    ) {
        let mut workers = workers;
        workers.sort_by(|a, b| a.0.cmp(&b.0));
        workers.dedup_by(|a, b| a.0 == b.0);

        let reg = Registry::new();
        reg.publish(&build("self-diff", &workers, None, false));
        // Republishing a different presentation of the same content must
        // neither create a release nor produce a diff.
        let out = reg.publish(&build("self-diff", &workers, Some(seed), true));
        prop_assert!(!out.created);
        let snap = reg.snapshot();
        prop_assert_eq!(snap.total_releases(), 1);
        let d = snap
            .diff("self-diff", &VersionReq::Latest, &VersionReq::Latest)
            .unwrap();
        prop_assert!(d.is_empty(), "self-diff produced changes: {d:?}");
    }
}
