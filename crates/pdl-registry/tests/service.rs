//! Concurrency tests: readers running resolve/select/diff against
//! snapshots must always observe a consistent catalog while publishers
//! advance it, and epochs must be monotonic.

use pdl_core::prelude::*;
use pdl_query::capability::{Requirement, RequirementSet};
use pdl_registry::{Registry, SemVer, VersionReq};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

fn node(name: &str, cores: u32, gpus: usize) -> Platform {
    let mut b = Platform::builder(name);
    let m = b.master("cpu");
    b.prop(m, Property::fixed("ARCHITECTURE", "x86"));
    b.prop(m, Property::fixed("CORES", cores.to_string()));
    for g in 0..gpus {
        let w = b.worker(m, format!("gpu{g}")).unwrap();
        b.prop(w, Property::fixed("ARCHITECTURE", "gpu"));
        b.interconnect(Interconnect::new("PCIe", "cpu", format!("gpu{g}")));
    }
    b.build().unwrap()
}

#[test]
fn readers_see_consistent_snapshots_during_publishes() {
    const NAMES: usize = 8;
    const REVISIONS: u32 = 24;
    const READERS: usize = 6;

    let reg = Arc::new(Registry::new());
    for n in 0..NAMES {
        reg.publish(&node(&format!("node-{n}"), 4, 1));
    }
    let done = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for r in 0..READERS {
        let reg = Arc::clone(&reg);
        let done = Arc::clone(&done);
        handles.push(thread::spawn(move || {
            let gpus = RequirementSet::new().with(Requirement::Architecture("gpu".into()));
            let mut last_epoch = 0;
            let mut reads = 0u64;
            while !done.load(Ordering::Relaxed) {
                let snap = reg.snapshot();
                // Epochs only move forward.
                assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                last_epoch = snap.epoch();
                // Every seeded series stays resolvable, and the resolved
                // platform is internally consistent (the CORES property
                // always matches what that revision published).
                let name = format!("node-{}", reads as usize % NAMES);
                let res = snap.resolve(&name, &VersionReq::Latest).unwrap();
                let p = res.platform.platform();
                let (_, cpu) = p.pu_by_id("cpu").unwrap();
                let cores = cpu.cores().unwrap();
                assert!(cores >= 4, "saw torn revision with CORES={cores}");
                // Versions within a series are strictly ascending.
                let series = snap.series(&name).unwrap();
                let vs = series.versions();
                assert!(vs.windows(2).all(|w| w[0] < w[1]));
                // Selection and diff run lock-free on the same snapshot.
                assert_eq!(snap.select(&gpus).len(), snap.len());
                if vs.len() > 1 {
                    let d = snap
                        .diff(
                            &name,
                            &VersionReq::Exact(vs[0]),
                            &VersionReq::Exact(*vs.last().unwrap()),
                        )
                        .unwrap();
                    assert!(!d.is_empty(), "distinct revisions must diff");
                }
                reads += 1;
                let _ = r;
            }
            assert!(reads > 0);
            reads
        }));
    }

    // Publisher: keep growing every series while readers hammer snapshots.
    for rev in 1..=REVISIONS {
        for n in 0..NAMES {
            reg.publish(&node(&format!("node-{n}"), 4 + rev, 1 + (rev as usize % 3)));
        }
    }
    done.store(true, Ordering::Relaxed);

    let total_reads: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_reads > 0);

    let snap = reg.snapshot();
    assert_eq!(snap.len(), NAMES);
    assert_eq!(snap.epoch(), reg.epoch());
    assert_eq!(snap.total_releases(), NAMES * (1 + REVISIONS as usize));
    for n in 0..NAMES {
        let res = snap
            .resolve(&format!("node-{n}"), &VersionReq::Latest)
            .unwrap();
        let (_, cpu) = res.platform.platform().pu_by_id("cpu").unwrap();
        assert_eq!(cpu.cores(), Some(i64::from(4 + REVISIONS)));
    }
}

#[test]
fn concurrent_publishers_serialize_cleanly() {
    const PUBLISHERS: usize = 4;
    const PER_PUBLISHER: u32 = 8;

    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..PUBLISHERS)
        .map(|p| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                for rev in 0..PER_PUBLISHER {
                    // Each publisher owns one series; all interleave.
                    reg.publish(&node(&format!("pub-{p}"), 4 + rev, 1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = reg.snapshot();
    assert_eq!(snap.len(), PUBLISHERS);
    assert_eq!(snap.total_releases(), PUBLISHERS * PER_PUBLISHER as usize);
    // Every publish was a distinct content: epoch counted each one.
    assert_eq!(reg.epoch(), (PUBLISHERS as u64) * u64::from(PER_PUBLISHER));
    for p in 0..PUBLISHERS {
        let series = snap.series(&format!("pub-{p}")).unwrap();
        assert_eq!(series.releases().len(), PER_PUBLISHER as usize);
        assert_eq!(series.head().version.major as usize, PER_PUBLISHER as usize);
    }
}

#[test]
fn old_snapshots_remain_fully_usable() {
    let reg = Registry::new();
    reg.publish(&node("pinned", 8, 2));
    let pinned = reg.snapshot();
    for rev in 0..10 {
        reg.publish(&node("pinned", 16 + rev, 2));
    }
    // The pinned snapshot still answers every query from its own epoch.
    assert_eq!(pinned.total_releases(), 1);
    let res = pinned.resolve("pinned", &VersionReq::Latest).unwrap();
    assert_eq!(res.version, SemVer::new(1, 0, 0));
    let (_, cpu) = res.platform.platform().pu_by_id("cpu").unwrap();
    assert_eq!(cpu.cores(), Some(8));
    assert_eq!(reg.snapshot().total_releases(), 11);
}
