//! Registry service telemetry: latency histograms for the read path and
//! publish/epoch instruments, resolved once from the process-wide
//! [`hetero_trace::telemetry::global`] registry.
//!
//! The handles live in a `OnceLock` so the instrumented methods on
//! [`crate::Snapshot`] and [`crate::Registry`] pay one pointer load plus
//! a few relaxed atomics per call — the registry structs themselves stay
//! untouched and the instruments survive across registries (they describe
//! the process, not one catalog).

use hetero_trace::telemetry::{self, AtomicHistogram, Counter, Gauge};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Handles for every registry instrument.
#[derive(Debug)]
pub(crate) struct RegistryMetrics {
    /// `Snapshot::resolve` latency (also covers `resolve_str`, which
    /// delegates — instrumenting only the inner call avoids double counts).
    pub resolve_ns: Arc<AtomicHistogram>,
    /// `Snapshot::select` latency.
    pub select_ns: Arc<AtomicHistogram>,
    /// `Snapshot::diff` latency.
    pub diff_ns: Arc<AtomicHistogram>,
    /// Publishes that created a new release.
    pub publishes: Arc<Counter>,
    /// Idempotent republishes of a series head (no epoch advance).
    pub publish_noops: Arc<Counter>,
    /// Highest publish epoch observed process-wide.
    pub epoch: Arc<Gauge>,
}

/// The process-wide registry instruments.
pub(crate) fn metrics() -> &'static RegistryMetrics {
    static METRICS: OnceLock<RegistryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let t = telemetry::global();
        RegistryMetrics {
            resolve_ns: t.histogram("registry_resolve_ns"),
            select_ns: t.histogram("registry_select_ns"),
            diff_ns: t.histogram("registry_diff_ns"),
            publishes: t.counter("registry_publishes_total"),
            publish_noops: t.counter("registry_publish_noops_total"),
            epoch: t.gauge("registry_epoch"),
        }
    })
}

/// Observes the elapsed time since `start` into `hist`.
#[inline]
pub(crate) fn observe_since(hist: &AtomicHistogram, start: Instant) {
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    hist.observe(ns);
}
