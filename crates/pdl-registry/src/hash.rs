//! Content addressing: SHA-256 over the canonical platform encoding.
//!
//! The registry stores every published descriptor revision under a
//! [`ContentHash`] — the SHA-256 digest of the canonical byte encoding
//! produced by [`crate::canon`]. Two documents that differ only in
//! non-semantic presentation (attribute order, surrounding whitespace,
//! layer composition order) canonicalize to the same bytes and therefore
//! share one address, which is what makes interning sound.
//!
//! The implementation is the textbook FIPS 180-4 compression function in
//! safe Rust — the workspace builds offline, so no external digest crate is
//! available.

use std::fmt;

/// A 256-bit content address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash([u8; 32]);

impl ContentHash {
    /// Digest of a byte string.
    pub fn of(bytes: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(bytes);
        ContentHash(h.finish())
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex form, `sha256:`-prefixed (the registry's display and
    /// lookup syntax).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(7 + 64);
        s.push_str("sha256:");
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Short 12-hex-digit prefix, for logs and reports.
    pub fn short(&self) -> String {
        self.to_hex()[7..19].to_string()
    }

    /// Parses the `sha256:<64 hex digits>` form (full digests only).
    pub fn parse(s: &str) -> Option<Self> {
        let hex = s.strip_prefix("sha256:")?;
        if hex.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = (hi * 16 + lo) as u8;
        }
        Some(ContentHash(out))
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContentHash({})", self.short())
    }
}

/// Streaming SHA-256 state (FIPS 180-4).
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hash state.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Pads and produces the digest.
    pub fn finish(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length goes in raw (update would recount it).
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        let add = [a, b, c, d, e, f, g, h];
        for (s, v) in self.state.iter_mut().zip(add) {
            *s = s.wrapping_add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        // FIPS 180-4 / NIST test vectors.
        assert_eq!(
            hex(&{
                let mut h = Sha256::new();
                h.update(b"abc");
                h.finish()
            }),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&Sha256::new().finish()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&{
                let mut h = Sha256::new();
                h.update(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
                h.finish()
            }),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn split_updates_match_single() {
        let data: Vec<u8> = (0..=255u8).cycle().take(517).collect();
        let one = ContentHash::of(&data);
        let mut h = Sha256::new();
        for c in data.chunks(13) {
            h.update(c);
        }
        assert_eq!(one.as_bytes(), &h.finish());
    }

    #[test]
    fn hex_round_trip() {
        let h = ContentHash::of(b"platform");
        let parsed = ContentHash::parse(&h.to_hex()).unwrap();
        assert_eq!(h, parsed);
        assert!(h.to_hex().starts_with("sha256:"));
        assert_eq!(h.short().len(), 12);
        assert!(ContentHash::parse("sha256:abc").is_none());
        assert!(ContentHash::parse("md5:00").is_none());
    }
}
