//! Composable description layers: ISA / microarchitecture / environment.
//!
//! Layered architecture-description languages (VADL's ISA / `MiA` split, the
//! MDA PIM→PSM refinement chain) separate *what the instruction set is*
//! from *how a concrete core implements it* from *what software environment
//! surrounds it*. The registry adopts the same split for platform
//! descriptors: a base structural description (the PU tree and
//! interconnects) is refined by property overlay [`Layer`]s of three
//! [`LayerKind`]s, applied coarsest-first:
//!
//! 1. [`LayerKind::Isa`] — architectural facts (`ARCHITECTURE`, word
//!    width, vector extensions);
//! 2. [`LayerKind::Microarchitecture`] — implementation facts (core
//!    counts, frequencies, peak FLOP/s, cache sizes);
//! 3. [`LayerKind::Environment`] — software/runtime facts (compilers,
//!    runtimes, software platforms).
//!
//! Composition is **order-insensitive by construction**: [`compose`] sorts
//! layers by `(kind, name)` before applying them, so any permutation of
//! the same layer set produces an identical platform — and therefore the
//! same content address. Within one layer, later entries win over earlier
//! ones (a layer is a small ordered patch, not a set).

use pdl_core::platform::{Platform, PlatformBuilder, PuHandle};
use pdl_core::property::Property;
use pdl_core::pu::PuClass;

/// Which refinement level a layer belongs to; determines application order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LayerKind {
    /// Instruction-set / architectural facts (applied first).
    Isa,
    /// Concrete-implementation facts.
    Microarchitecture,
    /// Software/runtime environment facts (applied last).
    Environment,
}

impl LayerKind {
    /// Stable lowercase label used in reports and encodings.
    pub fn label(self) -> &'static str {
        match self {
            LayerKind::Isa => "isa",
            LayerKind::Microarchitecture => "microarchitecture",
            LayerKind::Environment => "environment",
        }
    }
}

/// Which PUs one overlay entry applies to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Target {
    /// A single PU by id.
    Pu(String),
    /// Every member of a logic group.
    Group(String),
    /// Every PU of a class.
    Class(PuClass),
    /// Every PU.
    All,
}

impl Target {
    fn matches(&self, platform: &Platform, pu: &pdl_core::pu::ProcessingUnit) -> bool {
        let _ = platform;
        match self {
            Target::Pu(id) => pu.id.as_str() == id,
            Target::Group(g) => pu.in_group(g),
            Target::Class(c) => pu.class == *c,
            Target::All => true,
        }
    }
}

/// A named property overlay at one refinement level.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Layer name; `(kind, name)` is the canonical composition sort key.
    pub name: String,
    /// Refinement level.
    pub kind: LayerKind,
    entries: Vec<(Target, Property)>,
}

impl Layer {
    /// An empty layer.
    pub fn new(kind: LayerKind, name: impl Into<String>) -> Self {
        Layer {
            name: name.into(),
            kind,
            entries: Vec::new(),
        }
    }

    /// Adds an overlay entry, builder style. Within a layer, later entries
    /// for the same property name win.
    pub fn set(mut self, target: Target, property: Property) -> Self {
        self.entries.push((target, property));
        self
    }

    /// The overlay entries in application order.
    pub fn entries(&self) -> &[(Target, Property)] {
        &self.entries
    }
}

/// Applies a layer set to a base platform, coarsest kind first, then by
/// layer name — so composition is independent of the order `layers` is
/// given in. Each matched property replaces the first same-named property
/// of the PU descriptor (or appends).
pub fn compose(base: &Platform, layers: &[Layer]) -> Platform {
    let mut ordered: Vec<&Layer> = layers.iter().collect();
    ordered.sort_by(|a, b| (a.kind, &a.name).cmp(&(b.kind, &b.name)));

    let mut b = PlatformBuilder::new(base.name.clone());
    b.schema_version(base.schema_version);

    fn copy(
        src: &Platform,
        b: &mut PlatformBuilder,
        ordered: &[&Layer],
        idx: pdl_core::id::PuIdx,
        parent: Option<PuHandle>,
    ) {
        let pu = src.pu(idx);
        let h = match parent {
            None => b.root(pu.id.as_str(), pu.class),
            Some(p) => b
                .child(p, pu.id.as_str(), pu.class)
                .expect("source tree is well-formed"),
        };
        b.quantity(h, pu.quantity);
        let mut desc = pu.descriptor.clone();
        for layer in ordered {
            for (target, prop) in layer.entries() {
                if target.matches(src, pu) {
                    desc.set(prop.clone());
                }
            }
        }
        b.descriptor(h, desc);
        for mr in &pu.memory_regions {
            b.memory(h, mr.clone());
        }
        for g in &pu.groups {
            b.group(h, g.clone());
        }
        for &c in pu.children() {
            copy(src, b, ordered, c, Some(h));
        }
    }
    for &r in base.roots() {
        copy(base, &mut b, &ordered, r, None);
    }
    for ic in base.interconnects() {
        b.interconnect(ic.clone());
    }
    b.build_unchecked()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::content_hash;

    fn base() -> Platform {
        let mut b = Platform::builder("layered");
        let m = b.master("cpu");
        b.prop(m, Property::fixed("ARCHITECTURE", "x86"));
        let w = b.worker(m, "gpu0").unwrap();
        b.prop(w, Property::fixed("ARCHITECTURE", "gpu"));
        b.group(w, "gpus");
        b.build().unwrap()
    }

    fn layers() -> Vec<Layer> {
        vec![
            Layer::new(LayerKind::Environment, "starpu")
                .set(Target::All, Property::fixed("RUNTIME_SYSTEM", "StarPU"))
                .set(
                    Target::Class(PuClass::Master),
                    Property::fixed("COMPILER", "gcc"),
                ),
            Layer::new(LayerKind::Microarchitecture, "nehalem")
                .set(
                    Target::Pu("cpu".into()),
                    Property::fixed("FREQUENCY", "2.66"),
                )
                .set(Target::Group("gpus".into()), Property::fixed("CORES", "15")),
            Layer::new(LayerKind::Isa, "x86-64").set(
                Target::Class(PuClass::Master),
                Property::fixed("WORD_BITS", "64"),
            ),
        ]
    }

    #[test]
    fn composition_applies_overlays() {
        let p = compose(&base(), &layers());
        let (_, cpu) = p.pu_by_id("cpu").unwrap();
        assert_eq!(cpu.descriptor.value("RUNTIME_SYSTEM"), Some("StarPU"));
        assert_eq!(cpu.descriptor.value("COMPILER"), Some("gcc"));
        assert_eq!(cpu.descriptor.value("FREQUENCY"), Some("2.66"));
        assert_eq!(cpu.descriptor.value("WORD_BITS"), Some("64"));
        let (_, gpu) = p.pu_by_id("gpu0").unwrap();
        assert_eq!(gpu.descriptor.value("CORES"), Some("15"));
        assert_eq!(gpu.descriptor.value("COMPILER"), None);
        p.validate().unwrap();
    }

    #[test]
    fn composition_order_does_not_change_address() {
        let ls = layers();
        let fwd = compose(&base(), &ls);
        let mut rev = ls.clone();
        rev.reverse();
        let bwd = compose(&base(), &rev);
        assert_eq!(fwd, bwd);
        assert_eq!(content_hash(&fwd), content_hash(&bwd));
    }

    #[test]
    fn finer_layers_override_coarser_ones() {
        let ls = vec![
            Layer::new(LayerKind::Isa, "generic")
                .set(Target::All, Property::fixed("FREQUENCY", "1.0")),
            Layer::new(LayerKind::Microarchitecture, "tuned")
                .set(Target::All, Property::fixed("FREQUENCY", "3.5")),
        ];
        let p = compose(&base(), &ls);
        let (_, cpu) = p.pu_by_id("cpu").unwrap();
        assert_eq!(cpu.descriptor.value("FREQUENCY"), Some("3.5"));
    }

    #[test]
    fn empty_layer_set_is_identity() {
        let p = compose(&base(), &[]);
        assert_eq!(p, base());
        assert_eq!(content_hash(&p), content_hash(&base()));
    }
}
