//! The registry proper: named release series over interned descriptors,
//! with RCU-style concurrent snapshot reads.
//!
//! # Concurrency model
//!
//! The whole catalog state lives in one immutable [`Snapshot`] behind an
//! `Arc`. Readers call [`Registry::snapshot`] — a sub-microsecond
//! read-lock + `Arc` clone — and then run any number of
//! resolve/select/diff queries against plain immutable data with **no
//! further synchronization at all**; a snapshot is a consistent view of
//! the catalog frozen at one publish epoch, so a request never observes a
//! half-applied publish. Publishers serialize among themselves, build the
//! next snapshot off to the side (structure sharing: series and interned
//! descriptors are `Arc`s, so an incremental publish clones two `BTreeMap`
//! spines, not the catalog), and swap the `Arc` in one short write-locked
//! store. Readers are never blocked for the duration of a publish — only
//! for the pointer swap itself.
//!
//! The [`Registry::epoch`] counter is published through an atomic so
//! cache layers can detect staleness without touching the lock.

use crate::canon::{canonicalize, content_hash};
use crate::hash::ContentHash;
use crate::layers::{compose, Layer};
use crate::semver::{classify, Compatibility, SemVer, VersionReq};
use crate::telemetry::{metrics, observe_since};
use parking_lot::{Mutex, RwLock};
use pdl_core::platform::Platform;
use pdl_query::capability::RequirementSet;
use pdl_query::diff::{diff, Change};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Registry lookup/publish errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No release series under that name.
    UnknownPlatform(String),
    /// The series exists but no release matches the requirement.
    NoMatchingVersion {
        /// Series name.
        name: String,
        /// The requirement that failed to match.
        req: String,
    },
    /// A requirement string failed to parse.
    BadVersionReq(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownPlatform(n) => write!(f, "registry has no platform named {n:?}"),
            RegistryError::NoMatchingVersion { name, req } => {
                write!(f, "no release of {name:?} matches {req:?}")
            }
            RegistryError::BadVersionReq(s) => write!(f, "invalid version requirement {s:?}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// An immutable, content-addressed descriptor as stored in the registry.
///
/// The platform inside is the *canonical* form ([`crate::canon`]), so two
/// interned descriptors are byte-identical iff their hashes are equal.
#[derive(Debug)]
pub struct InternedPlatform {
    hash: ContentHash,
    platform: Platform,
}

impl InternedPlatform {
    /// The content address.
    pub fn hash(&self) -> ContentHash {
        self.hash
    }

    /// The canonicalized platform description.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }
}

/// One release of a named series.
#[derive(Debug, Clone)]
pub struct Release {
    /// Version number within the series.
    pub version: SemVer,
    /// How this release relates to its predecessor; `None` on the first.
    pub compat: Option<Compatibility>,
    /// The interned descriptor content.
    pub platform: Arc<InternedPlatform>,
}

/// The release history of one platform name, ascending by version.
#[derive(Debug, Default)]
pub struct Series {
    releases: Vec<Release>,
}

impl Series {
    /// All releases, oldest first.
    pub fn releases(&self) -> &[Release] {
        &self.releases
    }

    /// The newest release.
    pub fn head(&self) -> &Release {
        self.releases.last().expect("series are never empty")
    }

    /// All version numbers, ascending.
    pub fn versions(&self) -> Vec<SemVer> {
        self.releases.iter().map(|r| r.version).collect()
    }

    /// The release with the exact version.
    pub fn release(&self, v: SemVer) -> Option<&Release> {
        self.releases.iter().find(|r| r.version == v)
    }
}

/// A successfully resolved descriptor reference.
#[derive(Debug, Clone)]
pub struct Resolved {
    /// Series name.
    pub name: String,
    /// Concrete version the requirement resolved to.
    pub version: SemVer,
    /// The interned descriptor (shared, not copied).
    pub platform: Arc<InternedPlatform>,
}

impl Resolved {
    /// `name@version` plus short hash, for logs.
    pub fn pin(&self) -> String {
        format!(
            "{}@{} ({})",
            self.name,
            self.version,
            self.platform.hash().short()
        )
    }
}

/// The outcome of one publish call.
#[derive(Debug, Clone)]
pub struct PublishOutcome {
    /// Series name.
    pub name: String,
    /// Version the content is now available under.
    pub version: SemVer,
    /// Content address of the (canonicalized) descriptor.
    pub hash: ContentHash,
    /// Classification against the previous head, `None` for a first release.
    pub compat: Option<Compatibility>,
    /// `false` when the content was already the series head (idempotent
    /// republish — no new release was created).
    pub created: bool,
}

/// An immutable, consistent view of the whole catalog at one epoch.
#[derive(Debug, Default)]
pub struct Snapshot {
    epoch: u64,
    by_name: BTreeMap<String, Arc<Series>>,
    by_hash: BTreeMap<ContentHash, Arc<InternedPlatform>>,
}

impl Snapshot {
    /// The publish epoch this snapshot was taken at (0 = empty registry).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of release series (named platforms).
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Whether the catalog holds no series.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Total number of releases across all series.
    pub fn total_releases(&self) -> usize {
        self.by_name.values().map(|s| s.releases().len()).sum()
    }

    /// Number of distinct interned descriptors (content addresses).
    pub fn distinct_contents(&self) -> usize {
        self.by_hash.len()
    }

    /// All series names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.by_name.keys().map(String::as_str)
    }

    /// The release series for a name.
    pub fn series(&self, name: &str) -> Option<&Arc<Series>> {
        self.by_name.get(name)
    }

    /// Fetches an interned descriptor by content address.
    pub fn get_by_hash(&self, hash: &ContentHash) -> Option<&Arc<InternedPlatform>> {
        self.by_hash.get(hash)
    }

    /// Resolves `name` at the newest version matching `req`.
    pub fn resolve(&self, name: &str, req: &VersionReq) -> Result<Resolved, RegistryError> {
        let t0 = std::time::Instant::now();
        let result = (|| {
            let series = self
                .by_name
                .get(name)
                .ok_or_else(|| RegistryError::UnknownPlatform(name.to_string()))?;
            let version =
                req.select(&series.versions())
                    .ok_or_else(|| RegistryError::NoMatchingVersion {
                        name: name.to_string(),
                        req: req.to_string(),
                    })?;
            let release = series.release(version).expect("selected from own versions");
            Ok(Resolved {
                name: name.to_string(),
                version,
                platform: Arc::clone(&release.platform),
            })
        })();
        observe_since(&metrics().resolve_ns, t0);
        result
    }

    /// Resolves with a textual requirement (`"latest"`, `"^1.2"`, …).
    pub fn resolve_str(&self, name: &str, req: &str) -> Result<Resolved, RegistryError> {
        let req = VersionReq::parse(req).ok_or_else(|| RegistryError::BadVersionReq(req.into()))?;
        self.resolve(name, &req)
    }

    /// Capability selection: the newest release of every series whose
    /// platform satisfies the requirement set.
    pub fn select(&self, requirements: &RequirementSet) -> Vec<Resolved> {
        let t0 = std::time::Instant::now();
        let result = self
            .by_name
            .iter()
            .filter_map(|(name, series)| {
                let head = series.head();
                requirements
                    .supported_by(head.platform.platform())
                    .then(|| Resolved {
                        name: name.clone(),
                        version: head.version,
                        platform: Arc::clone(&head.platform),
                    })
            })
            .collect();
        observe_since(&metrics().select_ns, t0);
        result
    }

    /// Structural diff between two releases of one series. Descriptors are
    /// stored canonicalized, so presentation differences never show up.
    pub fn diff(
        &self,
        name: &str,
        from: &VersionReq,
        to: &VersionReq,
    ) -> Result<Vec<Change>, RegistryError> {
        let t0 = std::time::Instant::now();
        let result = (|| {
            let a = self.resolve(name, from)?;
            let b = self.resolve(name, to)?;
            if a.platform.hash() == b.platform.hash() {
                return Ok(Vec::new());
            }
            Ok(diff(a.platform.platform(), b.platform.platform()))
        })();
        observe_since(&metrics().diff_ns, t0);
        result
    }

    /// Compatibility verdict between two releases of one series.
    pub fn compatibility(
        &self,
        name: &str,
        from: &VersionReq,
        to: &VersionReq,
    ) -> Result<Compatibility, RegistryError> {
        let a = self.resolve(name, from)?;
        let b = self.resolve(name, to)?;
        let same = a.platform.hash() == b.platform.hash();
        let changes = if same {
            Vec::new()
        } else {
            diff(a.platform.platform(), b.platform.platform())
        };
        Ok(classify(&changes, same))
    }
}

/// The versioned platform-model registry.
///
/// Cheap to share (`Registry` is `Sync`); see the module docs for the
/// concurrency model.
#[derive(Debug, Default)]
pub struct Registry {
    current: RwLock<Arc<Snapshot>>,
    publish_lock: Mutex<()>,
    epoch: AtomicU64,
}

impl Registry {
    /// An empty registry at epoch 0.
    pub fn new() -> Self {
        Registry {
            current: RwLock::new(Arc::new(Snapshot::default())),
            publish_lock: Mutex::new(()),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current publish epoch, without taking the snapshot lock.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Takes a consistent, immutable view of the catalog. All queries on
    /// the returned [`Snapshot`] are synchronization-free.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read())
    }

    /// Publishes a descriptor under its own platform name. The content is
    /// canonicalized, interned by content address, and versioned against
    /// the current series head (see [`crate::semver`] for the bump rules).
    /// Idempotent: republishing the series head returns the existing
    /// release with `created: false` and does not advance the epoch.
    pub fn publish(&self, platform: &Platform) -> PublishOutcome {
        let canonical = canonicalize(platform);
        let hash = content_hash(&canonical);
        let name = canonical.name.clone();

        let _guard = self.publish_lock.lock();
        let prev = self.snapshot();

        if let Some(series) = prev.by_name.get(&name) {
            let head = series.head();
            if head.platform.hash() == hash {
                metrics().publish_noops.inc();
                return PublishOutcome {
                    name,
                    version: head.version,
                    hash,
                    compat: Some(Compatibility::Identical),
                    created: false,
                };
            }
        }

        // Intern (reuse an existing identical content from any series).
        let interned = prev.by_hash.get(&hash).cloned().unwrap_or_else(|| {
            Arc::new(InternedPlatform {
                hash,
                platform: canonical,
            })
        });

        let (version, compat, mut releases) = match prev.by_name.get(&name) {
            Some(series) => {
                let head = series.head();
                let changes = diff(head.platform.platform(), interned.platform());
                let compat = classify(&changes, false);
                (
                    head.version.bumped(compat),
                    Some(compat),
                    series.releases().to_vec(),
                )
            }
            None => (SemVer::INITIAL, None, Vec::new()),
        };
        releases.push(Release {
            version,
            compat,
            platform: Arc::clone(&interned),
        });

        let mut by_name = prev.by_name.clone();
        by_name.insert(name.clone(), Arc::new(Series { releases }));
        let mut by_hash = prev.by_hash.clone();
        by_hash.insert(hash, interned);

        let epoch = prev.epoch + 1;
        let next = Arc::new(Snapshot {
            epoch,
            by_name,
            by_hash,
        });
        *self.current.write() = next;
        self.epoch.store(epoch, Ordering::Release);
        let tel = metrics();
        tel.publishes.inc();
        tel.epoch.raise(epoch);

        PublishOutcome {
            name,
            version,
            hash,
            compat,
            created: true,
        }
    }

    /// Composes `base` with `layers` (order-insensitively) and publishes
    /// the result.
    pub fn publish_composed(&self, base: &Platform, layers: &[Layer]) -> PublishOutcome {
        self.publish(&compose(base, layers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::prelude::*;

    fn plat(name: &str, cores: &str) -> Platform {
        let mut b = Platform::builder(name);
        let m = b.master("cpu");
        b.prop(m, Property::fixed("ARCHITECTURE", "x86"));
        b.prop(m, Property::fixed("CORES", cores));
        let w = b.worker(m, "gpu0").unwrap();
        b.prop(w, Property::fixed("ARCHITECTURE", "gpu"));
        b.interconnect(Interconnect::new("PCIe", "cpu", "gpu0"));
        b.build().unwrap()
    }

    #[test]
    fn first_publish_is_1_0_0() {
        let reg = Registry::new();
        let out = reg.publish(&plat("node", "8"));
        assert_eq!(out.version, SemVer::INITIAL);
        assert_eq!(out.compat, None);
        assert!(out.created);
        assert_eq!(reg.epoch(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.total_releases(), 1);
        let r = snap.resolve("node", &VersionReq::Latest).unwrap();
        assert_eq!(r.version, SemVer::new(1, 0, 0));
        assert_eq!(r.platform.hash(), out.hash);
    }

    #[test]
    fn republish_is_idempotent() {
        let reg = Registry::new();
        reg.publish(&plat("node", "8"));
        let epoch = reg.epoch();
        // Same content, different property order: canonically identical.
        let mut b = Platform::builder("node");
        let m = b.master("cpu");
        b.prop(m, Property::fixed("CORES", "8"));
        b.prop(m, Property::fixed("ARCHITECTURE", "x86"));
        let w = b.worker(m, "gpu0").unwrap();
        b.prop(w, Property::fixed("ARCHITECTURE", "gpu"));
        b.interconnect(Interconnect::new("PCIe", "cpu", "gpu0"));
        let out = reg.publish(&b.build().unwrap());
        assert!(!out.created);
        assert_eq!(out.compat, Some(Compatibility::Identical));
        assert_eq!(reg.epoch(), epoch);
        assert_eq!(reg.snapshot().total_releases(), 1);
    }

    #[test]
    fn value_change_bumps_major() {
        let reg = Registry::new();
        reg.publish(&plat("node", "8"));
        let out = reg.publish(&plat("node", "16"));
        assert_eq!(out.compat, Some(Compatibility::Major));
        assert_eq!(out.version, SemVer::new(2, 0, 0));
        let snap = reg.snapshot();
        // Both releases remain resolvable.
        let v1 = snap.resolve_str("node", "^1").unwrap();
        let v2 = snap.resolve_str("node", "latest").unwrap();
        assert_eq!(v1.version, SemVer::new(1, 0, 0));
        assert_eq!(v2.version, SemVer::new(2, 0, 0));
        assert_eq!(
            v1.platform.platform().pu_by_id("cpu").unwrap().1.cores(),
            Some(8)
        );
        assert_eq!(
            v2.platform.platform().pu_by_id("cpu").unwrap().1.cores(),
            Some(16)
        );
    }

    #[test]
    fn additive_change_bumps_minor() {
        let reg = Registry::new();
        reg.publish(&plat("node", "8"));
        let mut b = Platform::builder("node");
        let m = b.master("cpu");
        b.prop(m, Property::fixed("ARCHITECTURE", "x86"));
        b.prop(m, Property::fixed("CORES", "8"));
        b.prop(m, Property::fixed("VENDOR", "Intel")); // added
        let w = b.worker(m, "gpu0").unwrap();
        b.prop(w, Property::fixed("ARCHITECTURE", "gpu"));
        let w1 = b.worker(m, "gpu1").unwrap(); // added
        b.prop(w1, Property::fixed("ARCHITECTURE", "gpu"));
        b.interconnect(Interconnect::new("PCIe", "cpu", "gpu0"));
        b.interconnect(Interconnect::new("PCIe", "cpu", "gpu1"));
        let out = reg.publish(&b.build().unwrap());
        assert_eq!(out.compat, Some(Compatibility::Minor));
        assert_eq!(out.version, SemVer::new(1, 1, 0));
    }

    #[test]
    fn memory_region_change_is_a_patch() {
        let reg = Registry::new();
        let mut p = plat("node", "8");
        reg.publish(&p);
        // The structural diff does not model MR descriptors; only the
        // content address changes.
        let mut b = Platform::builder("node");
        let m = b.master("cpu");
        b.prop(m, Property::fixed("ARCHITECTURE", "x86"));
        b.prop(m, Property::fixed("CORES", "8"));
        b.memory(
            m,
            MemoryRegion::new("ram").with_descriptor(
                Descriptor::new().with(Property::fixed("SIZE", "24").with_unit(Unit::GibiByte)),
            ),
        );
        let w = b.worker(m, "gpu0").unwrap();
        b.prop(w, Property::fixed("ARCHITECTURE", "gpu"));
        b.interconnect(Interconnect::new("PCIe", "cpu", "gpu0"));
        p = b.build().unwrap();
        let out = reg.publish(&p);
        assert_eq!(out.compat, Some(Compatibility::Patch));
        assert_eq!(out.version, SemVer::new(1, 0, 1));
    }

    #[test]
    fn diff_of_same_release_is_empty() {
        let reg = Registry::new();
        reg.publish(&plat("node", "8"));
        reg.publish(&plat("node", "16"));
        let snap = reg.snapshot();
        let latest = VersionReq::Latest;
        assert!(snap.diff("node", &latest, &latest).unwrap().is_empty());
        let d = snap
            .diff(
                "node",
                &VersionReq::parse("^1").unwrap(),
                &VersionReq::parse("^2").unwrap(),
            )
            .unwrap();
        assert!(!d.is_empty());
        assert_eq!(
            snap.compatibility("node", &latest, &latest).unwrap(),
            Compatibility::Identical
        );
    }

    #[test]
    fn interning_shares_content_across_series() {
        let reg = Registry::new();
        let mut a = plat("a", "8");
        reg.publish(&a);
        a.name = "b".into();
        reg.publish(&a);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        // Names participate in the hash, so these are distinct contents;
        // but republishing identical content under the same name reuses
        // the interned Arc.
        assert_eq!(snap.distinct_contents(), 2);
        let r1 = snap.resolve_str("a", "latest").unwrap();
        let r2 = snap.resolve_str("a", "=1.0.0").unwrap();
        assert!(Arc::ptr_eq(&r1.platform, &r2.platform));
    }

    #[test]
    fn snapshot_isolation_from_later_publishes() {
        let reg = Registry::new();
        reg.publish(&plat("node", "8"));
        let old = reg.snapshot();
        reg.publish(&plat("node", "16"));
        assert_eq!(old.total_releases(), 1);
        assert_eq!(
            old.resolve_str("node", "latest").unwrap().version,
            SemVer::new(1, 0, 0)
        );
        assert_eq!(
            reg.snapshot()
                .resolve_str("node", "latest")
                .unwrap()
                .version,
            SemVer::new(2, 0, 0)
        );
    }

    #[test]
    fn unknown_lookups_error() {
        let reg = Registry::new();
        reg.publish(&plat("node", "8"));
        let snap = reg.snapshot();
        assert!(matches!(
            snap.resolve_str("nope", "latest"),
            Err(RegistryError::UnknownPlatform(_))
        ));
        assert!(matches!(
            snap.resolve_str("node", "^9"),
            Err(RegistryError::NoMatchingVersion { .. })
        ));
        assert!(matches!(
            snap.resolve_str("node", "??"),
            Err(RegistryError::BadVersionReq(_))
        ));
    }

    #[test]
    fn select_by_capability() {
        use pdl_query::capability::Requirement;
        let reg = Registry::new();
        reg.publish(&plat("gpu-node", "8"));
        let mut b = Platform::builder("cpu-node");
        let m = b.master("cpu");
        b.prop(m, Property::fixed("ARCHITECTURE", "x86"));
        reg.publish(&b.build().unwrap());
        let snap = reg.snapshot();
        let gpus = RequirementSet::new().with(Requirement::Architecture("gpu".into()));
        let hits: Vec<String> = snap.select(&gpus).into_iter().map(|r| r.name).collect();
        assert_eq!(hits, ["gpu-node"]);
        let all = snap.select(&RequirementSet::new());
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn telemetry_tracks_reads_and_publishes() {
        // Instruments are process-global, so compare deltas, not totals
        // (other tests in this binary also publish and resolve).
        let tel = metrics();
        let resolves0 = tel.resolve_ns.count();
        let publishes0 = tel.publishes.get();
        let noops0 = tel.publish_noops.get();

        let reg = Registry::new();
        assert!(reg.publish(&plat("tel-node", "8")).created);
        assert!(!reg.publish(&plat("tel-node", "8")).created);
        let snap = reg.snapshot();
        snap.resolve_str("tel-node", "latest").unwrap();
        snap.select(&RequirementSet::new());
        snap.diff("tel-node", &VersionReq::Latest, &VersionReq::Latest)
            .unwrap();

        assert_eq!(tel.publishes.get(), publishes0 + 1);
        assert_eq!(tel.publish_noops.get(), noops0 + 1);
        // resolve_str delegates to resolve; diff resolves twice more.
        assert_eq!(tel.resolve_ns.count(), resolves0 + 3);
        assert!(tel.select_ns.count() >= 1);
        assert!(tel.diff_ns.count() >= 1);
        assert!(tel.epoch.get() >= 1);
    }
}
