//! Canonical platform encoding — the byte form that gets content-hashed.
//!
//! The PDL is XML, and XML admits many spellings of the same description:
//! attribute/property order is arbitrary, values carry incidental
//! whitespace, and composed layers can be listed in any order. The
//! registry must give all those spellings one address, so hashing goes
//! through a *canonical encoding* with the following normalization rules:
//!
//! * **Order independence** — PUs sort by id, properties sort by
//!   `(name, value, unit, fixedness, subschema)`, groups sort
//!   lexicographically, memory regions sort by id, interconnect edges sort
//!   by their own encoded record (bidirectional edges additionally
//!   normalize endpoint order). Duplicates are kept — the encoding is a
//!   sorted multiset, not a set.
//! * **Value normalization** — property values are trimmed; values that
//!   parse as finite numbers are re-rendered through Rust's shortest
//!   round-trip float formatting, so `" 42 "`, `"42"` and `"42.0"` agree.
//!   Units are *not* converted (a value in `MHz` stays distinct from the
//!   equivalent `GHz` value; unit conversion is a lossy judgement call that
//!   does not belong in an address).
//! * **Unambiguous framing** — every string is length-prefixed, so no
//!   separator collision can make two different platforms encode equally.
//!
//! [`canonicalize`] additionally materializes the same ordering as a new
//! [`Platform`] value, which `pdl-query::diff`-based compatibility checks
//! use to avoid reporting presentation differences as changes.

use crate::hash::ContentHash;
use pdl_core::interconnect::{Directionality, Interconnect};
use pdl_core::platform::{Platform, PlatformBuilder, PuHandle};
use pdl_core::property::Property;
use pdl_core::pu::ProcessingUnit;

/// Version tag of the canonical encoding; bump when the rules change, so
/// old and new addresses can never be confused.
pub const CANON_VERSION: &str = "pdl-canon-v1";

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Normalized textual form of a property value: trimmed, numbers
/// re-rendered canonically.
pub fn norm_value(text: &str) -> String {
    let t = text.trim();
    match t.parse::<f64>() {
        Ok(n) if n.is_finite() => {
            // Shortest round-trip rendering collapses "42", " 42 ", "42.0".
            format!("{n}")
        }
        _ => t.to_string(),
    }
}

/// Stable sort key of one property (used both for encoding and for the
/// canonical rebuild).
fn prop_key(p: &Property) -> (String, String, String, bool, String) {
    (
        p.name.clone(),
        norm_value(&p.value.text),
        p.value.unit.map(|u| u.to_string()).unwrap_or_default(),
        p.fixed,
        p.subschema
            .as_ref()
            .map(pdl_core::property::SubschemaRef::qualified)
            .unwrap_or_default(),
    )
}

fn sorted_props(props: impl Iterator<Item = Property>) -> Vec<Property> {
    let mut v: Vec<Property> = props.collect();
    v.sort_by_cached_key(prop_key);
    v
}

fn encode_descriptor(buf: &mut Vec<u8>, props: &[Property]) {
    put_u32(buf, props.len() as u32);
    for p in props {
        let (name, value, unit, fixed, sub) = prop_key(p);
        put_str(buf, &name);
        put_str(buf, &value);
        put_str(buf, &unit);
        buf.push(u8::from(fixed));
        put_str(buf, &sub);
    }
}

fn encode_pu(buf: &mut Vec<u8>, platform: &Platform, pu: &ProcessingUnit) {
    put_str(buf, pu.id.as_str());
    put_str(buf, pu.class.element_name());
    put_u32(buf, pu.quantity);
    let parent = pu
        .parent()
        .map(|i| platform.pu(i).id.as_str().to_string())
        .unwrap_or_default();
    put_str(buf, &parent);

    let mut groups: Vec<&str> = pu
        .groups
        .iter()
        .map(pdl_core::id::GroupId::as_str)
        .collect();
    groups.sort_unstable();
    put_u32(buf, groups.len() as u32);
    for g in groups {
        put_str(buf, g);
    }

    encode_descriptor(buf, &sorted_props(pu.descriptor.iter().cloned()));

    let mut mrs: Vec<_> = pu.memory_regions.clone();
    mrs.sort_by(|a, b| a.id.cmp(&b.id));
    put_u32(buf, mrs.len() as u32);
    for mr in &mrs {
        put_str(buf, mr.id.as_str());
        encode_descriptor(buf, &sorted_props(mr.descriptor.iter().cloned()));
    }
}

fn encode_interconnect(ic: &Interconnect) -> Vec<u8> {
    let mut buf = Vec::new();
    let bidi = ic.directionality == Directionality::Bidirectional;
    let (a, b) = if bidi && ic.to < ic.from {
        (ic.to.as_str(), ic.from.as_str())
    } else {
        (ic.from.as_str(), ic.to.as_str())
    };
    put_str(&mut buf, &ic.ic_type);
    put_str(&mut buf, a);
    put_str(&mut buf, b);
    put_str(&mut buf, &ic.scheme);
    buf.push(u8::from(bidi));
    encode_descriptor(&mut buf, &sorted_props(ic.descriptor.iter().cloned()));
    buf
}

/// The canonical byte encoding of a platform.
pub fn canonical_bytes(platform: &Platform) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1024);
    put_str(&mut buf, CANON_VERSION);
    put_str(&mut buf, &platform.name);
    put_str(&mut buf, &platform.schema_version.to_string());

    let mut pus: Vec<&ProcessingUnit> = platform.iter().map(|(_, pu)| pu).collect();
    pus.sort_by(|a, b| a.id.cmp(&b.id));
    put_u32(&mut buf, pus.len() as u32);
    for pu in pus {
        encode_pu(&mut buf, platform, pu);
    }

    let mut edges: Vec<Vec<u8>> = platform
        .interconnects()
        .iter()
        .map(encode_interconnect)
        .collect();
    edges.sort_unstable();
    put_u32(&mut buf, edges.len() as u32);
    for e in edges {
        buf.extend_from_slice(&e);
    }
    buf
}

/// The content address of a platform: SHA-256 over [`canonical_bytes`].
pub fn content_hash(platform: &Platform) -> ContentHash {
    ContentHash::of(&canonical_bytes(platform))
}

/// Rebuilds the platform in canonical order: descriptors, groups, memory
/// regions and interconnect lists sorted as in the canonical encoding (the
/// PU tree keeps its declaration structure — only per-node payload order
/// and the edge list are normalized).
pub fn canonicalize(platform: &Platform) -> Platform {
    let mut b = PlatformBuilder::new(platform.name.clone());
    b.schema_version(platform.schema_version);

    fn copy(
        src: &Platform,
        b: &mut PlatformBuilder,
        idx: pdl_core::id::PuIdx,
        parent: Option<PuHandle>,
    ) {
        let pu = src.pu(idx);
        let h = match parent {
            None => b.root(pu.id.as_str(), pu.class),
            Some(p) => b
                .child(p, pu.id.as_str(), pu.class)
                .expect("source tree is well-formed"),
        };
        b.quantity(h, pu.quantity);
        b.descriptor(
            h,
            sorted_props(pu.descriptor.iter().cloned())
                .into_iter()
                .collect(),
        );
        let mut mrs = pu.memory_regions.clone();
        mrs.sort_by(|a, b| a.id.cmp(&b.id));
        for mr in mrs {
            let canon = mr.clone().with_descriptor(
                sorted_props(mr.descriptor.iter().cloned())
                    .into_iter()
                    .collect(),
            );
            b.memory(h, canon);
        }
        let mut groups = pu.groups.clone();
        groups.sort();
        for g in groups {
            b.group(h, g);
        }
        for &c in pu.children() {
            copy(src, b, c, Some(h));
        }
    }
    for &r in platform.roots() {
        copy(platform, &mut b, r, None);
    }

    let mut edges: Vec<(Vec<u8>, Interconnect)> = platform
        .interconnects()
        .iter()
        .map(|ic| {
            let mut c = ic.clone();
            if c.directionality == Directionality::Bidirectional && c.to < c.from {
                std::mem::swap(&mut c.from, &mut c.to);
            }
            c.descriptor = sorted_props(c.descriptor.iter().cloned())
                .into_iter()
                .collect();
            (encode_interconnect(&c), c)
        })
        .collect();
    edges.sort_by(|a, b| a.0.cmp(&b.0));
    for (_, ic) in edges {
        b.interconnect(ic);
    }
    b.build_unchecked()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(prop_order_flipped: bool) -> Platform {
        let mut b = Platform::builder("canon-test");
        let m = b.master("cpu");
        if prop_order_flipped {
            b.prop(m, Property::fixed("CORES", " 8 "));
            b.prop(m, Property::fixed("ARCHITECTURE", "x86"));
        } else {
            b.prop(m, Property::fixed("ARCHITECTURE", "x86"));
            b.prop(m, Property::fixed("CORES", "8.0"));
        }
        let w = b.worker(m, "gpu0").unwrap();
        b.prop(w, Property::fixed("ARCHITECTURE", "gpu"));
        b.group(w, "gpus");
        b.interconnect(Interconnect::new("PCIe", "cpu", "gpu0"));
        b.build().unwrap()
    }

    #[test]
    fn property_order_and_whitespace_do_not_change_hash() {
        assert_eq!(content_hash(&sample(false)), content_hash(&sample(true)));
    }

    #[test]
    fn bidirectional_endpoint_order_normalized() {
        let mk = |flip: bool| {
            let mut b = Platform::builder("e");
            let m = b.master("a");
            b.worker(m, "b").unwrap();
            let ic = if flip {
                Interconnect::new("PCIe", "b", "a")
            } else {
                Interconnect::new("PCIe", "a", "b")
            };
            b.interconnect(ic);
            b.build().unwrap()
        };
        assert_eq!(content_hash(&mk(false)), content_hash(&mk(true)));
    }

    #[test]
    fn unidirectional_endpoint_order_is_semantic() {
        let mk = |flip: bool| {
            let mut b = Platform::builder("e");
            let m = b.master("a");
            b.worker(m, "b").unwrap();
            let ic = if flip {
                Interconnect::new("dma", "b", "a")
            } else {
                Interconnect::new("dma", "a", "b")
            };
            b.interconnect(ic.unidirectional());
            b.build_unchecked()
        };
        assert_ne!(content_hash(&mk(false)), content_hash(&mk(true)));
    }

    #[test]
    fn value_changes_change_hash() {
        let a = sample(false);
        let mut b = Platform::builder("canon-test");
        let m = b.master("cpu");
        b.prop(m, Property::fixed("ARCHITECTURE", "arm"));
        b.prop(m, Property::fixed("CORES", "8"));
        let w = b.worker(m, "gpu0").unwrap();
        b.prop(w, Property::fixed("ARCHITECTURE", "gpu"));
        b.group(w, "gpus");
        b.interconnect(Interconnect::new("PCIe", "cpu", "gpu0"));
        let other = b.build().unwrap();
        assert_ne!(content_hash(&a), content_hash(&other));
    }

    #[test]
    fn name_is_part_of_the_address() {
        let a = sample(false);
        let mut renamed = sample(false);
        renamed.name = "other-name".into();
        assert_ne!(content_hash(&a), content_hash(&renamed));
    }

    #[test]
    fn canonicalize_is_idempotent_and_hash_preserving() {
        let p = sample(true);
        let c = canonicalize(&p);
        assert_eq!(content_hash(&p), content_hash(&c));
        let cc = canonicalize(&c);
        assert_eq!(c, cc);
        // Canonical form has sorted properties.
        let (_, cpu) = c.pu_by_id("cpu").unwrap();
        let names: Vec<_> = cpu.descriptor.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["ARCHITECTURE", "CORES"]);
    }

    #[test]
    fn norm_value_rules() {
        assert_eq!(norm_value(" 42 "), "42");
        assert_eq!(norm_value("42.0"), "42");
        assert_eq!(norm_value("1.50"), "1.5");
        assert_eq!(norm_value("  x86  "), "x86");
        assert_eq!(norm_value("NaN"), "NaN"); // non-finite stays textual
    }
}
