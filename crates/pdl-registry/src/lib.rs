//! # pdl-registry — versioned platform-model registry service
//!
//! Turns the platform catalog into a versioned, content-addressed
//! registry with concurrent snapshot reads:
//!
//! * **Content addressing** ([`hash`], [`canon`]) — every published
//!   descriptor is canonicalized (attribute order, whitespace, numeric
//!   rendering, edge direction all normalized) and interned under the
//!   SHA-256 of its canonical byte encoding. Semantically equal documents
//!   share one immutable [`InternedPlatform`].
//! * **Composable layers** ([`layers`]) — ISA / microarchitecture /
//!   environment property overlays refine a base structural description;
//!   composition is order-insensitive, so any permutation of a layer set
//!   produces the same content address.
//! * **Semver-style series** ([`semver`]) — publishes are diffed against
//!   the series head with `pdl-query::diff` and version-bumped by
//!   compatibility class; consumers resolve with requirements such as
//!   `"latest"`, `"^1.2"`, or `"=1.0.0"` and can query diffs and
//!   compatibility verdicts between any two releases.
//! * **Concurrent snapshots** ([`registry`]) — readers grab an immutable
//!   [`Snapshot`] `Arc` and run unlimited resolve/select/diff queries with
//!   no further synchronization while publishers swap in new snapshots
//!   behind their backs (RCU-style; see the module docs for exactly where
//!   the one short lock lives).
//!
//! The service is instrumented through `hetero-trace`'s always-on
//! telemetry: resolve/select/diff latency histograms (`registry_*_ns`),
//! publish counters and the `registry_epoch` gauge are published to
//! [`hetero_trace::telemetry::global`], so any embedding process can
//! scrape tail latencies without turning tracing on.
//!
//! See `docs/REGISTRY.md` for the full design narrative.

pub mod canon;
pub mod hash;
pub mod layers;
pub mod registry;
pub mod semver;
mod telemetry;

pub use canon::{canonical_bytes, canonicalize, content_hash, CANON_VERSION};
pub use hash::ContentHash;
pub use layers::{compose, Layer, LayerKind, Target};
pub use registry::{
    InternedPlatform, PublishOutcome, Registry, RegistryError, Release, Resolved, Series, Snapshot,
};
pub use semver::{classify, Compatibility, SemVer, VersionReq};
