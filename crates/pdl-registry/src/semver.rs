//! Semver-style descriptor versioning and compatibility classification.
//!
//! Every named platform in the registry carries a monotonically growing
//! release series. On publish, the new revision is structurally diffed
//! (via `pdl-query::diff` over canonicalized platforms) against the
//! current head and the version number is bumped by what the diff says:
//!
//! * **major** — something a consumer could already depend on went away or
//!   changed meaning: PU removed, class/parent changed, quantity lowered,
//!   a property value changed or disappeared, interconnect edges removed.
//! * **minor** — purely additive: new PUs, new properties, more
//!   interconnect edges, raised quantities.
//! * **patch** — no structural diff finding, but a different content
//!   address (e.g. memory-region descriptor tweaks, scheme annotations —
//!   facts the structural diff does not model).
//!
//! Identical content addresses never create a new release: publishing is
//! idempotent.

use pdl_query::diff::Change;
use std::fmt;

/// A `major.minor.patch` release number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SemVer {
    /// Incompatible-change counter.
    pub major: u32,
    /// Additive-change counter.
    pub minor: u32,
    /// Sub-structural-change counter.
    pub patch: u32,
}

impl SemVer {
    /// The first release of a series.
    pub const INITIAL: SemVer = SemVer::new(1, 0, 0);

    /// A version literal.
    pub const fn new(major: u32, minor: u32, patch: u32) -> Self {
        SemVer {
            major,
            minor,
            patch,
        }
    }

    /// The next version after applying a change of the given compatibility.
    pub fn bumped(self, compat: Compatibility) -> SemVer {
        match compat {
            Compatibility::Identical => self,
            Compatibility::Patch => SemVer::new(self.major, self.minor, self.patch + 1),
            Compatibility::Minor => SemVer::new(self.major, self.minor + 1, 0),
            Compatibility::Major => SemVer::new(self.major + 1, 0, 0),
        }
    }

    /// Parses `"1"`, `"1.2"` or `"1.2.3"` (missing fields are zero).
    pub fn parse(s: &str) -> Option<Self> {
        let mut it = s.trim().split('.');
        let major = it.next()?.parse().ok()?;
        let minor = match it.next() {
            Some(p) => p.parse().ok()?,
            None => 0,
        };
        let patch = match it.next() {
            Some(p) => p.parse().ok()?,
            None => 0,
        };
        if it.next().is_some() {
            return None;
        }
        Some(SemVer::new(major, minor, patch))
    }
}

impl fmt::Display for SemVer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

/// How a new revision relates to the one before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Compatibility {
    /// Same content address — not a new revision at all.
    Identical,
    /// Different address, empty structural diff.
    Patch,
    /// Purely additive structural changes.
    Minor,
    /// At least one breaking structural change.
    Major,
}

impl Compatibility {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Compatibility::Identical => "identical",
            Compatibility::Patch => "patch",
            Compatibility::Minor => "minor",
            Compatibility::Major => "major",
        }
    }
}

impl fmt::Display for Compatibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether one structural change is backward compatible (additive).
fn is_additive(change: &Change) -> bool {
    match change {
        Change::PuAdded(_) => true,
        Change::PuRemoved(_) => false,
        Change::ClassChanged { .. } | Change::ParentChanged { .. } => false,
        Change::QuantityChanged { old, new, .. } => new > old,
        Change::PropertyChanged { old, new, .. } => old.is_none() && new.is_some(),
        Change::InterconnectChanged { old, new, .. } => new > old,
    }
}

/// Classifies a structural diff (`pdl-query::diff` output) into a
/// compatibility verdict. `hashes_equal` short-circuits to
/// [`Compatibility::Identical`]; an empty diff with distinct hashes is a
/// [`Compatibility::Patch`].
pub fn classify(changes: &[Change], hashes_equal: bool) -> Compatibility {
    if hashes_equal {
        return Compatibility::Identical;
    }
    if changes.is_empty() {
        return Compatibility::Patch;
    }
    if changes.iter().all(is_additive) {
        Compatibility::Minor
    } else {
        Compatibility::Major
    }
}

/// A version requirement, resolved against a release series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VersionReq {
    /// The newest release (`"latest"` / `"*"`).
    Latest,
    /// Exactly one version (`"=1.2.3"`).
    Exact(SemVer),
    /// Newest release with the given major (and optionally minor) —
    /// `"^1"`, `"^1.2"`, or the bare `"1"` / `"1.2"` shorthand.
    Caret {
        /// Required major version.
        major: u32,
        /// Required minor version, if pinned.
        minor: Option<u32>,
    },
    /// Newest release `>=` the given version (`">=1.2.3"`).
    AtLeast(SemVer),
}

impl VersionReq {
    /// Parses the requirement syntax described on the variants.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        match s {
            "" | "*" | "latest" => return Some(VersionReq::Latest),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix(">=") {
            return SemVer::parse(rest).map(VersionReq::AtLeast);
        }
        if let Some(rest) = s.strip_prefix('=') {
            return SemVer::parse(rest).map(VersionReq::Exact);
        }
        let rest = s.strip_prefix('^').unwrap_or(s);
        let mut it = rest.split('.');
        let major = it.next()?.trim().parse().ok()?;
        let minor = match it.next() {
            Some(p) => Some(p.trim().parse().ok()?),
            None => None,
        };
        match it.next() {
            // A full triple means an exact pin unless written with '^'.
            Some(p) => {
                let patch: u32 = p.trim().parse().ok()?;
                let v = SemVer::new(major, minor.unwrap_or(0), patch);
                if s.starts_with('^') {
                    Some(VersionReq::Caret { major, minor })
                } else {
                    Some(VersionReq::Exact(v))
                }
            }
            None => Some(VersionReq::Caret { major, minor }),
        }
    }

    /// Whether a concrete version satisfies this requirement.
    pub fn matches(&self, v: SemVer) -> bool {
        match self {
            VersionReq::Latest => true,
            VersionReq::Exact(want) => v == *want,
            VersionReq::Caret { major, minor } => {
                v.major == *major && minor.map(|m| v.minor == m).unwrap_or(true)
            }
            VersionReq::AtLeast(min) => v >= *min,
        }
    }

    /// Picks the newest matching version out of a sorted-ascending list.
    pub fn select(&self, versions: &[SemVer]) -> Option<SemVer> {
        versions.iter().rev().copied().find(|v| self.matches(*v))
    }
}

impl fmt::Display for VersionReq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionReq::Latest => f.write_str("latest"),
            VersionReq::Exact(v) => write!(f, "={v}"),
            VersionReq::Caret { major, minor } => match minor {
                Some(m) => write!(f, "^{major}.{m}"),
                None => write!(f, "^{major}"),
            },
            VersionReq::AtLeast(v) => write!(f, ">={v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semver_parse_and_order() {
        assert_eq!(SemVer::parse("1.2.3"), Some(SemVer::new(1, 2, 3)));
        assert_eq!(SemVer::parse("2"), Some(SemVer::new(2, 0, 0)));
        assert_eq!(SemVer::parse("2.1"), Some(SemVer::new(2, 1, 0)));
        assert_eq!(SemVer::parse("1.2.3.4"), None);
        assert_eq!(SemVer::parse("x"), None);
        assert!(SemVer::new(2, 0, 0) > SemVer::new(1, 9, 9));
        assert_eq!(SemVer::new(1, 2, 3).to_string(), "1.2.3");
    }

    #[test]
    fn bumps() {
        let v = SemVer::new(1, 2, 3);
        assert_eq!(v.bumped(Compatibility::Identical), v);
        assert_eq!(v.bumped(Compatibility::Patch), SemVer::new(1, 2, 4));
        assert_eq!(v.bumped(Compatibility::Minor), SemVer::new(1, 3, 0));
        assert_eq!(v.bumped(Compatibility::Major), SemVer::new(2, 0, 0));
    }

    #[test]
    fn classification_rules() {
        assert_eq!(classify(&[], true), Compatibility::Identical);
        assert_eq!(classify(&[], false), Compatibility::Patch);
        assert_eq!(
            classify(&[Change::PuAdded("gpu1".into())], false),
            Compatibility::Minor
        );
        assert_eq!(
            classify(
                &[
                    Change::PuAdded("gpu1".into()),
                    Change::PuRemoved("gpu0".into())
                ],
                false
            ),
            Compatibility::Major
        );
        assert_eq!(
            classify(
                &[Change::QuantityChanged {
                    id: "w".into(),
                    old: 4,
                    new: 8
                }],
                false
            ),
            Compatibility::Minor
        );
        assert_eq!(
            classify(
                &[Change::QuantityChanged {
                    id: "w".into(),
                    old: 8,
                    new: 4
                }],
                false
            ),
            Compatibility::Major
        );
        assert_eq!(
            classify(
                &[Change::PropertyChanged {
                    id: "w".into(),
                    property: "CORES".into(),
                    old: None,
                    new: Some("8".into())
                }],
                false
            ),
            Compatibility::Minor
        );
        assert_eq!(
            classify(
                &[Change::PropertyChanged {
                    id: "w".into(),
                    property: "CORES".into(),
                    old: Some("8".into()),
                    new: Some("16".into())
                }],
                false
            ),
            Compatibility::Major
        );
    }

    #[test]
    fn req_parse_and_match() {
        let vs = [
            SemVer::new(1, 0, 0),
            SemVer::new(1, 1, 0),
            SemVer::new(1, 1, 2),
            SemVer::new(2, 0, 0),
        ];
        assert_eq!(
            VersionReq::parse("latest").unwrap().select(&vs),
            Some(SemVer::new(2, 0, 0))
        );
        assert_eq!(
            VersionReq::parse("*").unwrap().select(&vs),
            Some(SemVer::new(2, 0, 0))
        );
        assert_eq!(
            VersionReq::parse("1").unwrap().select(&vs),
            Some(SemVer::new(1, 1, 2))
        );
        assert_eq!(
            VersionReq::parse("^1.0").unwrap().select(&vs),
            Some(SemVer::new(1, 0, 0))
        );
        assert_eq!(
            VersionReq::parse("=1.1.0").unwrap().select(&vs),
            Some(SemVer::new(1, 1, 0))
        );
        assert_eq!(
            VersionReq::parse(">=1.1").unwrap().select(&vs),
            Some(SemVer::new(2, 0, 0))
        );
        assert_eq!(VersionReq::parse("3").unwrap().select(&vs), None);
        assert_eq!(VersionReq::parse("nope"), None);
        assert_eq!(
            VersionReq::parse("1.2.3"),
            Some(VersionReq::Exact(SemVer::new(1, 2, 3)))
        );
        assert_eq!(
            VersionReq::parse("^1.2.3"),
            Some(VersionReq::Caret {
                major: 1,
                minor: Some(2)
            })
        );
    }

    #[test]
    fn req_display_round_trips() {
        for s in ["latest", "=1.2.3", "^1", "^1.2", ">=2.0.0"] {
            let req = VersionReq::parse(s).unwrap();
            assert_eq!(VersionReq::parse(&req.to_string()), Some(req));
        }
    }
}
