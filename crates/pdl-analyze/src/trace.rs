//! Trace-replay checking (`T` codes): did an observed schedule respect the
//! declared task graph?
//!
//! [`check_trace`] consumes a [`RunTrace`] (from the thread engine's trace
//! sink or the virtual-time bridge) plus the [`TaskGraph`] that was
//! submitted, and verifies:
//!
//! * `T001` — the trace satisfies its own structural invariants
//!   ([`RunTrace::validate`]); nothing else is checked on a broken trace.
//! * `T002` — every declared task actually executed.
//! * `T003` — every declared dependency is respected by observed time:
//!   a task may not start before each of its dependencies ended.
//! * `T004` — tasks pinned to an execution group ran on a lane of that
//!   group (silent when the lane declares no group).
//! * `T005` — conflicting data accesses are ordered by the
//!   happens-before relation of the observed schedule, established with
//!   vector clocks over per-lane program order plus time-respected
//!   dependency edges.
//! * `T006` — every transfer lane (group `"links"`, produced by the
//!   virtual-time bridge's pipelined mode) corresponds to an interconnect
//!   the platform actually declares ([`check_trace_links`]).
//! * `T007` — a logic group sat essentially idle while another group was
//!   saturated: the schedule starves hardware the platform description
//!   says is available ([`check_trace_utilization`]).
//!
//! Trace task indices are correlated to graph tasks **by label** when the
//! trace carries a task table (the virtual-time bridge renumbers every span,
//! including transfers), in span-start order for duplicated labels; an
//! index-identical mapping is assumed for label-less traces.

use hetero_rt::data::AccessMode;
use hetero_rt::graph::TaskGraph;
use hetero_trace::RunTrace;
use pdl_core::diag::{Diagnostic, Report};
use std::collections::BTreeMap;

/// Replays a trace against the declared task graph. See the module docs for
/// the codes this can produce.
pub fn check_trace(trace: &RunTrace, graph: &TaskGraph) -> Report {
    let mut out: Vec<Diagnostic> = Vec::new();

    if let Err(e) = trace.validate() {
        out.push(
            Diagnostic::error(
                "T001",
                format!("trace violates its structural invariants: {e}"),
            )
            .with_note(
                "remaining replay checks were skipped — the event stream itself is unreliable",
            ),
        );
        return out.into_iter().collect();
    }

    let mut spans = trace.task_spans();
    spans.sort_by_key(|s| (s.start, s.end, s.worker, s.task));

    // Correlate graph tasks with trace spans.
    let mut graph_span: Vec<Option<usize>> = vec![None; graph.len()];
    if trace.meta.tasks.is_empty() {
        for (si, span) in spans.iter().enumerate() {
            if let Some(slot) = graph_span.get_mut(span.task as usize) {
                slot.get_or_insert(si);
            }
        }
    } else {
        // Label correlation: trace task index → label, label → span queue
        // in start order.
        let mut by_label: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (si, span) in spans.iter().enumerate() {
            if let Some(info) = trace.meta.tasks.get(span.task as usize) {
                by_label.entry(info.label.as_str()).or_default().push(si);
            }
        }
        for queue in by_label.values_mut() {
            queue.reverse(); // pop() yields earliest start first
        }
        for task in &graph.tasks {
            graph_span[task.id.0] = by_label
                .get_mut(task.label.as_str())
                .and_then(std::vec::Vec::pop);
        }
    }

    // T002: declared tasks that never ran.
    for task in &graph.tasks {
        if graph_span[task.id.0].is_none() {
            out.push(
                Diagnostic::error(
                    "T002",
                    format!(
                        "declared task {} (\"{}\") never executed in the trace",
                        task.id, task.label
                    ),
                )
                .with_subject(task.label.clone()),
            );
        }
    }

    // T003: dependency edges must be respected by observed time.
    for task in &graph.tasks {
        let Some(si) = graph_span[task.id.0] else {
            continue;
        };
        for &dep in graph.dependencies(task.id) {
            let Some(di) = graph_span[dep.0] else {
                continue;
            };
            if spans[di].end > spans[si].start {
                out.push(
                    Diagnostic::error(
                        "T003",
                        format!(
                            "task {} (\"{}\") started at {} before its declared dependency {} (\"{}\") finished at {}",
                            task.id,
                            task.label,
                            spans[si].start,
                            dep,
                            graph.tasks[dep.0].label,
                            spans[di].end
                        ),
                    )
                    .with_subject(task.label.clone()),
                );
            }
        }
    }

    // T004: group placement. The declared pin comes from the graph (or the
    // trace's own task table); the lane's group from the trace meta.
    for task in &graph.tasks {
        let Some(si) = graph_span[task.id.0] else {
            continue;
        };
        let declared = task.execution_group.as_deref().or_else(|| {
            trace
                .meta
                .tasks
                .get(spans[si].task as usize)
                .and_then(|info| info.group.as_deref())
        });
        let Some(declared) = declared else { continue };
        let lane_group = trace
            .meta
            .lanes
            .get(spans[si].worker)
            .and_then(|l| l.group.as_deref());
        if let Some(lane_group) = lane_group {
            if lane_group != declared {
                out.push(
                    Diagnostic::error(
                        "T004",
                        format!(
                            "task {} (\"{}\") is pinned to execution group \"{}\" but ran on lane {} of group \"{}\"",
                            task.id,
                            task.label,
                            declared,
                            spans[si].worker,
                            lane_group
                        ),
                    )
                    .with_subject(task.label.clone()),
                );
            }
        }
    }

    // T005: vector-clock race check over ALL spans (transfers included —
    // they strengthen per-lane ordering), with dependency edges between
    // correlated graph tasks that observed time actually respects.
    let clocks = vector_clocks(&spans, graph, &graph_span);
    for a in &graph.tasks {
        let Some(sa) = graph_span[a.id.0] else {
            continue;
        };
        for b in &graph.tasks {
            if b.id.0 <= a.id.0 {
                continue;
            }
            let Some(sb) = graph_span[b.id.0] else {
                continue;
            };
            let Some(handle) = conflict(a, b) else {
                continue;
            };
            let ordered = vc_leq(&clocks[sa], &clocks[sb]) || vc_leq(&clocks[sb], &clocks[sa]);
            if !ordered {
                out.push(
                    Diagnostic::error(
                        "T005",
                        format!(
                            "tasks {} (\"{}\") and {} (\"{}\") both access data handle {} with a write but are unordered in the observed schedule: a data race",
                            a.id, a.label, b.id, b.label, handle
                        ),
                    )
                    .with_subject(a.label.clone()),
                );
            }
        }
    }

    let mut report: Report = out.into_iter().collect();
    report.sort();
    report
}

/// Checks a trace's transfer lanes against the platform declaration.
///
/// The virtual-time bridge names every link lane
/// `"<ic_type>:<from>-<to>"` (with an optional `" #k"` channel suffix) and
/// puts it in the `"links"` group. A transfer shown on a lane whose
/// interconnect the (quantity-expanded) platform does not declare — in
/// either orientation — means the simulated schedule moved data over
/// hardware the description says does not exist: `T006`. Unparseable link
/// lane names are reported under the same code. Traces without link lanes
/// are vacuously clean.
pub fn check_trace_links(trace: &RunTrace, platform: &pdl_core::platform::Platform) -> Report {
    use pdl_core::id::PuId;
    let expanded = platform.expand_quantities();
    let mut out: Vec<Diagnostic> = Vec::new();
    for lane in &trace.meta.lanes {
        if lane.group.as_deref() != Some("links") {
            continue;
        }
        // Strip a channel suffix (`" #2"`) appended when overlapping
        // transfers were split across serialized lanes.
        let base = match lane.name.rsplit_once(" #") {
            Some((base, k)) if k.chars().all(|c| c.is_ascii_digit()) => base,
            _ => lane.name.as_str(),
        };
        let parsed = base.split_once(':').and_then(|(ic_type, endpoints)| {
            endpoints
                .rsplit_once('-')
                .map(|(from, to)| (ic_type, from, to))
        });
        let Some((ic_type, from, to)) = parsed else {
            out.push(
                Diagnostic::error(
                    "T006",
                    format!(
                        "link lane \"{}\" does not name an interconnect (expected \"type:from-to\")",
                        lane.name
                    ),
                )
                .with_subject(lane.name.clone()),
            );
            continue;
        };
        let (a, b) = (PuId::new(from), PuId::new(to));
        let declared = expanded
            .interconnects()
            .iter()
            .any(|ic| ic.ic_type == ic_type && ic.connects(&a, &b));
        if !declared {
            out.push(
                Diagnostic::error(
                    "T006",
                    format!(
                        "trace shows transfers over link \"{}\" but platform \"{}\" declares no {} interconnect between {} and {}",
                        lane.name, expanded.name, ic_type, from, to
                    ),
                )
                .with_note(
                    "the simulated schedule moved data over hardware the description omits — \
                     fix the platform description or the routing",
                )
                .with_subject(lane.name.clone()),
            );
        }
    }
    let mut report: Report = out.into_iter().collect();
    report.sort();
    report
}

/// A group is "idle" below this utilization over the run.
const T007_IDLE_BELOW: f64 = 0.25;
/// A group is "saturated" at or above this utilization over the run.
const T007_SATURATED_ABOVE: f64 = 0.75;

/// Flags logic-group starvation in an observed schedule (`T007`).
///
/// Utilization is per-group busy time over `lanes × wall` (wall = the last
/// span end), from [`hetero_trace::MetricsRegistry`]. A group under
/// 25% while another group runs at 75% or more means the schedule starved
/// hardware the platform description says is available — usually a missing
/// codelet variant, an over-tight pin, or disabled cross-group stealing.
/// Transfer lanes (group `"links"`) are naturally bursty and are skipped.
/// Broken traces (`T001` territory) and single-group traces are vacuously
/// clean.
pub fn check_trace_utilization(trace: &RunTrace) -> Report {
    let mut out: Vec<Diagnostic> = Vec::new();
    if trace.validate().is_err() {
        return out.into_iter().collect();
    }
    let wall = trace.task_spans().iter().map(|s| s.end).max().unwrap_or(0);
    if wall > 0 {
        let metrics = hetero_trace::MetricsRegistry::from_trace(trace);
        let util: Vec<(String, f64)> = metrics
            .group_utilization(trace, wall)
            .into_iter()
            .filter(|(g, _)| g != "links")
            .collect();
        let saturated = util
            .iter()
            .filter(|(_, u)| *u >= T007_SATURATED_ABOVE)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((busy_group, busy_util)) = saturated {
            for (group, u) in &util {
                if *u < T007_IDLE_BELOW {
                    out.push(
                        Diagnostic::warning(
                            "T007",
                            format!(
                                "logic group \"{group}\" was only {:.0}% utilized while group \"{busy_group}\" ran at {:.0}%: the schedule starves available hardware",
                                u * 100.0,
                                busy_util * 100.0
                            ),
                        )
                        .with_note(
                            "add a codelet variant for the idle group, relax the execution-group \
                             pin, or enable cross-group stealing",
                        )
                        .with_subject(group.clone()),
                    );
                }
            }
        }
    }
    let mut report: Report = out.into_iter().collect();
    report.sort();
    report
}

/// Analyzes a standalone exported trace file (the `hetero-trace-run` codec
/// format, `pdl check foo.trace.json`): structural invariants (`T001`),
/// group starvation (`T007`), runtime anomalies (`A001`–`A005`, see
/// [`crate::anomaly`]) and — against each supplied platform — link
/// declarations (`T006`). Graph-dependent checks (`T002`–`T005`) need the
/// submitted [`TaskGraph`] and run through [`check_trace`] instead.
///
/// A lossy trace (ring overflow) still runs the anomaly detectors over
/// its retained window — `A005` reports the loss next to the `T001`.
pub fn analyze_trace_source(
    path: &str,
    contents: &str,
    platforms: &[pdl_core::platform::Platform],
) -> Report {
    let (trace, _deps) = match hetero_trace::codec::parse(contents) {
        Ok(parsed) => parsed,
        Err(e) => {
            return std::iter::once(Diagnostic::error(
                "T001",
                format!("{path}: not a trace document: {e}"),
            ))
            .collect()
        }
    };
    let mut report = Report::default();
    match trace.validate() {
        Ok(_) => {
            report.merge(check_trace_utilization(&trace));
            report.merge(crate::anomaly::check_trace_anomalies(&trace));
        }
        Err(e) => {
            report.push(
                Diagnostic::error(
                    "T001",
                    format!("trace violates its structural invariants: {e}"),
                )
                .with_note(
                    "remaining replay checks were skipped — the event stream itself is unreliable",
                ),
            );
            if matches!(e, hetero_trace::TraceError::Lossy { .. }) {
                report.merge(crate::anomaly::check_trace_anomalies(&trace));
            }
        }
    }
    for platform in platforms {
        report.merge(check_trace_links(&trace, platform));
    }
    report.sort();
    report
}

/// First shared handle two tasks access conflictingly (≥ 1 write).
fn conflict(a: &hetero_rt::task::Task, b: &hetero_rt::task::Task) -> Option<usize> {
    for aa in &a.accesses {
        for ba in &b.accesses {
            if aa.handle == ba.handle
                && (aa.mode != AccessMode::Read || ba.mode != AccessMode::Read)
            {
                return Some(aa.handle.0);
            }
        }
    }
    None
}

/// Computes one vector clock per span. Component space is one slot per lane;
/// a span's clock is the join of its predecessors (previous span on its
/// lane, plus every time-respected declared dependency), then its own lane
/// component is bumped to its per-lane sequence number.
fn vector_clocks(
    spans: &[hetero_trace::TaskSpan],
    graph: &TaskGraph,
    graph_span: &[Option<usize>],
) -> Vec<Vec<u64>> {
    // Lane → dense slot.
    let mut slots: BTreeMap<usize, usize> = BTreeMap::new();
    for span in spans {
        let next = slots.len();
        slots.entry(span.worker).or_insert(next);
    }
    let width = slots.len().max(1);

    // Per-lane predecessor chain and sequence numbers (spans are sorted by
    // start time, so per-lane order is start order).
    let mut prev_on_lane: BTreeMap<usize, usize> = BTreeMap::new();
    let mut lane_pred: Vec<Option<usize>> = vec![None; spans.len()];
    let mut seq: Vec<u64> = vec![0; spans.len()];
    let mut lane_count: BTreeMap<usize, u64> = BTreeMap::new();
    for (si, span) in spans.iter().enumerate() {
        lane_pred[si] = prev_on_lane.insert(span.worker, si);
        let c = lane_count.entry(span.worker).or_insert(0);
        *c += 1;
        seq[si] = *c;
    }

    // Dependency predecessors, per span index of the dependent task.
    let mut dep_preds: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    for task in &graph.tasks {
        let Some(si) = graph_span[task.id.0] else {
            continue;
        };
        for &dep in graph.dependencies(task.id) {
            if let Some(di) = graph_span[dep.0] {
                if spans[di].end <= spans[si].start {
                    dep_preds[si].push(di);
                }
            }
        }
    }

    let mut clocks: Vec<Vec<u64>> = vec![vec![0; width]; spans.len()];
    for si in 0..spans.len() {
        let mut clock = vec![0u64; width];
        let join = |pred: usize, clock: &mut Vec<u64>, clocks: &[Vec<u64>]| {
            for (c, p) in clock.iter_mut().zip(&clocks[pred]) {
                *c = (*c).max(*p);
            }
        };
        if let Some(p) = lane_pred[si] {
            join(p, &mut clock, &clocks);
        }
        for &p in &dep_preds[si] {
            join(p, &mut clock, &clocks);
        }
        clock[slots[&spans[si].worker]] = seq[si];
        clocks[si] = clock;
    }
    clocks
}

fn vc_leq(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_rt::data::AccessMode;
    use hetero_rt::task::{Codelet, DataAccess};
    use hetero_trace::{EventKind, LaneLabel, TaskInfo, TraceEvent, TraceMeta, WorkerTrace};

    /// Two dependent tasks sharing one buffer: `a` writes, `b` reads-writes
    /// after `a` (sequential consistency inserts the edge on submit).
    fn chain_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let c = g.add_codelet(Codelet::new("k"));
        let h = g.register_data("buf", 8.0);
        g.submit(
            c,
            "a",
            1.0,
            vec![DataAccess {
                handle: h,
                mode: AccessMode::Write,
            }],
            None,
        );
        g.submit(
            c,
            "b",
            1.0,
            vec![DataAccess {
                handle: h,
                mode: AccessMode::ReadWrite,
            }],
            None,
        );
        g
    }

    fn meta_for(graph: &TaskGraph, lanes: Vec<LaneLabel>) -> TraceMeta {
        TraceMeta {
            platform: None,
            lanes,
            tasks: graph
                .tasks
                .iter()
                .map(|t| TaskInfo {
                    label: t.label.clone(),
                    category: "task".into(),
                    group: t.execution_group.clone(),
                })
                .collect(),
            time_unit: hetero_trace::TimeUnit::default(),
        }
    }

    fn lane(worker: usize, events: Vec<(u64, EventKind)>) -> WorkerTrace {
        WorkerTrace {
            worker,
            events: events
                .into_iter()
                .map(|(ts, kind)| TraceEvent { ts, kind })
                .collect(),
            overwritten: 0,
        }
    }

    fn start(task: u32) -> EventKind {
        EventKind::TaskStart { task }
    }

    fn end(task: u32) -> EventKind {
        EventKind::TaskEnd { task }
    }

    #[test]
    fn conforming_trace_is_clean() {
        let g = chain_graph();
        let trace = RunTrace {
            meta: meta_for(&g, vec![LaneLabel::default()]),
            prelude: Vec::new(),
            workers: vec![lane(
                0,
                vec![(0, start(0)), (5, end(0)), (6, start(1)), (9, end(1))],
            )],
        };
        let report = check_trace(&trace, &g);
        assert!(report.is_empty(), "{}", report.render());
    }

    #[test]
    fn broken_trace_is_t001_only() {
        let g = chain_graph();
        let trace = RunTrace {
            meta: meta_for(&g, vec![LaneLabel::default()]),
            prelude: Vec::new(),
            // Task 0 never ends: bad nesting.
            workers: vec![lane(0, vec![(0, start(0)), (6, start(1)), (9, end(1))])],
        };
        assert_eq!(check_trace(&trace, &g).codes(), ["T001"]);
    }

    #[test]
    fn missing_task_is_t002() {
        let g = chain_graph();
        let trace = RunTrace {
            meta: meta_for(&g, vec![LaneLabel::default()]),
            prelude: Vec::new(),
            workers: vec![lane(0, vec![(0, start(0)), (5, end(0))])],
        };
        assert_eq!(check_trace(&trace, &g).codes(), ["T002"]);
    }

    #[test]
    fn dependency_violation_is_t003_plus_race() {
        let g = chain_graph();
        // Two lanes, overlapping in time: b starts before a ends, and the
        // conflicting accesses become unordered → T003 and T005.
        let trace = RunTrace {
            meta: meta_for(&g, vec![LaneLabel::default(), LaneLabel::default()]),
            prelude: Vec::new(),
            workers: vec![
                lane(0, vec![(0, start(0)), (5, end(0))]),
                lane(1, vec![(2, start(1)), (7, end(1))]),
            ],
        };
        assert_eq!(check_trace(&trace, &g).codes(), ["T003", "T005"]);
    }

    #[test]
    fn group_violation_is_t004() {
        let mut g = TaskGraph::new();
        let c = g.add_codelet(Codelet::new("k"));
        g.submit(c, "pinned", 1.0, Vec::new(), Some("gpus".into()));
        let trace = RunTrace {
            meta: meta_for(
                &g,
                vec![LaneLabel {
                    name: "cpu0".into(),
                    group: Some("cpus".into()),
                }],
            ),
            prelude: Vec::new(),
            workers: vec![lane(0, vec![(0, start(0)), (5, end(0))])],
        };
        assert_eq!(check_trace(&trace, &g).codes(), ["T004"]);
    }

    #[test]
    fn independent_overlap_is_not_a_race() {
        // Two tasks on disjoint data, overlapping on two lanes: unordered
        // but no conflict → clean.
        let mut g = TaskGraph::new();
        let c = g.add_codelet(Codelet::new("k"));
        let h1 = g.register_data("x", 8.0);
        let h2 = g.register_data("y", 8.0);
        g.submit(
            c,
            "a",
            1.0,
            vec![DataAccess {
                handle: h1,
                mode: AccessMode::Write,
            }],
            None,
        );
        g.submit(
            c,
            "b",
            1.0,
            vec![DataAccess {
                handle: h2,
                mode: AccessMode::Write,
            }],
            None,
        );
        let trace = RunTrace {
            meta: meta_for(&g, vec![LaneLabel::default(), LaneLabel::default()]),
            prelude: Vec::new(),
            workers: vec![
                lane(0, vec![(0, start(0)), (5, end(0))]),
                lane(1, vec![(2, start(1)), (7, end(1))]),
            ],
        };
        let report = check_trace(&trace, &g);
        assert!(report.is_empty(), "{}", report.render());
    }

    fn grouped_trace(busy: &[(&str, &str, u64, u64)]) -> RunTrace {
        // One lane per entry: (pu, group, start, end) of its single task.
        RunTrace {
            meta: TraceMeta {
                platform: None,
                lanes: busy
                    .iter()
                    .map(|(pu, group, _, _)| LaneLabel {
                        name: (*pu).to_string(),
                        group: Some((*group).to_string()),
                    })
                    .collect(),
                tasks: (0..busy.len())
                    .map(|i| TaskInfo {
                        label: format!("t{i}"),
                        category: "task".into(),
                        group: None,
                    })
                    .collect(),
                time_unit: hetero_trace::TimeUnit::default(),
            },
            prelude: Vec::new(),
            workers: busy
                .iter()
                .enumerate()
                .map(|(i, (_, _, s, e))| lane(i, vec![(*s, start(i as u32)), (*e, end(i as u32))]))
                .collect(),
        }
    }

    #[test]
    fn starved_group_is_t007() {
        // cpus saturated for the whole run, gpu0 does 5% and sits idle.
        let trace = grouped_trace(&[
            ("cpu0", "cpus", 0, 1000),
            ("cpu1", "cpus", 0, 1000),
            ("gpu0", "gpus", 0, 50),
        ]);
        let report = check_trace_utilization(&trace);
        assert_eq!(report.codes(), ["T007"]);
        assert!(report.render().contains("\"gpus\""), "{}", report.render());
    }

    #[test]
    fn balanced_groups_are_not_t007() {
        let trace = grouped_trace(&[("cpu0", "cpus", 0, 1000), ("gpu0", "gpus", 100, 900)]);
        assert!(check_trace_utilization(&trace).is_empty());
        // No saturated group either → nothing to blame even if one idles.
        let lazy = grouped_trace(&[("cpu0", "cpus", 0, 500), ("gpu0", "gpus", 900, 1000)]);
        assert!(check_trace_utilization(&lazy).is_empty());
    }

    #[test]
    fn trace_source_analysis_combines_checks() {
        let trace = grouped_trace(&[
            ("cpu0", "cpus", 0, 1000),
            ("cpu1", "cpus", 0, 1000),
            ("gpu0", "gpus", 0, 50),
        ]);
        let text = hetero_trace::codec::export(&trace, &[]);
        let report = pdl_analyze_trace(&text);
        assert_eq!(report.codes(), ["T007"]);
        assert!(super::analyze_trace_source("x.json", "not json", &[])
            .codes()
            .contains(&"T001"));
    }

    fn pdl_analyze_trace(text: &str) -> Report {
        super::analyze_trace_source("t.json", text, &[])
    }

    fn links_trace(lane_names: &[&str]) -> RunTrace {
        RunTrace {
            meta: TraceMeta {
                platform: None,
                lanes: lane_names
                    .iter()
                    .map(|n| LaneLabel {
                        name: (*n).to_string(),
                        group: Some("links".into()),
                    })
                    .collect(),
                tasks: Vec::new(),
                time_unit: hetero_trace::TimeUnit::default(),
            },
            prelude: Vec::new(),
            workers: Vec::new(),
        }
    }

    #[test]
    fn declared_link_lanes_are_clean() {
        let platform = pdl_discover::synthetic::xeon_2gpu_nvlink_testbed();
        // Declared PCIe host links (both orientations), a channel-split
        // lane, and the declared GPU peer link.
        let trace = links_trace(&[
            "PCIe:host-gpu0",
            "PCIe:gpu1-host",
            "PCIe:host-gpu0 #2",
            "NVLink:gpu0-gpu1",
        ]);
        let report = check_trace_links(&trace, &platform);
        assert!(report.is_empty(), "{}", report.render());
    }

    #[test]
    fn undeclared_or_malformed_link_lanes_are_t006() {
        let platform = pdl_discover::synthetic::xeon_2gpu_testbed();
        // No NVLink on the plain testbed; "bogus" parses as no interconnect.
        let trace = links_trace(&["NVLink:gpu0-gpu1", "bogus"]);
        let report = check_trace_links(&trace, &platform);
        assert_eq!(report.codes(), ["T006", "T006"]);
    }

    #[test]
    fn bridged_pipeline_trace_has_only_declared_links() {
        use hetero_rt::prelude::*;
        let platform = pdl_discover::synthetic::xeon_2gpu_nvlink_testbed();
        let machine = simhw::machine::SimMachine::from_platform(&platform);
        let mut g = TaskGraph::new();
        let k = g.add_codelet(
            Codelet::new("k").with_variant(hetero_rt::task::Variant::new("gpu").requiring("Cuda")),
        );
        let h = g.register_data("A", 600e6);
        g.submit(
            k,
            "produce",
            1e10,
            vec![DataAccess {
                handle: h,
                mode: AccessMode::Write,
            }],
            None,
        );
        g.submit(
            k,
            "consume",
            1e10,
            vec![DataAccess {
                handle: h,
                mode: AccessMode::Read,
            }],
            None,
        );
        let report = simulate(
            &g,
            &machine,
            &mut RoundRobinScheduler::default(),
            &SimOptions {
                pipeline: TransferPipeline::full(),
                ..Default::default()
            },
        )
        .expect("simulation runs");
        let trace = sim_report_to_trace(&report, &machine);
        assert!(trace
            .meta
            .lanes
            .iter()
            .any(|l| l.group.as_deref() == Some("links")));
        let links = check_trace_links(&trace, &platform);
        assert!(links.is_empty(), "{}", links.render());
        // The replay checks still pass on the pipelined trace.
        let replay = check_trace(&trace, &g);
        assert!(replay.is_empty(), "{}", replay.render());
    }
}
