//! Command-line driver for the `pdl-analyze` diagnostics engine.
//!
//! ```text
//! pdl-lint [--format human|json] [--platform FILE-or-NAME]... [--expect] FILE...
//! ```
//!
//! Each `FILE` is analyzed according to its extension (`.xml`/`.pdl` as a
//! platform description, `.c`/`.h`/`.cascabel` as an annotated task program).
//! Program files are mapping-checked against every `--platform` (a PDL file
//! path or a builtin platform name such as `xeon_2gpu_testbed`).
//!
//! With `--expect`, each file must carry an `expect:` header naming the exact
//! diagnostic codes it should produce (see `pdl_analyze::expect`); the run
//! fails if any file deviates.  Exit status: 0 clean (or all expectations
//! met), 1 diagnostics with errors (or an expectation mismatch), 2 usage or
//! I/O failure.

use std::process::ExitCode;

use hetero_trace::json::Json;
use pdl_analyze::expect::parse_expectation;
use pdl_analyze::{analyze_source_file, render::report_to_json};
use pdl_core::platform::Platform;
use pdl_discover::catalog::Catalog;

enum Format {
    Human,
    Json,
}

struct Args {
    format: Format,
    platforms: Vec<Platform>,
    expect: bool,
    files: Vec<String>,
}

const USAGE: &str =
    "usage: pdl-lint [--format human|json] [--platform FILE-or-NAME]... [--expect] FILE...";

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("pdl-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(failed) => ExitCode::from(u8::from(failed)),
        Err(msg) => {
            eprintln!("pdl-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        format: Format::Human,
        platforms: Vec::new(),
        expect: false,
        files: Vec::new(),
    };
    let mut argv = argv.peekable();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--format" => {
                let value = argv.next().ok_or("--format needs a value")?;
                args.format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?}")),
                };
            }
            "--platform" => {
                let value = argv.next().ok_or("--platform needs a value")?;
                args.platforms.push(load_platform(&value)?);
            }
            "--expect" => args.expect = true,
            "--help" | "-h" => return Err("help requested".into()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            _ => args.files.push(arg),
        }
    }
    if args.files.is_empty() {
        return Err("no input files".into());
    }
    Ok(args)
}

/// Loads a `--platform` argument: a PDL file path if it exists on disk,
/// otherwise a builtin platform name from the discovery catalog.
fn load_platform(value: &str) -> Result<Platform, String> {
    if std::path::Path::new(value).exists() {
        let xml = std::fs::read_to_string(value).map_err(|e| format!("{value}: {e}"))?;
        pdl_xml::from_xml(&xml).map_err(|e| format!("{value}: {e}"))
    } else {
        Catalog::with_builtin_platforms()
            .get(value)
            .cloned()
            .ok_or_else(|| format!("{value}: not a file and not a builtin platform name"))
    }
}

fn run(args: &Args) -> Result<bool, String> {
    let mut failed = false;
    let mut file_objs: Vec<Json> = Vec::new();
    for path in &args.files {
        let contents = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let expectation = if args.expect {
            Some(
                parse_expectation(&contents)
                    .ok_or_else(|| format!("{path}: --expect set but no expect: header found"))?,
            )
        } else {
            None
        };
        // Fixture-declared platforms override the command-line list.
        let platforms: Vec<Platform> = match &expectation {
            Some(exp) if !exp.platforms.is_empty() => {
                let catalog = Catalog::with_builtin_platforms();
                exp.platforms
                    .iter()
                    .map(|name| {
                        catalog
                            .get(name)
                            .cloned()
                            .ok_or_else(|| format!("{path}: unknown builtin platform {name:?}"))
                    })
                    .collect::<Result<_, _>>()?
            }
            _ => args.platforms.clone(),
        };
        let report = analyze_source_file(path, &contents, &platforms)?;
        match &expectation {
            Some(exp) => {
                let got = report.codes();
                if got != exp.codes {
                    failed = true;
                    eprintln!(
                        "pdl-lint: {path}: expected codes {:?}, got {:?}",
                        exp.codes, got
                    );
                }
            }
            None => failed |= report.has_errors(),
        }
        match args.format {
            Format::Human => {
                if !report.is_empty() {
                    println!("{path}:\n{}", report.render());
                }
            }
            Format::Json => {
                let mut obj = vec![("path".to_string(), Json::str(path.clone()))];
                if let Json::Obj(members) = report_to_json(&report) {
                    obj.extend(members);
                }
                file_objs.push(Json::Obj(obj));
            }
        }
    }
    if matches!(args.format, Format::Json) {
        println!(
            "{}",
            Json::obj([("files", Json::Arr(file_objs))]).to_pretty()
        );
    }
    Ok(failed)
}
