//! JSON rendering of diagnostic reports (the human renderer lives on
//! [`Report`] itself).

use hetero_trace::json::Json;
use pdl_core::diag::{Diagnostic, Report};

/// Converts one diagnostic to a JSON object.
pub fn diagnostic_to_json(d: &Diagnostic) -> Json {
    let mut members: Vec<(String, Json)> = vec![
        ("code".into(), Json::str(d.code)),
        ("severity".into(), Json::str(d.severity.label())),
        ("message".into(), Json::str(d.message.clone())),
    ];
    if let Some(span) = &d.span {
        if let Some(file) = &span.file {
            members.push(("file".into(), Json::str(file.clone())));
        }
        members.push(("line".into(), Json::Num(f64::from(span.line))));
        if span.col > 0 {
            members.push(("col".into(), Json::Num(f64::from(span.col))));
        }
    }
    if let Some(subject) = &d.subject {
        members.push(("subject".into(), Json::str(subject.clone())));
    }
    if !d.notes.is_empty() {
        members.push((
            "notes".into(),
            Json::Arr(d.notes.iter().map(|n| Json::str(n.clone())).collect()),
        ));
    }
    Json::Obj(members)
}

/// Converts a report to a JSON object with diagnostics and counts.
pub fn report_to_json(report: &Report) -> Json {
    Json::Obj(vec![
        ("errors".into(), Json::Num(report.error_count() as f64)),
        ("warnings".into(), Json::Num(report.warning_count() as f64)),
        (
            "diagnostics".into(),
            Json::Arr(report.iter().map(diagnostic_to_json).collect()),
        ),
    ])
}

/// Pretty-printed JSON text of a report.
pub fn render_json(report: &Report) -> String {
    report_to_json(report).to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::diag::Span;

    #[test]
    fn json_round_trips_and_carries_fields() {
        let mut r = Report::new();
        r.push(
            Diagnostic::error("P103", "dangling endpoint")
                .with_span(Span::at(7, 3).in_file("p.xml"))
                .with_subject("gpu9")
                .with_note("did you mean \"gpu0\"?"),
        );
        let text = render_json(&r);
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("errors").and_then(Json::as_u64), Some(1));
        let d = &parsed.get("diagnostics").unwrap().items()[0];
        assert_eq!(d.get("code").and_then(Json::as_str), Some("P103"));
        assert_eq!(d.get("file").and_then(Json::as_str), Some("p.xml"));
        assert_eq!(d.get("line").and_then(Json::as_u64), Some(7));
        assert_eq!(d.get("subject").and_then(Json::as_str), Some("gpu9"));
    }
}
