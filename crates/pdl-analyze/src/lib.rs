//! Static analysis for platform descriptions, annotated task programs and
//! recorded run traces.
//!
//! `pdl-analyze` is the diagnostics engine of this workspace.  It turns the
//! ad-hoc validity checks scattered across the lower crates into a single
//! rustc-style report model ([`Diagnostic`], [`Report`]) with stable codes:
//!
//! * `P0xx`/`P1xx` — platform model and PDL source findings
//!   ([`analyze_platform`], [`analyze_platform_source`]),
//! * `C0xx`/`C1xx` — Cascabel program and mapping findings
//!   ([`analyze_program`], [`analyze_program_source`]),
//! * `T0xx` — trace-replay findings from comparing a recorded
//!   [`hetero_trace::RunTrace`] against the declared task graph
//!   ([`check_trace`]) and its transfer lanes against the declared
//!   platform interconnects ([`check_trace_links`]),
//! * `A0xx` — runtime anomaly findings from a single trace: stragglers,
//!   load imbalance, steal storms, saturated links and lossy trace
//!   windows ([`check_trace_anomalies`]),
//! * `M0xx` — coherence-model findings from exhaustively exploring the
//!   data layer's protocol over bounded platform configurations
//!   ([`check_configs`]), each violation carrying a minimized
//!   counterexample trace.
//!
//! Every code is documented, with a minimal triggering example, in
//! `docs/ANALYSIS.md`.  The `pdl-lint` binary (and `pdl check`) drive all the
//! passes from the command line; [`render_json`] provides machine-readable
//! output for CI.
//!
//! ```
//! let platform = pdl_discover::synthetic::xeon_2gpu_testbed();
//! let report = pdl_analyze::analyze_platform(&platform);
//! assert!(report.is_empty());
//! ```

pub mod anomaly;
pub mod expect;
pub mod model;
pub mod platform;
pub mod program;
pub mod render;
pub mod trace;

pub use pdl_core::diag::{Diagnostic, Report, Severity, Span};

pub use anomaly::{check_trace_anomalies, check_trace_anomalies_with};
pub use model::{bounded_configs, check_configs, model_check_json, violation_to_diagnostic};
pub use platform::{analyze_pinned, analyze_platform, analyze_platform_source};
pub use program::{analyze_program, analyze_program_source};
pub use render::{render_json, report_to_json};
pub use trace::{analyze_trace_source, check_trace, check_trace_links, check_trace_utilization};

use pdl_core::platform::Platform;

/// Analyzes one source file, dispatching on its extension.
///
/// `.xml` and `.pdl` files are treated as platform descriptions; `.c`, `.h`
/// and `.cascabel` files as annotated task programs (which are additionally
/// mapping-checked against each platform in `platforms`); `.json` files as
/// exported run traces (checked structurally, for group starvation, and
/// against each platform's declared links).  Returns `Err` for extensions
/// the analyzer does not understand.
pub fn analyze_source_file(
    path: &str,
    contents: &str,
    platforms: &[Platform],
) -> Result<Report, String> {
    let ext = path.rsplit('.').next().unwrap_or("");
    match ext {
        "xml" | "pdl" => Ok(analyze_platform_source(path, contents).1),
        "c" | "h" | "cascabel" => Ok(analyze_program_source(path, contents, platforms)),
        "json" => Ok(analyze_trace_source(path, contents, platforms)),
        other => Err(format!(
            "{path}: unsupported file extension {other:?} (expected .xml, .pdl, .c, .h, .cascabel or .json)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_recognises_extensions() {
        assert!(analyze_source_file("a.xml", "<platform", &[]).is_ok());
        assert!(analyze_source_file("a.c", "int main() { return 0; }", &[]).is_ok());
        assert!(analyze_source_file("a.txt", "", &[]).is_err());
        // A .json file that is not a trace document still dispatches (and
        // reports T001 rather than erroring out).
        let report = analyze_source_file("a.json", "{}", &[]).unwrap();
        assert_eq!(report.codes(), ["T001"]);
    }
}
