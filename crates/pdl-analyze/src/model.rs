//! Model-checking findings: the `M0xx` diagnostic family.
//!
//! This module drives `hetero-model`'s exhaustive explorer over bounded
//! coherence configurations drawn from real platform descriptions, and
//! renders any invariant violation as a stable M-series [`Diagnostic`]
//! whose notes carry the *minimized* counterexample trace:
//!
//! * `M001` — single-writer broken: a finished write left other copies
//!   valid.
//! * `M002` — lost update: a stale copy is exposed as valid.
//! * `M003` — vanished copy: a handle is valid nowhere.
//! * `M004` — probe/charge drift: the side-effect-free estimate differs
//!   from what commit charged.
//! * `M005` — non-monotone staging: committing transfers removed validity.
//!
//! `pdl model-check` and the `model_check_smoke` CI gate call
//! [`bounded_configs`] + [`check_configs`]; [`model_check_json`] produces
//! the schema-versioned machine-readable report CI archives.

use hetero_model::explore::{explore, Bounds, Exploration, Invariant, Violation};
use hetero_model::model::{Model, Mutation};
use hetero_rt::data::model_topo;
use hetero_trace::json::Json;
use pdl_core::diag::{Diagnostic, Report};
use pdl_discover::synthetic;
use simhw::machine::SimMachine;

/// Version tag of the JSON report emitted by [`model_check_json`]. Bump on
/// any structural change; CI consumers pin against it.
pub const MODEL_CHECK_SCHEMA: &str = "pdl-model-check/1";

/// One bounded configuration the checker explores: a name for reports plus
/// the model (one per-handle topology each, same device set).
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Stable configuration name (platform + handle shapes).
    pub name: String,
    /// The model to explore.
    pub model: Model,
}

/// Result of exploring one configuration.
#[derive(Debug, Clone)]
pub struct ModelCheckOutcome {
    /// Which configuration ran.
    pub config: String,
    /// Reached states, transitions, completeness and any violation.
    pub exploration: Exploration,
}

/// The bounded configurations the smoke gate and `pdl model-check`
/// explore: 3 devices (cpu0 sharing host memory, two `PCIe` GPUs) × 2
/// handles of different sizes, once over the plain `PCIe` testbed and once
/// over its `NVLink` variant (which adds the peer route the
/// `Routing::PeerToPeer` arm needs).
///
/// The topologies are projected from the same synthetic platform
/// descriptions the rest of the test suite uses, through the same
/// `SimMachine` cost model the runtime plans with — so the explored costs
/// are the shipped costs.
pub fn bounded_configs() -> Vec<ModelConfig> {
    let mut configs = Vec::new();
    for (name, platform) in [
        ("xeon-2gpu-pcie", synthetic::xeon_2gpu_testbed()),
        ("xeon-2gpu-nvlink", synthetic::xeon_2gpu_nvlink_testbed()),
    ] {
        let machine = SimMachine::from_platform(&platform);
        let devices: Vec<_> = ["cpu0", "gpu0", "gpu1"]
            .iter()
            .map(|pu| {
                machine
                    .device_by_pu(pu)
                    .unwrap_or_else(|| panic!("synthetic testbed is missing {pu}"))
                    .id
            })
            .collect();
        // Two handles with visibly different sizes: a large datum where
        // transfer choice dominates and a small one where latency does.
        let topos = [600e6, 1e6]
            .iter()
            .map(|&size| model_topo(&machine, name, &devices, size))
            .collect();
        configs.push(ModelConfig {
            name: name.to_string(),
            model: Model::new(topos),
        });
    }
    configs
}

/// Renders one violation as its stable M-series diagnostic, the minimized
/// counterexample trace attached as notes.
pub fn violation_to_diagnostic(config: &str, violation: &Violation) -> Diagnostic {
    let mut d = Diagnostic::error(violation.invariant.code(), violation.detail.clone())
        .with_subject(config.to_string())
        .with_note(format!(
            "invariant `{}` violated in config `{config}`",
            violation.invariant
        ))
        .with_note(format!(
            "minimized counterexample ({} action{}):",
            violation.trace.len(),
            if violation.trace.len() == 1 { "" } else { "s" }
        ));
    for (i, action) in violation.trace.iter().enumerate() {
        d = d.with_note(format!("  {}. {action}", i + 1));
    }
    d
}

/// Explores every configuration under `bounds` (with `mutation` injected,
/// [`Mutation::None`] for the faithful protocol), collecting violations
/// into a report and per-config statistics into outcomes.
pub fn check_configs(
    configs: &[ModelConfig],
    bounds: &Bounds,
    mutation: Mutation,
) -> (Report, Vec<ModelCheckOutcome>) {
    let mut report = Report::new();
    let mut outcomes = Vec::new();
    for config in configs {
        let model = config.model.clone().with_mutation(mutation);
        let exploration = explore(&model, bounds);
        if let Some(v) = &exploration.violation {
            report.push(violation_to_diagnostic(&config.name, v));
        }
        outcomes.push(ModelCheckOutcome {
            config: config.name.clone(),
            exploration,
        });
    }
    (report, outcomes)
}

/// The schema-versioned machine-readable report `pdl model-check --json`
/// writes and CI archives: totals, per-config statistics, per-invariant
/// status and the violation (if any) with its minimized trace.
pub fn model_check_json(outcomes: &[ModelCheckOutcome], elapsed_seconds: f64) -> Json {
    let violations: Vec<(&str, &Violation)> = outcomes
        .iter()
        .filter_map(|o| Some((o.config.as_str(), o.exploration.violation.as_ref()?)))
        .collect();

    let invariants = Invariant::ALL
        .iter()
        .map(|inv| {
            let broken = violations.iter().any(|(_, v)| v.invariant == *inv);
            Json::Obj(vec![
                ("code".into(), Json::str(inv.code())),
                ("name".into(), Json::str(inv.name())),
                (
                    "status".into(),
                    Json::str(if broken { "violated" } else { "ok" }),
                ),
            ])
        })
        .collect();

    let configs = outcomes
        .iter()
        .map(|o| {
            let ex = &o.exploration;
            let mut members = vec![
                ("name".into(), Json::str(o.config.clone())),
                ("states".into(), Json::Num(ex.states as f64)),
                ("transitions".into(), Json::Num(ex.transitions as f64)),
                ("complete".into(), Json::Bool(ex.complete)),
            ];
            members.push(match &ex.violation {
                None => ("violation".into(), Json::Null),
                Some(v) => (
                    "violation".into(),
                    Json::Obj(vec![
                        ("code".into(), Json::str(v.invariant.code())),
                        ("invariant".into(), Json::str(v.invariant.name())),
                        ("detail".into(), Json::str(v.detail.clone())),
                        (
                            "trace".into(),
                            Json::Arr(v.trace.iter().map(|a| Json::str(a.to_string())).collect()),
                        ),
                    ]),
                ),
            });
            Json::Obj(members)
        })
        .collect();

    Json::Obj(vec![
        ("schema".into(), Json::str(MODEL_CHECK_SCHEMA)),
        ("elapsed_seconds".into(), Json::Num(elapsed_seconds)),
        (
            "states".into(),
            Json::Num(outcomes.iter().map(|o| o.exploration.states).sum::<usize>() as f64),
        ),
        (
            "transitions".into(),
            Json::Num(
                outcomes
                    .iter()
                    .map(|o| o.exploration.transitions)
                    .sum::<usize>() as f64,
            ),
        ),
        ("violations".into(), Json::Num(violations.len() as f64)),
        ("invariants".into(), Json::Arr(invariants)),
        ("configs".into(), Json::Arr(configs)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bounds() -> Bounds {
        Bounds {
            max_pending: 1,
            max_states: 1 << 20,
        }
    }

    #[test]
    fn faithful_configs_check_clean() {
        let configs = bounded_configs();
        assert_eq!(configs.len(), 2);
        let (report, outcomes) = check_configs(&configs, &quick_bounds(), Mutation::None);
        assert!(report.is_empty(), "{}", report.render());
        assert!(outcomes.iter().all(|o| o.exploration.complete));
        // The NVLink variant declares a peer route the PCIe one lacks, so
        // their topologies genuinely differ.
        assert!(configs[0].model.topos[0].peer_cost.is_empty());
        assert!(!configs[1].model.topos[0].peer_cost.is_empty());
    }

    #[test]
    fn injected_single_writer_bug_renders_m001() {
        let configs = bounded_configs();
        let (report, outcomes) =
            check_configs(&configs, &quick_bounds(), Mutation::SkipWriteInvalidate);
        assert_eq!(report.codes(), ["M001", "M001"]); // both configs catch it
        let d = report.iter().next().unwrap();
        assert!(d.message.contains("write-invalidate"), "{}", d.message);
        // The notes carry the minimized 2-action counterexample.
        assert!(d.notes.iter().any(|n| n.contains("2 actions")), "{d:?}");
        assert!(d.notes.iter().any(|n| n.contains("acquire")), "{d:?}");
        assert!(d.notes.iter().any(|n| n.contains("finish")), "{d:?}");
        assert!(outcomes[0].exploration.violation.is_some());
    }

    #[test]
    fn json_report_is_schema_versioned_and_complete() {
        let configs = bounded_configs();
        let (_, outcomes) = check_configs(&configs, &quick_bounds(), Mutation::None);
        let text = model_check_json(&outcomes, 1.25).to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(MODEL_CHECK_SCHEMA)
        );
        assert_eq!(parsed.get("violations").and_then(Json::as_u64), Some(0));
        let invs = parsed.get("invariants").unwrap().items();
        assert_eq!(invs.len(), 5);
        assert!(invs
            .iter()
            .all(|i| i.get("status").and_then(Json::as_str) == Some("ok")));
        let cfgs = parsed.get("configs").unwrap().items();
        assert_eq!(cfgs.len(), 2);
        for c in cfgs {
            assert!(c.get("states").and_then(Json::as_u64).unwrap() > 100);
            assert_eq!(c.get("complete"), Some(&Json::Bool(true)));
            assert_eq!(c.get("violation"), Some(&Json::Null));
        }
    }

    #[test]
    fn json_report_carries_violation_trace() {
        let configs = bounded_configs();
        let (_, outcomes) = check_configs(&configs, &quick_bounds(), Mutation::UnderCharge);
        let parsed = Json::parse(&model_check_json(&outcomes, 0.5).to_pretty()).unwrap();
        assert_eq!(parsed.get("violations").and_then(Json::as_u64), Some(2));
        let v = parsed.get("configs").unwrap().items()[0]
            .get("violation")
            .unwrap()
            .clone();
        assert_eq!(v.get("code").and_then(Json::as_str), Some("M004"));
        assert_eq!(v.get("trace").unwrap().items().len(), 1);
    }
}
