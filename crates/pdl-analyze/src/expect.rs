//! Self-annotated fixture expectations.
//!
//! Known-bad fixtures under `examples/bad/` carry their expected diagnostic
//! codes in a comment on one of the first lines of the file:
//!
//! ```text
//! <!-- expect: P001 P101 -->
//! /* expect[platform=xeon_x5550_host]: C005 */
//! // expect: T003 T005
//! ```
//!
//! The optional `[platform=NAME]` bracket (repeatable, comma-separated) names
//! the builtin platforms the program fixture should be mapping-checked
//! against.  `pdl-lint --expect` and the corpus golden tests both parse these
//! headers with [`parse_expectation`].

/// A parsed `expect:` header.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Expectation {
    /// Builtin platform names to map the fixture against (may be empty).
    pub platforms: Vec<String>,
    /// Expected diagnostic codes as a sorted multiset, e.g. `["P001", "P101"]`.
    pub codes: Vec<String>,
}

/// How many leading lines of a fixture are searched for an `expect:` header.
const HEADER_LINES: usize = 3;

/// Parses the `expect:` annotation from a fixture's leading lines.
///
/// Returns `None` when no annotation is present.  The returned code list is
/// sorted so it can be compared directly against [`Report::codes`].
///
/// [`Report::codes`]: pdl_core::diag::Report::codes
pub fn parse_expectation(contents: &str) -> Option<Expectation> {
    for line in contents.lines().take(HEADER_LINES) {
        if let Some(exp) = parse_line(line) {
            return Some(exp);
        }
    }
    None
}

fn parse_line(line: &str) -> Option<Expectation> {
    let at = line.find("expect")?;
    let mut rest = &line[at + "expect".len()..];
    let mut platforms = Vec::new();
    if let Some(tail) = rest.strip_prefix('[') {
        let close = tail.find(']')?;
        for field in tail[..close].split(',') {
            let field = field.trim();
            if let Some(name) = field.strip_prefix("platform=") {
                platforms.push(name.trim().to_string());
            }
        }
        rest = &tail[close + 1..];
    }
    let rest = rest.strip_prefix(':')?;
    let mut codes: Vec<String> = rest
        .split_whitespace()
        .take_while(|tok| !tok.starts_with("--") && !tok.starts_with("*/"))
        .map(str::to_string)
        .collect();
    codes.sort();
    Some(Expectation { platforms, codes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_comment_header_parses() {
        let exp =
            parse_expectation("<?xml version=\"1.0\"?>\n<!-- expect: P101 P001 -->\n").unwrap();
        assert_eq!(exp.codes, vec!["P001", "P101"]);
        assert!(exp.platforms.is_empty());
    }

    #[test]
    fn platform_bracket_and_c_comment_parse() {
        let exp =
            parse_expectation("/* expect[platform=xeon_x5550_host]: C005 */\nint x;").unwrap();
        assert_eq!(exp.platforms, vec!["xeon_x5550_host"]);
        assert_eq!(exp.codes, vec!["C005"]);
    }

    #[test]
    fn missing_header_is_none() {
        assert!(parse_expectation("<platform/>\n<!-- nothing here -->").is_none());
        // Beyond the header window.
        assert!(parse_expectation("a\nb\nc\n<!-- expect: P001 -->").is_none());
    }
}
