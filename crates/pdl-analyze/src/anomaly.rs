//! Runtime anomaly diagnostics (`A` codes): scheduling pathologies
//! detected from a single recorded trace.
//!
//! The detection logic lives in [`hetero_trace::anomaly`]; this module
//! maps its findings onto the workspace's rustc-style report model with
//! stable codes:
//!
//! * `A001` — straggler worker: one lane of a group finishes far later
//!   than the group's median lane, holding the makespan.
//! * `A002` — group load imbalance: one lane of a group carries a large
//!   multiple of the group's mean per-lane busy time.
//! * `A003` — steal storm: a group obtains most of its work by stealing
//!   rather than from its own queues.
//! * `A004` — saturated link: a transfer lane is busy for almost the
//!   entire run window, making the interconnect the bottleneck.
//! * `A005` — lossy trace window: a worker's ring overflowed, so the
//!   lane's analysis only covers the retained suffix of events.
//!
//! All A codes are warnings — they describe *performance* pathologies,
//! not correctness violations (those are the `T` family). Every
//! diagnostic carries the anomaly's timeline span as a note so it can be
//! correlated with the Chrome export or the critical-path profile.

use hetero_trace::anomaly::{detect, Anomaly, AnomalyConfig};
use hetero_trace::RunTrace;
use pdl_core::diag::{Diagnostic, Report};

/// Runs the A-series anomaly detectors with default thresholds.
pub fn check_trace_anomalies(trace: &RunTrace) -> Report {
    check_trace_anomalies_with(trace, &AnomalyConfig::default())
}

/// Runs the A-series anomaly detectors with caller-supplied thresholds.
pub fn check_trace_anomalies_with(trace: &RunTrace, config: &AnomalyConfig) -> Report {
    let mut report: Report = detect(trace, config)
        .into_iter()
        .map(to_diagnostic)
        .collect();
    report.sort();
    report
}

fn to_diagnostic(a: Anomaly) -> Diagnostic {
    Diagnostic::warning(a.code, a.message)
        .with_subject(a.subject)
        .with_note(format!("trace window [{}, {}] ns", a.start_ns, a.end_ns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_trace::{EventKind, LaneLabel, TaskInfo, TraceEvent, TraceMeta, WorkerTrace};

    fn lane_label(name: &str, group: &str) -> LaneLabel {
        LaneLabel {
            name: name.to_string(),
            group: Some(group.to_string()),
        }
    }

    fn span(task: u32, start: u64, end: u64) -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                ts: start,
                kind: EventKind::TaskStart { task },
            },
            TraceEvent {
                ts: end,
                kind: EventKind::TaskEnd { task },
            },
        ]
    }

    fn tasks(n: usize) -> Vec<TaskInfo> {
        (0..n)
            .map(|i| TaskInfo {
                label: format!("t{i}"),
                category: "task".into(),
                group: None,
            })
            .collect()
    }

    #[test]
    fn straggler_trace_reports_a001() {
        let trace = RunTrace {
            meta: TraceMeta {
                platform: None,
                lanes: vec![
                    lane_label("cpu0", "cpus"),
                    lane_label("cpu1", "cpus"),
                    lane_label("cpu2", "cpus"),
                ],
                tasks: tasks(4),
                time_unit: hetero_trace::TimeUnit::default(),
            },
            prelude: Vec::new(),
            workers: vec![
                WorkerTrace {
                    worker: 0,
                    events: span(0, 0, 1000),
                    overwritten: 0,
                },
                WorkerTrace {
                    worker: 1,
                    events: span(1, 0, 1000),
                    overwritten: 0,
                },
                WorkerTrace {
                    worker: 2,
                    events: {
                        let mut e = span(2, 0, 500);
                        e.extend(span(3, 1500, 2000));
                        e
                    },
                    overwritten: 0,
                },
            ],
        };
        let report = check_trace_anomalies(&trace);
        assert_eq!(report.codes(), ["A001"]);
        let rendered = report.render();
        assert!(rendered.contains("cpu2"), "{rendered}");
        assert!(
            rendered.contains("trace window [1000, 2000] ns"),
            "{rendered}"
        );
        // A permissive config silences the finding.
        let relaxed = AnomalyConfig {
            straggler_tail_fraction: 0.9,
            ..AnomalyConfig::default()
        };
        assert!(check_trace_anomalies_with(&trace, &relaxed).is_empty());
    }

    #[test]
    fn lossy_trace_reports_a005() {
        let trace = RunTrace {
            meta: TraceMeta {
                platform: None,
                lanes: vec![lane_label("cpu0", "cpus")],
                tasks: tasks(1),
                time_unit: hetero_trace::TimeUnit::default(),
            },
            prelude: Vec::new(),
            workers: vec![WorkerTrace {
                worker: 0,
                events: span(0, 100, 300),
                overwritten: 9,
            }],
        };
        let report = check_trace_anomalies(&trace);
        assert_eq!(report.codes(), ["A005"]);
        assert!(report.render().contains("9 events"), "{}", report.render());
    }
}
