//! Platform-description analyses (`P` codes).
//!
//! Two entry points:
//!
//! * [`analyze_platform`] — analyzes an already-decoded
//!   [`Platform`] model: the structural rules of
//!   [`pdl_core::validate::check`] (re-coded `P001`–`P013`) plus the deeper
//!   graph and typing analyses (`P1xx`).
//! * [`analyze_platform_source`] — analyzes raw XML text. This path also
//!   reports syntax (`P100`) and schema (`P105`/`P106`/`P12x`) findings
//!   with line/column spans, decodes leniently so one malformed attribute
//!   does not hide every other finding, and attaches source spans to
//!   model-level diagnostics.

use pdl_core::descriptor::Descriptor;
use pdl_core::diag::{Diagnostic, Report, Span};
use pdl_core::platform::Platform;
use pdl_core::pu::PuClass;
use pdl_xml::dom::Document;
use pdl_xml::{Pos, SchemaError, SchemaRegistry, XmlError};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Analyzes a decoded platform model.
///
/// Runs every structural rule of [`pdl_core::validate::check`] (except
/// `P008`, whose endpoint resolution is re-derived here with memory-region
/// awareness as `P103`/`P104`) plus the `P1xx` analyses: control-cycle
/// detection, Master-reachability, interconnect endpoint resolution,
/// subschema property typing and group-name hygiene.
pub fn analyze_platform(platform: &Platform) -> Report {
    finish(model_diagnostics(platform, true), None, None)
}

/// Analyzes a platform resolved from a registry snapshot at a pinned
/// version requirement (`"latest"`, `"^1.2"`, `"=1.0.0"`, …).
///
/// Returns the resolved pin string (`name@version (hash)`) alongside the
/// report, so lint results can be attributed to one immutable descriptor
/// revision rather than to whatever the name happens to point at later.
pub fn analyze_pinned(
    snapshot: &pdl_registry::Snapshot,
    name: &str,
    req: &str,
) -> Result<(String, Report), pdl_registry::RegistryError> {
    let resolved = snapshot.resolve_str(name, req)?;
    let report = analyze_platform(resolved.platform.platform());
    Ok((resolved.pin(), report))
}

/// Analyzes PDL XML source text.
///
/// Returns the decoded platform (when the text was decodable at all,
/// however invalid) alongside the report. `file` is recorded in every span.
pub fn analyze_platform_source(file: &str, xml: &str) -> (Option<Platform>, Report) {
    let mut diags = Vec::new();
    let doc = match pdl_xml::parse_document(xml) {
        Ok(doc) => doc,
        Err(e) => {
            diags.push(
                Diagnostic::error("P100", e.to_string()).with_span(span_at(e.pos).in_file(file)),
            );
            return (None, finish(diags, None, None));
        }
    };

    let registry = SchemaRegistry::with_builtins();
    for (err, pos) in registry.validate_at(&doc) {
        diags.push(schema_diagnostic(&err, Some(pos), file));
    }
    dom_checks(&doc, file, &mut diags);

    match pdl_xml::decode_unchecked(&doc) {
        Ok(platform) => {
            // The schema pass above already typed subschema properties (with
            // positions), so the model-level typing pass is skipped here to
            // avoid reporting the same finding twice.
            diags.extend(model_diagnostics(&platform, false));
            let report = finish(diags, Some(&doc), Some(file));
            (Some(platform), report)
        }
        Err(e) => {
            diags.push(xml_error_diagnostic(&e, file));
            (None, finish(diags, Some(&doc), Some(file)))
        }
    }
}

/// Maps an [`XmlError`] onto a diagnostic (used when even lenient decoding
/// gives up).
fn xml_error_diagnostic(err: &XmlError, file: &str) -> Diagnostic {
    match err {
        XmlError::Syntax(s) => {
            Diagnostic::error("P100", s.to_string()).with_span(span_at(s.pos).in_file(file))
        }
        XmlError::Schema(s) => schema_diagnostic(s, None, file),
        XmlError::Model(m) => Diagnostic::error(
            "P199",
            format!("platform model could not be constructed: {m}"),
        ),
    }
}

/// Stable code for each schema-validation error class.
fn schema_code(err: &SchemaError) -> &'static str {
    match err {
        SchemaError::UnexpectedElement { .. } => "P120",
        SchemaError::MissingAttribute { .. } => "P121",
        SchemaError::UnknownSubschema(_) => "P105",
        SchemaError::UnknownSubschemaProperty { .. } => "P106",
        SchemaError::IncompatibleVersion { .. } => "P123",
        SchemaError::BadAttributeValue { .. } => "P124",
    }
}

fn schema_diagnostic(err: &SchemaError, pos: Option<Pos>, file: &str) -> Diagnostic {
    let mut d = Diagnostic::error(schema_code(err), err.to_string());
    if let Some(pos) = pos {
        d = d.with_span(span_at(pos).in_file(file));
    }
    d
}

fn span_at(pos: Pos) -> Span {
    Span::at(pos.line, pos.col)
}

/// DOM-level structural checks the lenient decoder cannot represent in the
/// arena: a Worker element containing PU children (`P004`, with the span of
/// the offending child — the arena model simply skips such subtrees).
fn dom_checks(doc: &Document, file: &str, out: &mut Vec<Diagnostic>) {
    for e in doc.root.descendants() {
        if e.local_name() != "Worker" {
            continue;
        }
        for child in e.elements() {
            if matches!(child.local_name(), "Master" | "Hybrid" | "Worker") {
                out.push(
                    Diagnostic::error(
                        "P004",
                        format!(
                            "Worker \"{}\" controls child processing unit \"{}\" (Workers are leaves, paper §III-A)",
                            e.attribute("id").unwrap_or("?"),
                            child.attribute("id").unwrap_or("?"),
                        ),
                    )
                    .with_span(span_at(child.pos).in_file(file)),
                );
            }
        }
    }
}

/// All model-level diagnostics for a platform. `typed_props` enables the
/// subschema typing pass (`P105`/`P106`), which the XML source path skips
/// because its schema pass already covers it with positions.
fn model_diagnostics(platform: &Platform, typed_props: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for d in pdl_core::validate::diagnostics(platform).iter() {
        // Endpoint resolution is re-derived below (P103/P104) with
        // memory-region awareness; drop the coarser core finding.
        if d.code != "P008" {
            out.push(d.clone());
        }
    }
    control_cycles(platform, &mut out);
    master_reachability(platform, &mut out);
    endpoint_resolution(platform, &mut out);
    group_name_hygiene(platform, &mut out);
    if typed_props {
        subschema_typing(platform, &mut out);
    }
    out
}

/// `P101`: cycles in the id-level control graph. The arena itself is a
/// forest, but tools resolve control relationships *by id*; duplicated ids
/// merge nodes and can close a cycle no id-based traversal terminates on.
fn control_cycles(platform: &Platform, out: &mut Vec<Diagnostic>) {
    let mut succ: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (_, pu) in platform.iter() {
        let entry = succ.entry(pu.id.to_string()).or_default();
        for &c in pu.children() {
            entry.insert(platform.pu(c).id.to_string());
        }
    }
    let mut color: BTreeMap<&str, u8> = BTreeMap::new();
    let mut stack: Vec<&str> = Vec::new();
    let mut cycles: Vec<Vec<String>> = Vec::new();
    for id in succ.keys() {
        if color.get(id.as_str()).copied().unwrap_or(0) == 0 {
            dfs_cycles(id, &succ, &mut color, &mut stack, &mut cycles);
        }
    }
    for cycle in cycles {
        out.push(
            Diagnostic::error(
                "P101",
                format!(
                    "control relationships form a cycle: {}",
                    cycle.join(" -> ")
                ),
            )
            .with_subject(cycle[0].clone())
            .with_note(
                "a cycle can only arise from duplicated PU ids; id-based traversals never terminate on it",
            ),
        );
    }
}

fn dfs_cycles<'a>(
    node: &'a str,
    succ: &'a BTreeMap<String, BTreeSet<String>>,
    color: &mut BTreeMap<&'a str, u8>,
    stack: &mut Vec<&'a str>,
    cycles: &mut Vec<Vec<String>>,
) {
    color.insert(node, 1);
    stack.push(node);
    if let Some(next) = succ.get(node) {
        for n in next {
            match color.get(n.as_str()).copied().unwrap_or(0) {
                0 => dfs_cycles(n, succ, color, stack, cycles),
                1 => {
                    let start = stack.iter().position(|s| *s == n.as_str()).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[start..].iter().map(|s| (*s).to_string()).collect();
                    cycle.push(n.clone());
                    cycles.push(cycle);
                }
                _ => {}
            }
        }
    }
    stack.pop();
    color.insert(node, 2);
}

/// `P102`: PUs no Master can delegate work to. BFS over control edges from
/// every top-level Master; a PU with `quantity="0"` exists zero times, so
/// control does not flow *through* it to its children.
fn master_reachability(platform: &Platform, out: &mut Vec<Diagnostic>) {
    let mut reached = vec![false; platform.len()];
    let mut queue: VecDeque<_> = VecDeque::new();
    for &root in platform.roots() {
        if platform.pu(root).class == PuClass::Master {
            reached[root.index()] = true;
            queue.push_back(root);
        }
    }
    while let Some(i) = queue.pop_front() {
        let pu = platform.pu(i);
        if pu.quantity == 0 {
            continue; // zero physical units: controls nothing
        }
        for &c in pu.children() {
            if !reached[c.index()] {
                reached[c.index()] = true;
                queue.push_back(c);
            }
        }
    }
    for (i, pu) in platform.iter() {
        if !reached[i.index()] {
            out.push(
                Diagnostic::error(
                    "P102",
                    format!(
                        "processing unit \"{}\" is unreachable from any Master: no control path can delegate work to it",
                        pu.id
                    ),
                )
                .with_subject(pu.id.as_str()),
            );
        }
    }
}

/// `P103`/`P104`: interconnect endpoint resolution. An endpoint must name a
/// processing unit; naming a memory region is flagged as a warning
/// (`P104`), anything else as an error with a did-you-mean note (`P103`).
fn endpoint_resolution(platform: &Platform, out: &mut Vec<Diagnostic>) {
    let pu_ids: BTreeSet<&str> = platform.iter().map(|(_, pu)| pu.id.as_str()).collect();
    let mr_ids: BTreeSet<&str> = platform
        .iter()
        .flat_map(|(_, pu)| pu.memory_regions.iter().map(|m| m.id.as_str()))
        .collect();
    for ic in platform.interconnects() {
        for end in [&ic.from, &ic.to] {
            let id = end.as_str();
            if pu_ids.contains(id) {
                continue;
            }
            if mr_ids.contains(id) {
                out.push(
                    Diagnostic::warning(
                        "P104",
                        format!(
                            "interconnect endpoint \"{id}\" names a memory region; interconnects join processing units — route to the region's owning PU instead"
                        ),
                    )
                    .with_subject(id),
                );
            } else {
                let mut d = Diagnostic::error(
                    "P103",
                    format!(
                        "interconnect endpoint \"{id}\" matches no processing unit or memory region"
                    ),
                )
                .with_subject(id);
                if let Some(suggestion) = closest_id(id, pu_ids.iter().copied()) {
                    d = d.with_note(format!("did you mean \"{suggestion}\"?"));
                }
                out.push(d);
            }
        }
    }
}

/// The known id closest to `id` (edit distance ≤ 2), for did-you-mean notes.
fn closest_id<'a>(id: &str, known: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    known
        .map(|k| (edit_distance(id, k), k))
        .filter(|(d, _)| *d <= 2)
        .min()
        .map(|(_, k)| k)
}

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// `P107`: logic-group names that group set-expressions cannot reference
/// (anything outside `[A-Za-z0-9_.]` is an expression operator or
/// whitespace to the resolver).
fn group_name_hygiene(platform: &Platform, out: &mut Vec<Diagnostic>) {
    for (name, members) in platform.groups() {
        if name.as_str().is_empty() {
            continue; // P011 already covers empty names
        }
        if name
            .as_str()
            .chars()
            .any(|c| !(c.is_alphanumeric() || c == '_' || c == '.'))
        {
            let mut d = Diagnostic::warning(
                "P107",
                format!(
                    "logic group \"{name}\" cannot be referenced from group set-expressions (name contains characters outside [A-Za-z0-9_.])"
                ),
            );
            if let Some(&first) = members.first() {
                d = d.with_subject(platform.pu(first).id.as_str());
            }
            out.push(d);
        }
    }
}

/// `P105`/`P106`: model-level subschema property typing, for platforms that
/// never went through XML (discovered or hand-built models).
fn subschema_typing(platform: &Platform, out: &mut Vec<Diagnostic>) {
    let registry = SchemaRegistry::with_builtins();
    for (_, pu) in platform.iter() {
        typed_descriptor(&registry, &pu.descriptor, pu.id.as_str(), out);
        for mr in &pu.memory_regions {
            typed_descriptor(&registry, &mr.descriptor, pu.id.as_str(), out);
        }
    }
    for ic in platform.interconnects() {
        typed_descriptor(&registry, &ic.descriptor, ic.from.as_str(), out);
    }
}

fn typed_descriptor(
    registry: &SchemaRegistry,
    descriptor: &Descriptor,
    subject: &str,
    out: &mut Vec<Diagnostic>,
) {
    for prop in descriptor.iter() {
        let Some(sref) = &prop.subschema else {
            continue;
        };
        match registry.subschema(&sref.namespace) {
            None => out.push(
                Diagnostic::error(
                    "P105",
                    format!(
                        "property \"{}\" declares type {} of an unregistered subschema \"{}\"",
                        prop.name,
                        sref.qualified(),
                        sref.namespace
                    ),
                )
                .with_subject(subject),
            ),
            Some(sub) if sub.property_type(&sref.type_name).is_none() => out.push(
                Diagnostic::error(
                    "P105",
                    format!(
                        "subschema \"{}\" declares no property type \"{}\"",
                        sref.namespace, sref.type_name
                    ),
                )
                .with_subject(subject),
            ),
            Some(sub) if !sub.type_accepts(&sref.type_name, &prop.name) => out.push(
                Diagnostic::error(
                    "P106",
                    format!(
                        "property \"{}\" is not declared by type {}",
                        prop.name,
                        sref.qualified()
                    ),
                )
                .with_subject(subject),
            ),
            Some(_) => {}
        }
    }
}

/// Attaches source spans (by PU-id subject lookup in the DOM) and returns
/// the sorted report.
fn finish(mut diags: Vec<Diagnostic>, doc: Option<&Document>, file: Option<&str>) -> Report {
    if let Some(doc) = doc {
        for d in &mut diags {
            if d.span.is_none() {
                if let Some(pos) = d.subject.as_ref().and_then(|s| doc.root.pos_of_pu(s)) {
                    let mut span = span_at(pos);
                    if let Some(file) = file {
                        span = span.in_file(file);
                    }
                    d.span = Some(span);
                }
            }
        }
    }
    let mut report: Report = diags.into_iter().collect();
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_synthetic_platforms_have_no_findings() {
        for platform in [
            pdl_discover::synthetic::xeon_x5550_host(),
            pdl_discover::synthetic::xeon_2gpu_testbed(),
            pdl_discover::synthetic::cell_be(),
            pdl_discover::synthetic::gpgpu_cluster(2, 2),
            pdl_discover::synthetic::numa_host(2, 4),
        ] {
            let report = analyze_platform(&platform);
            assert!(report.is_empty(), "{}: {}", platform.name, report.render());
        }
    }

    #[test]
    fn pinned_analysis_resolves_through_the_registry() {
        let reg = pdl_discover::catalog::builtin_registry();
        let snap = reg.snapshot();
        let (pin, report) = analyze_pinned(&snap, "cell-be", "^1").unwrap();
        assert!(pin.starts_with("cell-be@1.0.0"));
        assert!(report.is_empty(), "{}", report.render());
        assert!(matches!(
            analyze_pinned(&snap, "cell-be", "^9"),
            Err(pdl_registry::RegistryError::NoMatchingVersion { .. })
        ));
    }

    #[test]
    fn syntax_error_is_p100_with_span() {
        let (platform, report) = analyze_platform_source("t.xml", "<Master id=\"m\"");
        assert!(platform.is_none());
        assert_eq!(report.codes(), ["P100"]);
        let span = report.iter().next().unwrap().span.clone().unwrap();
        assert_eq!(span.file.as_deref(), Some("t.xml"));
    }

    #[test]
    fn duplicate_id_cycle_is_p001_and_p101() {
        let xml = r#"<Master id="a" quantity="1">
  <Hybrid id="b" quantity="1">
    <Hybrid id="a" quantity="1"/>
  </Hybrid>
</Master>"#;
        let (platform, report) = analyze_platform_source("cycle.xml", xml);
        assert!(platform.is_some());
        assert_eq!(report.codes(), ["P001", "P101"]);
    }

    #[test]
    fn zero_quantity_hybrid_orphans_children() {
        let xml = r#"<Master id="m" quantity="1">
  <Hybrid id="h" quantity="0">
    <Worker id="w" quantity="4"/>
  </Hybrid>
</Master>"#;
        let (_, report) = analyze_platform_source("unreach.xml", xml);
        assert_eq!(report.codes(), ["P007", "P102"]);
        // The unreachable worker's diagnostic points at its element.
        let p102 = report.iter().find(|d| d.code == "P102").unwrap();
        assert_eq!(p102.span.as_ref().unwrap().line, 3);
    }

    #[test]
    fn endpoint_resolution_distinguishes_regions_and_typos() {
        let mut b = Platform::builder("t");
        let m = b.master("cpu");
        b.worker(m, "gpu0").unwrap();
        let report = analyze_platform(&b.build().unwrap());
        assert!(report.is_empty());

        let xml = r#"<Platform schemaVersion="1.0">
  <Master id="cpu" quantity="1">
    <MemoryRegion id="ram"/>
    <Worker id="gpu0" quantity="1"/>
  </Master>
  <Interconnect type="PCIe" from="cpu" to="ram"/>
  <Interconnect type="PCIe" from="cpu" to="gpu1"/>
</Platform>"#;
        let (_, report) = analyze_platform_source("ic.xml", xml);
        assert_eq!(report.codes(), ["P103", "P104"]);
        let p103 = report.iter().find(|d| d.code == "P103").unwrap();
        assert!(p103.notes[0].contains("gpu0"), "{:?}", p103.notes);
    }

    #[test]
    fn worker_children_flagged_on_the_dom() {
        let xml =
            "<Worker id=\"w\" quantity=\"1\">\n  <Worker id=\"x\" quantity=\"1\"/>\n</Worker>";
        let (_, report) = analyze_platform_source("s.xml", xml);
        assert!(report.codes().contains(&"P004"), "{}", report.render());
    }
}
