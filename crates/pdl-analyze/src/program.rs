//! Cascabel program and mapping analyses (`C` codes).
//!
//! Works on the annotated-C AST ([`cascabel::ast::Program`]) and, when
//! platforms are supplied, replays the compiler's pre-selection and
//! execution-group mapping stages to surface their failures as positioned
//! diagnostics instead of hard compile errors.

use cascabel::ast::{Program, TaskCall, TaskFunction};
use cascabel::mapping::{map_call, MappingError};
use cascabel::parse::{parse_program, ParseError};
use cascabel::preselect::{preselect, InterfaceSelection};
use cascabel::repository::{ImplOrigin, TaskRepository};
use hetero_rt::data::AccessMode;
use pdl_core::diag::{Diagnostic, Report, Span};
use pdl_core::platform::Platform;
use std::collections::{BTreeMap, BTreeSet};

/// Analyzes annotated C source text. Parse failures surface as `C100`; a
/// parseable program continues into [`analyze_program`]. `file` is recorded
/// in every span.
pub fn analyze_program_source(file: &str, src: &str, platforms: &[Platform]) -> Report {
    match parse_program(src) {
        Ok(program) => {
            let mut report: Report = analyze(&program, platforms, Some(file))
                .into_iter()
                .collect();
            report.sort();
            report
        }
        Err(e) => {
            let (line, message) = match &e {
                ParseError::Lex(l) => (Some(l.line), l.to_string()),
                ParseError::Pragma(p) => (None, p.to_string()),
                ParseError::Structure { line, message } => (Some(*line), message.clone()),
            };
            let mut d = Diagnostic::error("C100", message);
            if let Some(line) = line {
                d = d.with_span(Span::at(line, 0).in_file(file));
            }
            [d].into_iter().collect()
        }
    }
}

/// Analyzes a parsed program against zero or more target platforms.
///
/// Platform-independent checks (`C001`–`C004`, `C008`–`C010`) always run;
/// pre-selection and mapping replay (`C005`–`C007`) need at least one
/// platform.
pub fn analyze_program(program: &Program, platforms: &[Platform]) -> Report {
    let mut report: Report = analyze(program, platforms, None).into_iter().collect();
    report.sort();
    report
}

fn line_span(line: u32, file: Option<&str>) -> Span {
    let span = Span::at(line, 0);
    match file {
        Some(f) => span.in_file(f),
        None => span,
    }
}

fn mode_label(mode: AccessMode) -> &'static str {
    match mode {
        AccessMode::Read => "read",
        AccessMode::Write => "write",
        AccessMode::ReadWrite => "readwrite",
    }
}

fn analyze(program: &Program, platforms: &[Platform], file: Option<&str>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let functions: Vec<&TaskFunction> = program.task_functions().collect();
    let calls: Vec<&TaskCall> = program.task_calls().collect();

    // --- Per-function contract checks. ------------------------------------
    for f in &functions {
        // C010: access(...) clause entries must name declared parameters.
        for (name, _) in &f.pragma.accesses {
            if !f.pragma.params.iter().any(|(p, _)| p == name) {
                out.push(
                    Diagnostic::error(
                        "C010",
                        format!(
                            "access clause of task \"{}\" references unknown parameter \"{}\"",
                            f.pragma.task_identifier, name
                        ),
                    )
                    .with_span(line_span(f.line, file))
                    .with_subject(f.pragma.task_identifier.clone()),
                );
            }
        }
        // C004: the pragma parameter list must match the C signature.
        let pragma_names: Vec<&str> = f.pragma.params.iter().map(|(n, _)| n.as_str()).collect();
        let c_names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        if pragma_names != c_names {
            out.push(
                Diagnostic::error(
                    "C004",
                    format!(
                        "task pragma of \"{}\" declares parameters {:?} but the annotated C function \"{}\" declares {:?}",
                        f.pragma.task_identifier, pragma_names, f.name, c_names
                    ),
                )
                .with_span(line_span(f.line, file))
                .with_subject(f.pragma.task_identifier.clone()),
            );
        }
    }

    // --- Task registration (replays §IV-C step 1). -------------------------
    let mut repo = TaskRepository::with_builtin_expert_variants();
    for f in &functions {
        if let Err(e) = repo.register_function(f) {
            out.push(
                Diagnostic::error("C004", e.to_string())
                    .with_span(line_span(f.line, file))
                    .with_subject(f.pragma.task_identifier.clone()),
            );
        }
    }

    // --- Pre-selection per platform (replays §IV-C step 2). ----------------
    let selections: Vec<(&Platform, Vec<InterfaceSelection>)> =
        platforms.iter().map(|p| (p, preselect(&repo, p))).collect();

    // --- Per-call checks. --------------------------------------------------
    // Inter-call write tracking for C009: argument name → Some(writer
    // interface) while a write is unread, None once read.
    let mut last_write: BTreeMap<String, Option<String>> = BTreeMap::new();
    for call in &calls {
        let interface = &call.pragma.task_identifier;
        let span = line_span(call.line, file);

        // C001: the interface must exist somewhere (program or repository).
        let Some(iface) = repo.interface(interface) else {
            out.push(
                Diagnostic::error(
                    "C001",
                    format!("execute annotation references unknown task interface \"{interface}\""),
                )
                .with_span(span)
                .with_subject(interface.clone()),
            );
            continue;
        };

        // C002: the annotated callee must carry a matching task pragma.
        let callee_fn = functions.iter().find(|f| f.name == call.callee);
        match callee_fn {
            Some(f) if f.pragma.task_identifier != *interface => {
                out.push(
                    Diagnostic::error(
                        "C002",
                        format!(
                            "call to \"{}\" executes interface \"{}\" but its task pragma declares \"{}\"",
                            call.callee, interface, f.pragma.task_identifier
                        ),
                    )
                    .with_span(span.clone())
                    .with_subject(interface.clone()),
                );
            }
            None if iface
                .implementations
                .iter()
                .all(|i| i.origin == ImplOrigin::InputProgram) =>
            {
                out.push(
                    Diagnostic::error(
                        "C002",
                        format!(
                            "call to \"{}\" carries an execute annotation but no task pragma declares it as an implementation of \"{}\"",
                            call.callee, interface
                        ),
                    )
                    .with_span(span.clone())
                    .with_subject(interface.clone()),
                );
            }
            _ => {}
        }

        // Effective parameter list for this call: the callee's pragma (with
        // access overrides applied), else the interface contract.
        let params: Vec<(String, AccessMode)> = match callee_fn {
            Some(f) => f.pragma.effective_params(),
            None => iface
                .implementations
                .first()
                .map(|i| i.params.clone())
                .unwrap_or_default(),
        };

        // C003: argument count must match the interface contract.
        if call.args.len() != params.len() {
            out.push(
                Diagnostic::error(
                    "C003",
                    format!(
                        "call to \"{}\" passes {} argument(s) but interface \"{}\" declares {} parameter(s)",
                        call.callee,
                        call.args.len(),
                        interface,
                        params.len()
                    ),
                )
                .with_span(span.clone())
                .with_subject(interface.clone()),
            );
            continue; // argument-wise analyses below need the zip to line up
        }

        // C008: one buffer bound to two parameters where either is written.
        for i in 0..call.args.len() {
            for j in (i + 1)..call.args.len() {
                if call.args[i] != call.args[j] {
                    continue;
                }
                let (ref ni, mi) = params[i];
                let (ref nj, mj) = params[j];
                if mi != AccessMode::Read || mj != AccessMode::Read {
                    out.push(
                        Diagnostic::error(
                            "C008",
                            format!(
                                "argument \"{}\" is passed for both \"{}\" ({}) and \"{}\" ({}): aliased writes within one task race against each other",
                                call.args[i],
                                ni,
                                mode_label(mi),
                                nj,
                                mode_label(mj)
                            ),
                        )
                        .with_span(span.clone())
                        .with_subject(interface.clone()),
                    );
                }
            }
        }

        // C009: write-after-write with no intervening read (lost update).
        // StarPU-style sequential consistency orders conflicting accesses,
        // so this is not a race — but the first result is never observed.
        for (arg, (_, mode)) in call.args.iter().zip(params.iter()) {
            if *mode == AccessMode::Write {
                if let Some(Some(writer)) = last_write.get(arg) {
                    out.push(
                        Diagnostic::warning(
                            "C009",
                            format!(
                                "argument \"{arg}\" written by \"{writer}\" is overwritten by \"{interface}\" without any task reading the value in between (lost update?)"
                            ),
                        )
                        .with_span(span.clone())
                        .with_subject(interface.clone()),
                    );
                }
            }
            match mode {
                AccessMode::Write => {
                    last_write.insert(arg.clone(), Some(interface.clone()));
                }
                AccessMode::Read | AccessMode::ReadWrite => {
                    last_write.insert(arg.clone(), None);
                }
            }
        }

        // C005/C006: replay execution-group mapping on each platform.
        for (platform, sels) in &selections {
            match map_call(call, sels, platform) {
                Ok(_) => {}
                Err(MappingError::BadGroup { group, message }) => out.push(
                    Diagnostic::error(
                        "C005",
                        format!(
                            "execution group \"{}\" cannot be resolved on platform \"{}\": {}",
                            group, platform.name, message
                        ),
                    )
                    .with_span(span.clone())
                    .with_subject(interface.clone()),
                ),
                Err(MappingError::EmptyMapping { group, .. }) => {
                    let scope = if group.is_empty() {
                        "the whole platform".to_string()
                    } else {
                        format!("execution group \"{group}\"")
                    };
                    out.push(
                        Diagnostic::error(
                            "C006",
                            format!(
                                "no processing unit in {} of platform \"{}\" can run any variant of \"{}\"",
                                scope, platform.name, interface
                            ),
                        )
                        .with_span(span.clone())
                        .with_subject(interface.clone()),
                    );
                }
                // C001 already reported above.
                Err(MappingError::UnknownInterface(_)) => {}
            }
        }
    }

    // --- C007: dead program variants. --------------------------------------
    // A variant outlined in the input program that no provided platform can
    // run will never be selected. Repository (expert) variants are exempt:
    // being unusable on *this* platform is their normal cross-platform
    // state.
    if !platforms.is_empty() {
        let referenced: BTreeSet<&str> = functions
            .iter()
            .map(|f| f.pragma.task_identifier.as_str())
            .chain(calls.iter().map(|c| c.pragma.task_identifier.as_str()))
            .collect();
        for interface in &referenced {
            let Some(iface) = repo.interface(interface) else {
                continue;
            };
            for imp in &iface.implementations {
                if imp.origin != ImplOrigin::InputProgram {
                    continue;
                }
                let kept_somewhere = selections.iter().any(|(_, sels)| {
                    sels.iter().any(|s| {
                        s.interface == *interface
                            && s.decisions
                                .iter()
                                .any(|d| d.implementation == imp.name && d.kept)
                    })
                });
                if !kept_somewhere {
                    let platform_names: Vec<&str> =
                        platforms.iter().map(|p| p.name.as_str()).collect();
                    let mut d = Diagnostic::warning(
                        "C007",
                        format!(
                            "implementation \"{}\" of interface \"{}\" (targets {:?}) can run on no PU of {}: it is dead code under this descriptor",
                            imp.name,
                            interface,
                            imp.target_platforms,
                            platform_names.join(", ")
                        ),
                    )
                    .with_subject((*interface).to_string());
                    if let Some(f) = functions.iter().find(|f| f.pragma.task_name == imp.name) {
                        d = d.with_span(line_span(f.line, file));
                    }
                    out.push(d);
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = r#"
#pragma cascabel task : x86 : I_vecadd : vecadd01 : (A: readwrite, B: read)
void vector_add(double *A, double *B) { }
#pragma cascabel execute I_vecadd : (A:BLOCK:N, B:BLOCK:N)
vector_add(A, B);
"#;

    #[test]
    fn clean_program_has_no_findings() {
        let platform = pdl_discover::synthetic::xeon_2gpu_testbed();
        let report = analyze_program_source("t.c", CLEAN, std::slice::from_ref(&platform));
        assert!(report.is_empty(), "{}", report.render());
    }

    #[test]
    fn parse_error_is_c100() {
        let report = analyze_program_source("t.c", "#pragma cascabel task : : :\n", &[]);
        assert_eq!(report.codes(), ["C100"]);
    }

    #[test]
    fn unknown_interface_is_c001() {
        let src = "#pragma cascabel execute I_nope : (A:BLOCK:N)\nf(A);\n";
        let report = analyze_program_source("t.c", src, &[]);
        assert_eq!(report.codes(), ["C001"]);
    }

    #[test]
    fn mismatched_callee_pragma_is_c002() {
        let src = r#"
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite)
void fa(double *X) { }
#pragma cascabel execute I_b : (X:BLOCK:N)
fa(X);
"#;
        let report = analyze_program_source("t.c", src, &[]);
        // I_b is unknown too — both findings are wanted.
        assert_eq!(report.codes(), ["C001"]);
        let src2 = r#"
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite)
void fa(double *X) { }
#pragma cascabel task : x86 : I_b : b01 : (X: readwrite)
void fb(double *X) { }
#pragma cascabel execute I_b : (X:BLOCK:N)
fa(X);
"#;
        let report = analyze_program_source("t.c", src2, &[]);
        assert_eq!(report.codes(), ["C002"]);
    }

    #[test]
    fn arity_mismatch_is_c003() {
        let src = r#"
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite, Y: read)
void fa(double *X, double *Y) { }
#pragma cascabel execute I_a : (X:BLOCK:N)
fa(X);
"#;
        let report = analyze_program_source("t.c", src, &[]);
        assert_eq!(report.codes(), ["C003"]);
    }

    #[test]
    fn signature_mismatch_is_c004() {
        let src = r#"
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite, Y: read)
void fa(double *X) { }
"#;
        let report = analyze_program_source("t.c", src, &[]);
        assert_eq!(report.codes(), ["C004"]);
    }

    #[test]
    fn aliasing_write_is_c008() {
        let src = r#"
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite, Y: read)
void fa(double *X, double *Y) { }
#pragma cascabel execute I_a : (X:BLOCK:N, Y:BLOCK:N)
fa(A, A);
"#;
        let report = analyze_program_source("t.c", src, &[]);
        assert_eq!(report.codes(), ["C008"]);
    }

    #[test]
    fn lost_update_is_c009() {
        let src = r#"
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite) : access(out: X)
void fa(double *X) { }
#pragma cascabel task : x86 : I_b : b01 : (X: readwrite) : access(out: X)
void fb(double *X) { }
#pragma cascabel execute I_a : (X:BLOCK:N)
fa(A);
#pragma cascabel execute I_b : (X:BLOCK:N)
fb(A);
"#;
        let report = analyze_program_source("t.c", src, &[]);
        assert_eq!(report.codes(), ["C009"]);
    }

    #[test]
    fn unknown_access_parameter_is_c010() {
        let src = r#"
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite) : access(in: Z)
void fa(double *X) { }
"#;
        let report = analyze_program_source("t.c", src, &[]);
        assert_eq!(report.codes(), ["C010"]);
    }

    #[test]
    fn mapping_replay_flags_bad_and_empty_groups_and_dead_variants() {
        let platform = pdl_discover::synthetic::xeon_x5550_host();
        // Unresolvable pseudo-group → C005.
        let src = r#"
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite)
void fa(double *X) { }
#pragma cascabel execute I_a : @bogus (X:BLOCK:N)
fa(X);
"#;
        let report = analyze_program_source("t.c", src, std::slice::from_ref(&platform));
        assert_eq!(report.codes(), ["C005"]);

        // Empty group scope → C006; the Cuda variant on a CPU-only host has
        // nowhere to run at all → C007.
        let src = r#"
#pragma cascabel task : x86 : I_a : a01 : (X: readwrite)
void fa(double *X) { }
#pragma cascabel task : Cuda : I_a : a02 : (X: readwrite)
void fa_gpu(double *X) { }
#pragma cascabel execute I_a : gpus (X:BLOCK:N)
fa(X);
"#;
        let report = analyze_program_source("t.c", src, std::slice::from_ref(&platform));
        assert_eq!(report.codes(), ["C006", "C007"]);
    }
}
