//! The instrumented coherence model the explorer enumerates and the
//! differential fuzzer uses as its oracle.
//!
//! A [`Model`] couples one [`Topo`] per data handle with an optional
//! [`Mutation`]. Its [`State`] tracks, per handle, which nodes the
//! registry *believes* hold a valid copy plus ground truth about whether
//! each copy actually holds the latest written data — the instrumentation
//! that lets the explorer detect lost updates a plain valid set cannot
//! express. All membership transitions route through [`crate::proto`], the
//! same functions the runtime's `DataRegistry` delegates to; mutations are
//! deliberate, named deviations used to validate that the checker and the
//! fuzzer actually catch protocol bugs.

use crate::proto::{self, AccessMode, Charges, Node, Plan, PlanClass, Routing};
use crate::topo::Topo;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Coherence state of one handle.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HandleState {
    /// Nodes the registry believes hold a valid copy, mapped to ground
    /// truth: `true` when the copy really holds the latest written data.
    /// In a correct protocol every valid copy is fresh; a `false` entry is
    /// a lost update waiting to be read.
    pub copies: BTreeMap<Node, bool>,
    /// Outstanding accesses: acquired (transfers committed) but not yet
    /// finished, kept sorted so states compare structurally.
    pub pending: Vec<(usize, AccessMode)>,
}

impl HandleState {
    /// The registry-visible valid set (what `DataRegistry::valid_on`
    /// would report).
    pub fn valid(&self) -> BTreeSet<Node> {
        self.copies.keys().copied().collect()
    }

    /// Renders the copies map: `{host, dev1 (stale)}`.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self
            .copies
            .iter()
            .map(|(n, fresh)| {
                if *fresh {
                    n.to_string()
                } else {
                    format!("{n} (stale)")
                }
            })
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

/// One global model state: per-handle coherence plus outstanding accesses.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct State {
    /// Per-handle state, indexed like [`Model::topos`].
    pub handles: Vec<HandleState>,
}

/// One protocol action. `Acquire` is the runtime's `plan_acquire` +
/// `commit` pair (transfers happen), `Finish` is `finish_access` (the
/// access completes, writes invalidate), `Flush` is `plan_flush` +
/// `commit`. Splitting acquire from finish is what exposes the
/// interleavings a parallel data layer would execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// Plan and commit the transfers for one access.
    Acquire {
        /// Handle index.
        handle: usize,
        /// Accessing device index.
        dev: usize,
        /// Access mode.
        mode: AccessMode,
        /// Routing policy for this access.
        routing: Routing,
    },
    /// Complete a previously acquired access (writes invalidate here).
    Finish {
        /// Handle index.
        handle: usize,
        /// Device whose access completes.
        dev: usize,
        /// Mode of the completing access.
        mode: AccessMode,
    },
    /// Bring the handle back to host memory.
    Flush {
        /// Handle index.
        handle: usize,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Acquire {
                handle,
                dev,
                mode,
                routing,
            } => write!(f, "acquire h{handle} {mode} @ dev{dev} via {routing}"),
            Action::Finish { handle, dev, mode } => {
                write!(f, "finish h{handle} {mode} @ dev{dev}")
            }
            Action::Flush { handle } => write!(f, "flush h{handle}"),
        }
    }
}

/// A deliberate, named protocol bug injected into the model layer.
///
/// Mutations exist to validate the checker itself: each one is the
/// minimal "plausible refactoring mistake" behind one M-series code, and
/// the smoke gate asserts the explorer finds it with a minimal
/// counterexample while the differential fuzzer sees the mutated oracle
/// diverge from the real implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// The faithful protocol.
    #[default]
    None,
    /// A finished write forgets to invalidate the other copies (M001):
    /// stale copies stay in the valid set.
    SkipWriteInvalidate,
    /// A finished write invalidates correctly but the writer's new data is
    /// never recorded (M002): the single remaining "valid" copy is stale.
    DropWriteUpdate,
    /// A finished write invalidates every copy including the writer's
    /// (M003): the datum is valid nowhere.
    VanishOnWrite,
    /// Commit forgets to charge the final hop of the plan (M004): the
    /// probed cost no longer equals the charged cost.
    UnderCharge,
    /// Commit treats transfers as moves instead of copies (M005): the
    /// source loses validity, so staging shrinks the valid set.
    MoveNotCopy,
}

impl Mutation {
    /// Every non-trivial mutation, for gate-validation sweeps.
    pub const ALL: [Mutation; 5] = [
        Mutation::SkipWriteInvalidate,
        Mutation::DropWriteUpdate,
        Mutation::VanishOnWrite,
        Mutation::UnderCharge,
        Mutation::MoveNotCopy,
    ];

    /// The M-series diagnostic code this mutation must be caught as.
    pub fn expected_code(self) -> Option<&'static str> {
        match self {
            Mutation::None => None,
            Mutation::SkipWriteInvalidate => Some("M001"),
            Mutation::DropWriteUpdate => Some("M002"),
            Mutation::VanishOnWrite => Some("M003"),
            Mutation::UnderCharge => Some("M004"),
            Mutation::MoveNotCopy => Some("M005"),
        }
    }

    /// Parses a mutation name or M-code (`skip-write-invalidate`, `m001`).
    pub fn parse(s: &str) -> Option<Mutation> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" => Some(Mutation::None),
            "m001" | "skip-write-invalidate" => Some(Mutation::SkipWriteInvalidate),
            "m002" | "drop-write-update" => Some(Mutation::DropWriteUpdate),
            "m003" | "vanish-on-write" => Some(Mutation::VanishOnWrite),
            "m004" | "under-charge" => Some(Mutation::UnderCharge),
            "m005" | "move-not-copy" => Some(Mutation::MoveNotCopy),
            _ => None,
        }
    }

    /// Stable lowercase name (inverse of [`Mutation::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::SkipWriteInvalidate => "skip-write-invalidate",
            Mutation::DropWriteUpdate => "drop-write-update",
            Mutation::VanishOnWrite => "vanish-on-write",
            Mutation::UnderCharge => "under-charge",
            Mutation::MoveNotCopy => "move-not-copy",
        }
    }
}

/// Observable effects of one [`Action`], used for invariant checking and
/// compared field-by-field against the real implementation by the
/// differential fuzzer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepEffects {
    /// Cost the side-effect-free probe priced the access at.
    pub probe: f64,
    /// Cost the commit actually charged.
    pub charged: f64,
    /// Physical hop counts per byte-counter direction.
    pub charges: Charges,
    /// Routing class the committed plan realized.
    pub class: PlanClass,
}

/// The coherence model over a set of handles sharing one device topology.
#[derive(Debug, Clone)]
pub struct Model {
    /// One topology view per handle (same devices, per-datum costs).
    pub topos: Vec<Topo>,
    /// Injected bug, [`Mutation::None`] for the faithful protocol.
    pub mutation: Mutation,
}

impl Model {
    /// A faithful model over one topology per handle.
    ///
    /// # Panics
    /// Panics when `topos` is empty or the per-handle topologies disagree
    /// on the device count.
    pub fn new(topos: Vec<Topo>) -> Model {
        assert!(!topos.is_empty(), "a model needs at least one handle");
        assert!(
            topos.iter().all(|t| t.devices() == topos[0].devices()),
            "per-handle topologies must share one device set"
        );
        Model {
            topos,
            mutation: Mutation::None,
        }
    }

    /// The same model with a deliberate bug injected.
    #[must_use]
    pub fn with_mutation(mut self, mutation: Mutation) -> Model {
        self.mutation = mutation;
        self
    }

    /// Number of handles the model tracks.
    pub fn handles(&self) -> usize {
        self.topos.len()
    }

    /// Number of devices in the shared topology.
    pub fn devices(&self) -> usize {
        self.topos[0].devices()
    }

    /// The initial state: every handle valid on the host only, fresh.
    pub fn initial(&self) -> State {
        State {
            handles: self
                .topos
                .iter()
                .map(|_| HandleState {
                    copies: BTreeMap::from([(Node::Host, true)]),
                    pending: Vec::new(),
                })
                .collect(),
        }
    }

    /// All actions enabled in `state` under an outstanding-access bound.
    pub fn enabled(&self, state: &State, max_pending: usize) -> Vec<Action> {
        let mut actions = Vec::new();
        for (handle, hs) in state.handles.iter().enumerate() {
            let mut seen = BTreeSet::new();
            for &(dev, mode) in &hs.pending {
                if seen.insert((dev, mode)) {
                    actions.push(Action::Finish { handle, dev, mode });
                }
            }
            if hs.pending.len() < max_pending {
                for dev in 0..self.devices() {
                    for mode in [AccessMode::Read, AccessMode::Write, AccessMode::ReadWrite] {
                        for routing in [Routing::HostStaged, Routing::PeerToPeer] {
                            actions.push(Action::Acquire {
                                handle,
                                dev,
                                mode,
                                routing,
                            });
                        }
                    }
                }
            }
            actions.push(Action::Flush { handle });
        }
        actions
    }

    /// Whether `action` is enabled in `state` (used by trace replay).
    pub fn is_enabled(&self, state: &State, action: Action, max_pending: usize) -> bool {
        match action {
            Action::Acquire { handle, dev, .. } => {
                handle < self.handles()
                    && dev < self.devices()
                    && state.handles[handle].pending.len() < max_pending
            }
            Action::Finish { handle, dev, mode } => {
                handle < self.handles() && state.handles[handle].pending.contains(&(dev, mode))
            }
            Action::Flush { handle } => handle < self.handles(),
        }
    }

    /// Applies `action`, returning the successor state and its observable
    /// effects. `action` must be enabled.
    pub fn step(&self, state: &State, action: Action) -> (State, StepEffects) {
        let mut next = state.clone();
        let effects = match action {
            Action::Acquire {
                handle,
                dev,
                mode,
                routing,
            } => {
                let hs = &mut next.handles[handle];
                let valid = hs.valid();
                let plan =
                    proto::plan_acquire(&valid, Node::Dev(dev), mode, routing, &self.topos[handle]);
                let effects = self.apply_commit(hs, &plan);
                hs.pending.push((dev, mode));
                hs.pending.sort_unstable();
                effects
            }
            Action::Finish { handle, dev, mode } => {
                let hs = &mut next.handles[handle];
                let slot = hs
                    .pending
                    .iter()
                    .position(|&p| p == (dev, mode))
                    .expect("finish must match an outstanding acquire");
                hs.pending.remove(slot);
                self.apply_finish(hs, dev, mode);
                StepEffects::default()
            }
            Action::Flush { handle } => {
                let hs = &mut next.handles[handle];
                let valid = hs.valid();
                let plan = proto::plan_flush(&valid, &self.topos[handle]);
                self.apply_commit(hs, &plan)
            }
        };
        (next, effects)
    }

    /// Commits a plan into one handle's state: membership through
    /// [`proto::commit`], freshness propagated hop by hop along the plan.
    fn apply_commit(&self, hs: &mut HandleState, plan: &Plan) -> StepEffects {
        let probe = plan.total();
        let mut set = hs.valid();
        let charges = proto::commit(&mut set, plan);

        let mut fresh = hs.copies.clone();
        for hop in &plan.hops {
            let f = *fresh.get(&hop.from).unwrap_or(&true);
            fresh.insert(hop.to, f);
        }
        if self.mutation == Mutation::MoveNotCopy {
            for hop in &plan.hops {
                set.remove(&hop.from);
            }
        }
        hs.copies = set
            .iter()
            .map(|n| (*n, *fresh.get(n).unwrap_or(&true)))
            .collect();

        let charged = match self.mutation {
            Mutation::UnderCharge if !plan.hops.is_empty() => {
                probe - plan.hops[plan.hops.len() - 1].cost
            }
            _ => probe,
        };
        StepEffects {
            probe,
            charged,
            charges,
            class: plan.routing_class(),
        }
    }

    /// Completes one access on a handle, applying write-invalidate (or a
    /// mutated version of it).
    fn apply_finish(&self, hs: &mut HandleState, dev: usize, mode: AccessMode) {
        let accessor = Node::Dev(dev);
        if mode.writes() {
            match self.mutation {
                Mutation::SkipWriteInvalidate => {
                    // The other copies now hold superseded data but stay in
                    // the valid set.
                    for stale in hs.copies.values_mut() {
                        *stale = false;
                    }
                    hs.copies.insert(accessor, true);
                }
                Mutation::DropWriteUpdate => {
                    hs.copies.clear();
                    hs.copies.insert(accessor, false);
                }
                Mutation::VanishOnWrite => {
                    hs.copies.clear();
                }
                _ => {
                    let mut set = hs.valid();
                    proto::finish_access(&mut set, accessor, mode);
                    hs.copies = set.into_iter().map(|n| (n, true)).collect();
                }
            }
        } else if mode.reads() {
            let mut set = hs.valid();
            proto::finish_access(&mut set, accessor, mode);
            // A reader that appears here without a committed copy was
            // served by the host's address space: it inherits the host
            // copy's freshness.
            let inherited = *hs.copies.get(&Node::Host).unwrap_or(&true);
            for n in set {
                hs.copies.entry(n).or_insert(inherited);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gpu_model() -> Model {
        let topo = Topo::star("t", 3, 10.0).with_shared(0).with_peer(1, 2, 3.0);
        Model::new(vec![topo.clone(), topo])
    }

    #[test]
    fn acquire_then_finish_write_leaves_single_fresh_copy() {
        let m = two_gpu_model();
        let s0 = m.initial();
        let (s1, e1) = m.step(
            &s0,
            Action::Acquire {
                handle: 0,
                dev: 1,
                mode: AccessMode::Write,
                routing: Routing::HostStaged,
            },
        );
        assert_eq!(e1.probe, 0.0); // writes transfer nothing in
        assert_eq!(s1.handles[0].pending, vec![(1, AccessMode::Write)]);
        let (s2, _) = m.step(
            &s1,
            Action::Finish {
                handle: 0,
                dev: 1,
                mode: AccessMode::Write,
            },
        );
        assert_eq!(s2.handles[0].copies, BTreeMap::from([(Node::Dev(1), true)]));
        assert!(s2.handles[0].pending.is_empty());
    }

    #[test]
    fn mutations_have_distinct_codes_and_parse_round_trips() {
        for m in Mutation::ALL {
            assert_eq!(Mutation::parse(m.name()), Some(m));
            assert_eq!(Mutation::parse(m.expected_code().unwrap()), Some(m));
        }
        assert_eq!(Mutation::parse("frob"), None);
    }

    #[test]
    fn skip_write_invalidate_keeps_stale_copies() {
        let m = two_gpu_model().with_mutation(Mutation::SkipWriteInvalidate);
        let s0 = m.initial();
        let (s1, _) = m.step(
            &s0,
            Action::Acquire {
                handle: 0,
                dev: 2,
                mode: AccessMode::Write,
                routing: Routing::HostStaged,
            },
        );
        let (s2, _) = m.step(
            &s1,
            Action::Finish {
                handle: 0,
                dev: 2,
                mode: AccessMode::Write,
            },
        );
        assert_eq!(
            s2.handles[0].copies,
            BTreeMap::from([(Node::Dev(2), true), (Node::Host, false)])
        );
        assert!(s2.handles[0].render().contains("host (stale)"));
    }
}
