//! The pure coherence protocol: the single authority for how the data
//! layer plans transfers and mutates valid sets.
//!
//! `hetero_rt::data::DataRegistry` delegates every transition to the
//! functions in this module (decorating the resulting hops with physical
//! links and durations), and the model checker in [`crate::model`] /
//! [`crate::explore`] enumerates exactly the same functions over bounded
//! topologies — so the checked model and the shipping implementation
//! cannot drift apart.
//!
//! The protocol is MSI-style write-invalidate over a star (host-staged)
//! or star+peer (NVLink-era) topology:
//!
//! * a datum is valid on a set of [`Node`]s, initially the host;
//! * a reading access first stages a copy to the host (unless one exists)
//!   and then to the reader, or takes a direct peer hop when one is
//!   declared *and* cheaper;
//! * committing a plan only ever **adds** valid copies;
//! * finishing a writing access invalidates every other copy.

use std::collections::BTreeSet;
use std::fmt;

/// A memory space the protocol tracks copies in.
///
/// Variant order matters: `Dev(i)` sorts before `Host`, mirroring the
/// runtime's `DeviceId` ordering where the host sentinel is `usize::MAX`.
/// Owner selection ("first valid owner") is defined over this order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Node {
    /// A device memory space, identified by its index in the topology.
    Dev(usize),
    /// Host memory, where registered data initially lives.
    Host,
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Dev(i) => write!(f, "dev{i}"),
            Node::Host => f.write_str("host"),
        }
    }
}

/// How a task accesses a handle — the paper's parameter access-specifiers
/// (`read`, `write`, `readwrite`, §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessMode {
    /// Input only.
    Read,
    /// Output only (no transfer-in required).
    Write,
    /// In-out.
    ReadWrite,
}

impl AccessMode {
    /// Whether the access observes the previous value.
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }

    /// Whether the access produces a new value.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }

    /// Parses the annotation spelling: `read`/`write`/`readwrite` from the
    /// parameterlist, or the dataflow spelling `in`/`out`/`inout` used by
    /// `access(…)` clauses.
    ///
    /// Matching is case-insensitive and ignores surrounding whitespace as
    /// well as internal separators (`-`, `_`, spaces), the same way pragma
    /// clauses normalize their keywords elsewhere (`BLOCK-CYCLIC` ==
    /// `BLOCKCYCLIC`): `Read-Write`, `READ_WRITE` and `in out` all parse.
    pub fn parse(s: &str) -> Option<Self> {
        let mut folded = String::with_capacity(s.len());
        for c in s.trim().chars() {
            match c {
                '-' | '_' => {}
                c if c.is_whitespace() => {}
                c => folded.push(c.to_ascii_lowercase()),
            }
        }
        match folded.as_str() {
            "read" | "r" | "in" => Some(AccessMode::Read),
            "write" | "w" | "out" => Some(AccessMode::Write),
            "readwrite" | "rw" | "inout" => Some(AccessMode::ReadWrite),
            _ => None,
        }
    }
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessMode::Read => "read",
            AccessMode::Write => "write",
            AccessMode::ReadWrite => "readwrite",
        })
    }
}

/// How accelerator↔accelerator transfers are routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Routing {
    /// Every move stages through host memory (PCIe-era default: src→host,
    /// then host→dst).
    #[default]
    HostStaged,
    /// Use a direct device↔device interconnect (e.g. `NVLink`) whenever the
    /// platform declares one and it is cheaper than staging through host.
    PeerToPeer,
}

impl fmt::Display for Routing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Routing::HostStaged => "host-staged",
            Routing::PeerToPeer => "peer-to-peer",
        })
    }
}

/// Transfer costs of one datum over a topology, as seen by the planner.
///
/// The runtime implements this over a `SimMachine` plus a datum size
/// (costs are modeled seconds); the model checker implements it over a
/// small synthetic [`crate::topo::Topo`].
pub trait CostView {
    /// Cost of moving this datum over the host↔device route of `dev`.
    /// `None` means the device shares the host address space (no physical
    /// link; staging to or from it is free and moves zero bytes).
    fn host_cost(&self, dev: usize) -> Option<f64>;

    /// Cost of moving this datum over a declared direct peer interconnect,
    /// or `None` when the platform declares no such route.
    fn peer_cost(&self, from: usize, to: usize) -> Option<f64>;
}

/// Which byte counter a committed hop charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HopKind {
    /// Physical move into host memory (`bytes_to_host`).
    ToHost,
    /// Physical move from host memory into a device (`bytes_to_devices`).
    ToDevice,
    /// Physical device→device move over a peer interconnect (`bytes_peer`).
    Peer,
    /// Bookkeeping hop between spaces sharing one address space: records
    /// validity, moves nothing, charges nothing.
    Local,
}

/// One planned data movement between two memory spaces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// Memory space the copy departs from.
    pub from: Node,
    /// Memory space that gains a valid copy on commit.
    pub to: Node,
    /// Modeled cost of the move (zero for [`HopKind::Local`] hops).
    pub cost: f64,
    /// Whether the hop physically moves the datum (charges its bytes).
    pub moves_bytes: bool,
}

impl Hop {
    /// The byte counter this hop charges on commit.
    pub fn kind(&self) -> HopKind {
        if !self.moves_bytes {
            HopKind::Local
        } else if self.to == Node::Host {
            HopKind::ToHost
        } else if self.from == Node::Host {
            HopKind::ToDevice
        } else {
            HopKind::Peer
        }
    }
}

/// The ordered hops required before one access — the pure skeleton the
/// runtime decorates with physical links and durations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Plan {
    /// Hops in dependency order (a later hop needs the earlier one done).
    pub hops: Vec<Hop>,
}

impl Plan {
    /// Total modeled cost when hops run back-to-back without contention.
    /// Summation order matches the hop order so a cost-preserving
    /// decoration reproduces the exact same float.
    pub fn total(&self) -> f64 {
        self.hops.iter().fold(0.0, |acc, h| acc + h.cost)
    }

    /// Whether the plan moves no data.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The routing class the plan realizes: peer if any hop is a direct
    /// device→device move, staged if it moves bytes through host memory,
    /// local otherwise (shared address space or nothing to do).
    pub fn routing_class(&self) -> PlanClass {
        if self.hops.iter().any(|h| h.kind() == HopKind::Peer) {
            PlanClass::Peer
        } else if self.hops.iter().any(|h| h.moves_bytes) {
            PlanClass::Staged
        } else {
            PlanClass::Local
        }
    }
}

/// Coarse classification of a plan, compared verbatim by the differential
/// fuzzer between model and implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PlanClass {
    /// At least one direct device→device hop.
    Peer,
    /// Bytes move, all of them through host memory.
    Staged,
    /// No bytes move (data already present or shared address space).
    #[default]
    Local,
}

impl fmt::Display for PlanClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlanClass::Peer => "peer",
            PlanClass::Staged => "staged",
            PlanClass::Local => "local",
        })
    }
}

/// The hop from `owner`'s memory into host memory: a physical move over
/// the owner's host route when one exists, a free bookkeeping hop when the
/// owner shares the host address space (or is the host itself).
fn stage_to_host(owner: Node, view: &impl CostView) -> Hop {
    let physical = match owner {
        Node::Dev(o) => view.host_cost(o),
        Node::Host => None,
    };
    match physical {
        Some(cost) => Hop {
            from: owner,
            to: Node::Host,
            cost,
            moves_bytes: true,
        },
        None => Hop {
            from: owner,
            to: Node::Host,
            cost: 0.0,
            moves_bytes: false,
        },
    }
}

/// Plans the transfers needed before accessing a datum on `device` with
/// `mode`, given the set of nodes currently holding a valid copy.
///
/// Under [`Routing::HostStaged`] the plan is at most two hops:
/// owner→host (when no host copy exists), then host→device. Under
/// [`Routing::PeerToPeer`] a direct owner→device hop over a declared peer
/// interconnect replaces the staged plan whenever one exists and is
/// strictly cheaper.
///
/// # Panics
/// Panics when `valid` is empty — "a datum is always valid somewhere" is
/// a protocol invariant the caller maintains.
pub fn plan_acquire(
    valid: &BTreeSet<Node>,
    device: Node,
    mode: AccessMode,
    routing: Routing,
    view: &impl CostView,
) -> Plan {
    let mut plan = Plan::default();
    if !mode.reads() || valid.contains(&device) {
        return plan;
    }

    // Host-staged route: stage to host first when needed.
    if !valid.contains(&Node::Host) {
        let owner = *valid
            .iter()
            .next()
            .expect("a datum is always valid somewhere");
        plan.hops.push(stage_to_host(owner, view));
    }
    if let Node::Dev(d) = device {
        if let Some(cost) = view.host_cost(d) {
            plan.hops.push(Hop {
                from: Node::Host,
                to: device,
                cost,
                moves_bytes: true,
            });
        }
        // No host route: the device shares the host address space and the
        // (possibly staged) host copy already serves it.

        if routing == Routing::PeerToPeer {
            // Cheapest direct route from any current owner, if one beats
            // the staged plan. First owner wins ties, like the runtime.
            let mut best: Option<Hop> = None;
            for &owner in valid {
                let Node::Dev(o) = owner else { continue };
                if o == d {
                    continue;
                }
                let Some(cost) = view.peer_cost(o, d) else {
                    continue;
                };
                if best.as_ref().is_none_or(|b| cost < b.cost) {
                    best = Some(Hop {
                        from: owner,
                        to: device,
                        cost,
                        moves_bytes: true,
                    });
                }
            }
            if let Some(peer) = best {
                if peer.cost < plan.total() {
                    plan.hops = vec![peer];
                }
            }
        }
    }
    plan
}

/// Plans the transfer bringing a datum back to host memory (end of run /
/// result collection). Prefers an owner sharing the host address space
/// (free flush); otherwise the first owner pays its host route.
///
/// # Panics
/// Panics when `valid` is empty (see [`plan_acquire`]).
pub fn plan_flush(valid: &BTreeSet<Node>, view: &impl CostView) -> Plan {
    let mut plan = Plan::default();
    if valid.contains(&Node::Host) {
        return plan;
    }
    let owner = valid
        .iter()
        .copied()
        .find(|n| matches!(n, Node::Dev(d) if view.host_cost(*d).is_none()))
        .or_else(|| valid.iter().next().copied())
        .expect("a datum is always valid somewhere");
    plan.hops.push(stage_to_host(owner, view));
    plan
}

/// Byte-charge deltas of one committed plan, split by direction the way
/// the runtime's statistics counters are.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Charges {
    /// Physical hops that moved bytes host→device.
    pub to_device_hops: u32,
    /// Physical hops that moved bytes device→host.
    pub to_host_hops: u32,
    /// Physical hops that moved bytes directly device→device.
    pub peer_hops: u32,
}

/// Applies a plan's coherence effects to a valid set: every hop
/// destination gains a valid copy. Returns how many physical hops charged
/// each direction counter (the runtime multiplies by the datum size).
pub fn commit(valid: &mut BTreeSet<Node>, plan: &Plan) -> Charges {
    let mut charges = Charges::default();
    for hop in &plan.hops {
        valid.insert(hop.to);
        match hop.kind() {
            HopKind::ToHost => charges.to_host_hops += 1,
            HopKind::ToDevice => charges.to_device_hops += 1,
            HopKind::Peer => charges.peer_hops += 1,
            HopKind::Local => {}
        }
    }
    charges
}

/// Records the access itself after its transfers committed: a write
/// invalidates every other copy (MSI write-invalidate), a read leaves the
/// reader holding a valid copy.
pub fn finish_access(valid: &mut BTreeSet<Node>, device: Node, mode: AccessMode) {
    if mode.writes() {
        valid.clear();
        valid.insert(device);
    } else if mode.reads() {
        valid.insert(device);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TwoGpus;
    impl CostView for TwoGpus {
        fn host_cost(&self, dev: usize) -> Option<f64> {
            // dev0 is a CPU core sharing the host space; dev1/dev2 are
            // accelerators one PCIe hop away.
            (dev != 0).then_some(10.0)
        }
        fn peer_cost(&self, from: usize, to: usize) -> Option<f64> {
            (from != 0 && to != 0 && from != to).then_some(3.0)
        }
    }

    fn host_only() -> BTreeSet<Node> {
        [Node::Host].into_iter().collect()
    }

    #[test]
    fn reads_stage_through_host() {
        let mut valid: BTreeSet<_> = [Node::Dev(1)].into_iter().collect();
        let plan = plan_acquire(
            &valid,
            Node::Dev(2),
            AccessMode::Read,
            Routing::HostStaged,
            &TwoGpus,
        );
        assert_eq!(plan.hops.len(), 2);
        assert_eq!(plan.total(), 20.0);
        assert_eq!(plan.routing_class(), PlanClass::Staged);
        let charges = commit(&mut valid, &plan);
        assert_eq!((charges.to_host_hops, charges.to_device_hops), (1, 1));
        assert!(valid.contains(&Node::Host) && valid.contains(&Node::Dev(2)));
    }

    #[test]
    fn peer_route_replaces_staging_when_cheaper() {
        let valid: BTreeSet<_> = [Node::Dev(1)].into_iter().collect();
        let plan = plan_acquire(
            &valid,
            Node::Dev(2),
            AccessMode::Read,
            Routing::PeerToPeer,
            &TwoGpus,
        );
        assert_eq!(plan.hops.len(), 1);
        assert_eq!(plan.total(), 3.0);
        assert_eq!(plan.routing_class(), PlanClass::Peer);
    }

    #[test]
    fn writes_plan_nothing_and_invalidate_on_finish() {
        let mut valid = host_only();
        let plan = plan_acquire(
            &valid,
            Node::Dev(1),
            AccessMode::Write,
            Routing::HostStaged,
            &TwoGpus,
        );
        assert!(plan.is_empty());
        finish_access(&mut valid, Node::Dev(1), AccessMode::Write);
        assert_eq!(valid.iter().copied().collect::<Vec<_>>(), [Node::Dev(1)]);
    }

    #[test]
    fn shared_space_staging_is_free() {
        let valid: BTreeSet<_> = [Node::Dev(0)].into_iter().collect();
        let plan = plan_acquire(
            &valid,
            Node::Dev(1),
            AccessMode::Read,
            Routing::HostStaged,
            &TwoGpus,
        );
        // dev0 shares the host space: the staging hop is free bookkeeping,
        // only host→dev1 moves bytes.
        assert_eq!(plan.hops.len(), 2);
        assert!(!plan.hops[0].moves_bytes);
        assert_eq!(plan.total(), 10.0);
    }

    #[test]
    fn flush_prefers_shared_space_owner() {
        let valid: BTreeSet<_> = [Node::Dev(0), Node::Dev(1)].into_iter().collect();
        let plan = plan_flush(&valid, &TwoGpus);
        assert_eq!(plan.hops.len(), 1);
        assert!(!plan.hops[0].moves_bytes);
        assert_eq!(plan.hops[0].from, Node::Dev(0));
    }

    #[test]
    fn parse_accepts_separator_and_case_variants() {
        // Previously-rejected spellings: internal separators and mixed case
        // with them.
        for (s, want) in [
            ("Read-Write", AccessMode::ReadWrite),
            ("READ_WRITE", AccessMode::ReadWrite),
            ("read write", AccessMode::ReadWrite),
            ("In-Out", AccessMode::ReadWrite),
            (" R W ", AccessMode::ReadWrite),
            ("  In\t", AccessMode::Read),
            ("OUT", AccessMode::Write),
        ] {
            assert_eq!(AccessMode::parse(s), Some(want), "{s:?}");
        }
        assert_eq!(AccessMode::parse("side-ways"), None);
        assert_eq!(AccessMode::parse(""), None);
    }
}
