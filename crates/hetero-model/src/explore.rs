//! Exhaustive state-space exploration of the coherence model.
//!
//! [`explore`] runs a breadth-first search from [`Model::initial`] over
//! every enabled [`Action`], checking five invariants on every transition.
//! BFS order means the first violation found sits at minimal depth, so its
//! action trace is a shortest counterexample; a greedy [`shrink`] pass
//! additionally deletes any action the violation does not need, which
//! matters for traces that arrive from the fuzzer rather than the search.

use crate::model::{Action, Model, State, StepEffects};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// The five enumerated invariants, each tied to one stable M-series
/// diagnostic code (documented in `docs/MODEL.md` / `docs/ANALYSIS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Invariant {
    /// Every handle is valid on at least one node ("a datum is always
    /// valid somewhere").
    ValidSomewhere,
    /// Immediately after a finished write, the writer holds the only
    /// valid copy (MSI write-invalidate).
    SingleWriter,
    /// Every copy in a valid set holds the latest written data — no
    /// lost updates.
    NoLostUpdate,
    /// The side-effect-free probe prices exactly what commit charges.
    ProbeChargeParity,
    /// Committing transfers only ever adds valid copies; only a finished
    /// write shrinks the set.
    MonotoneStaging,
}

impl Invariant {
    /// All invariants, in check order (the order violations are reported
    /// when one transition breaks several).
    pub const ALL: [Invariant; 5] = [
        Invariant::ValidSomewhere,
        Invariant::SingleWriter,
        Invariant::NoLostUpdate,
        Invariant::ProbeChargeParity,
        Invariant::MonotoneStaging,
    ];

    /// The stable diagnostic code of a violation of this invariant.
    pub fn code(self) -> &'static str {
        match self {
            Invariant::ValidSomewhere => "M003",
            Invariant::SingleWriter => "M001",
            Invariant::NoLostUpdate => "M002",
            Invariant::ProbeChargeParity => "M004",
            Invariant::MonotoneStaging => "M005",
        }
    }

    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::ValidSomewhere => "valid-somewhere",
            Invariant::SingleWriter => "single-writer",
            Invariant::NoLostUpdate => "no-lost-update",
            Invariant::ProbeChargeParity => "probe-charge-parity",
            Invariant::MonotoneStaging => "monotone-staging",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Exploration bounds: outstanding accesses per handle and a state-count
/// safety cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Maximum acquired-but-unfinished accesses per handle. 1 checks the
    /// sequential protocol; 2 adds the interleavings a parallel data
    /// layer would execute.
    pub max_pending: usize,
    /// Hard cap on stored states; exceeding it marks the run incomplete
    /// instead of exhausting memory.
    pub max_states: usize,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            max_pending: 2,
            max_states: 4_000_000,
        }
    }
}

/// A checked invariant violation with its (minimized) action trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: Invariant,
    /// What exactly went wrong, with the offending state rendered.
    pub detail: String,
    /// Minimal action sequence from the initial state to the violation.
    pub trace: Vec<Action>,
}

/// Result of one exhaustive exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct Exploration {
    /// Distinct states reached.
    pub states: usize,
    /// Transitions applied (state × enabled action).
    pub transitions: usize,
    /// First invariant violation found, minimized; `None` when every
    /// reachable transition satisfies all five invariants.
    pub violation: Option<Violation>,
    /// Whether the bounded state space was fully enumerated (false when
    /// the state cap stopped the search or a violation aborted it).
    pub complete: bool,
}

/// Checks every invariant on one applied transition. Returns the first
/// violated invariant (in [`Invariant::ALL`] order) with a rendered detail.
pub fn check_transition(
    pre: &State,
    post: &State,
    action: Action,
    effects: &StepEffects,
) -> Option<(Invariant, String)> {
    // M003 — valid-somewhere.
    for (h, hs) in post.handles.iter().enumerate() {
        if hs.copies.is_empty() {
            return Some((
                Invariant::ValidSomewhere,
                format!("after `{action}` handle h{h} is valid nowhere — the copy vanished"),
            ));
        }
    }
    // M001 — single-writer, checked at the write-finish transition.
    if let Action::Finish { handle, dev, mode } = action {
        if mode.writes() {
            let hs = &post.handles[handle];
            let writer = crate::proto::Node::Dev(dev);
            if hs.copies.len() != 1 || !hs.copies.contains_key(&writer) {
                return Some((
                    Invariant::SingleWriter,
                    format!(
                        "after `{action}` the valid set is {} — write-invalidate must leave \
                         exactly the writer's copy",
                        hs.render()
                    ),
                ));
            }
        }
    }
    // M002 — no-lost-update: every valid copy holds the latest data.
    for (h, hs) in post.handles.iter().enumerate() {
        if hs.copies.values().any(|fresh| !fresh) {
            return Some((
                Invariant::NoLostUpdate,
                format!(
                    "after `{action}` handle h{h} exposes a stale copy as valid: {} — a later \
                     read would observe a lost update",
                    hs.render()
                ),
            ));
        }
    }
    // M004 — probe == charge.
    if effects.probe != effects.charged {
        return Some((
            Invariant::ProbeChargeParity,
            format!(
                "`{action}` probed cost {} but charged {} — scheduler estimates would drift \
                 from reality",
                effects.probe, effects.charged
            ),
        ));
    }
    // M005 — monotone staging: transfers never remove validity.
    if matches!(action, Action::Acquire { .. } | Action::Flush { .. }) {
        let h = match action {
            Action::Acquire { handle, .. } | Action::Flush { handle } => handle,
            Action::Finish { .. } => unreachable!(),
        };
        let pre_set = pre.handles[h].valid();
        let post_set = post.handles[h].valid();
        if !pre_set.is_subset(&post_set) {
            let lost: Vec<String> = pre_set
                .difference(&post_set)
                .map(ToString::to_string)
                .collect();
            return Some((
                Invariant::MonotoneStaging,
                format!(
                    "`{action}` removed valid copies ({}) — commit must only add copies, a \
                     transfer is not a move",
                    lost.join(", ")
                ),
            ));
        }
    }
    None
}

/// Exhaustively explores the model by BFS, checking all invariants on
/// every transition. Stops (and minimizes the trace) at the first
/// violation.
pub fn explore(model: &Model, bounds: &Bounds) -> Exploration {
    let initial = model.initial();
    let mut arena: Vec<(State, Option<(usize, Action)>)> = vec![(initial.clone(), None)];
    let mut index: HashMap<State, usize> = HashMap::from([(initial, 0)]);
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut transitions = 0usize;
    let mut capped = false;

    while let Some(i) = queue.pop_front() {
        let state = arena[i].0.clone();
        for action in model.enabled(&state, bounds.max_pending) {
            let (next, effects) = model.step(&state, action);
            transitions += 1;
            if let Some((invariant, detail)) = check_transition(&state, &next, action, &effects) {
                let mut trace = path_to(&arena, i);
                trace.push(action);
                let trace = shrink(model, bounds, &trace, invariant);
                return Exploration {
                    states: arena.len(),
                    transitions,
                    violation: Some(Violation {
                        invariant,
                        detail,
                        trace,
                    }),
                    complete: false,
                };
            }
            match index.entry(next) {
                Entry::Occupied(_) => {}
                Entry::Vacant(slot) => {
                    if arena.len() >= bounds.max_states {
                        capped = true;
                        continue;
                    }
                    let id = arena.len();
                    arena.push((slot.key().clone(), Some((i, action))));
                    slot.insert(id);
                    queue.push_back(id);
                }
            }
        }
    }

    Exploration {
        states: arena.len(),
        transitions,
        violation: None,
        complete: !capped,
    }
}

/// Replays an action trace from the initial state, returning the first
/// violation of `target` it produces (ignoring other invariants), or
/// `None` when the trace is invalid or violation-free.
pub fn replay_violates(
    model: &Model,
    bounds: &Bounds,
    trace: &[Action],
    target: Invariant,
) -> Option<String> {
    let mut state = model.initial();
    for &action in trace {
        if !model.is_enabled(&state, action, bounds.max_pending) {
            return None;
        }
        let (next, effects) = model.step(&state, action);
        if let Some((invariant, detail)) = check_transition(&state, &next, action, &effects) {
            if invariant == target {
                return Some(detail);
            }
        }
        state = next;
    }
    None
}

/// Greedily deletes actions from a violating trace while the violation of
/// `target` persists, until no single deletion survives. BFS traces are
/// already length-minimal; fuzzer traces shrink substantially.
pub fn shrink(model: &Model, bounds: &Bounds, trace: &[Action], target: Invariant) -> Vec<Action> {
    let mut current = trace.to_vec();
    loop {
        let mut improved = false;
        for i in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if replay_violates(model, bounds, &candidate, target).is_some() {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Reconstructs the action path from the initial state to `arena[i]`.
fn path_to(arena: &[(State, Option<(usize, Action)>)], mut i: usize) -> Vec<Action> {
    let mut rev = Vec::new();
    while let Some((parent, action)) = arena[i].1 {
        rev.push(action);
        i = parent;
    }
    rev.reverse();
    rev
}

/// Convenience: the number of enumerated interleavings `explore` will
/// check for a model, without storing traces (used by quick sanity
/// passes).
pub fn state_count(model: &Model, bounds: &Bounds) -> (usize, usize) {
    let ex = explore(model, bounds);
    (ex.states, ex.transitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Mutation;
    use crate::proto::AccessMode;
    use crate::topo::Topo;

    fn model() -> Model {
        let topo = Topo::star("t", 3, 10.0).with_shared(0).with_peer(1, 2, 3.0);
        Model::new(vec![topo.clone(), topo])
    }

    fn bounds() -> Bounds {
        Bounds {
            max_pending: 1,
            max_states: 1_000_000,
        }
    }

    #[test]
    fn faithful_model_explores_clean() {
        let ex = explore(&model(), &bounds());
        assert!(ex.violation.is_none(), "{:?}", ex.violation);
        assert!(ex.complete);
        assert!(ex.states > 100, "suspiciously small: {}", ex.states);
        assert!(ex.transitions > ex.states);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = explore(&model(), &bounds());
        let b = explore(&model(), &bounds());
        assert_eq!((a.states, a.transitions), (b.states, b.transitions));
    }

    #[test]
    fn every_mutation_is_caught_as_its_code_with_minimal_trace() {
        // Known-minimal counterexample lengths per mutation: transfer bugs
        // surface on the first acquire, write bugs need acquire + finish.
        for (mutation, min_len) in [
            (Mutation::SkipWriteInvalidate, 2),
            (Mutation::DropWriteUpdate, 2),
            (Mutation::VanishOnWrite, 2),
            (Mutation::UnderCharge, 1),
            (Mutation::MoveNotCopy, 1),
        ] {
            let m = model().with_mutation(mutation);
            let ex = explore(&m, &bounds());
            let v = ex
                .violation
                .unwrap_or_else(|| panic!("{mutation:?} not caught"));
            assert_eq!(
                v.invariant.code(),
                mutation.expected_code().unwrap(),
                "{mutation:?} caught as wrong code: {v:?}"
            );
            assert_eq!(
                v.trace.len(),
                min_len,
                "{mutation:?} trace not minimal: {:?}",
                v.trace
            );
            // The minimized trace must still reproduce on replay.
            assert!(replay_violates(&m, &bounds(), &v.trace, v.invariant).is_some());
        }
    }

    #[test]
    fn shrink_removes_padding_actions() {
        let m = model().with_mutation(Mutation::VanishOnWrite);
        // A long noisy trace: reads and flushes everywhere, one write pair.
        let noisy = vec![
            Action::Acquire {
                handle: 1,
                dev: 1,
                mode: AccessMode::Read,
                routing: crate::proto::Routing::HostStaged,
            },
            Action::Flush { handle: 1 },
            Action::Finish {
                handle: 1,
                dev: 1,
                mode: AccessMode::Read,
            },
            Action::Acquire {
                handle: 0,
                dev: 2,
                mode: AccessMode::Write,
                routing: crate::proto::Routing::PeerToPeer,
            },
            Action::Flush { handle: 0 },
            Action::Finish {
                handle: 0,
                dev: 2,
                mode: AccessMode::Write,
            },
        ];
        assert!(replay_violates(&m, &bounds(), &noisy, Invariant::ValidSomewhere).is_some());
        let minimal = shrink(&m, &bounds(), &noisy, Invariant::ValidSomewhere);
        assert_eq!(minimal.len(), 2, "{minimal:?}");
    }

    #[test]
    fn bigger_pending_bound_reaches_more_states() {
        // One handle keeps the pending=2 space small enough for debug
        // builds; the full 2-handle bound runs in the release smoke gate.
        let topo = Topo::star("t", 3, 10.0).with_shared(0).with_peer(1, 2, 3.0);
        let one = |p| {
            explore(
                &Model::new(vec![topo.clone()]),
                &Bounds {
                    max_pending: p,
                    max_states: 4_000_000,
                },
            )
        };
        let small = one(1);
        let big = one(2);
        assert!(big.states > small.states);
        assert!(big.violation.is_none() && big.complete);
    }
}
