//! Concrete bounded topologies the model checker explores.
//!
//! A [`Topo`] is the pure image of one platform description for one datum:
//! per-device host-route costs and declared peer-route costs. The runtime
//! derives them from real PDL descriptions (`hetero_rt::data::model_topo`);
//! the builders here construct the same shapes synthetically for in-crate
//! tests.

use crate::proto::CostView;
use std::collections::BTreeMap;

/// Transfer costs of one datum over a small, explicit device topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Topo {
    /// Human-readable topology name (platform + datum it was drawn from).
    pub name: String,
    /// Per device: cost of its host route, `None` when it shares the host
    /// address space.
    pub host_cost: Vec<Option<f64>>,
    /// Declared direct peer routes, keyed by `(from, to)` device index.
    pub peer_cost: BTreeMap<(usize, usize), f64>,
}

impl Topo {
    /// A topology where every device is `cost` away from host memory over
    /// its own link, with no peer interconnects (the PCIe-era default).
    pub fn star(name: impl Into<String>, devices: usize, cost: f64) -> Self {
        Topo {
            name: name.into(),
            host_cost: vec![Some(cost); devices],
            peer_cost: BTreeMap::new(),
        }
    }

    /// Marks `dev` as sharing the host address space (free, zero-byte
    /// staging — a CPU core next to accelerators).
    #[must_use]
    pub fn with_shared(mut self, dev: usize) -> Self {
        self.host_cost[dev] = None;
        self
    }

    /// Declares a bidirectional peer interconnect between `a` and `b`.
    #[must_use]
    pub fn with_peer(mut self, a: usize, b: usize, cost: f64) -> Self {
        self.peer_cost.insert((a, b), cost);
        self.peer_cost.insert((b, a), cost);
        self
    }

    /// Number of devices in the topology.
    pub fn devices(&self) -> usize {
        self.host_cost.len()
    }
}

impl CostView for Topo {
    fn host_cost(&self, dev: usize) -> Option<f64> {
        self.host_cost[dev]
    }

    fn peer_cost(&self, from: usize, to: usize) -> Option<f64> {
        self.peer_cost.get(&(from, to)).copied()
    }
}
