//! # hetero-model — the data layer's coherence protocol, model-checked
//!
//! The runtime's data layer (`hetero_rt::data`) is a real MSI-style
//! coherence protocol: valid sets per handle, single-writer invalidation,
//! host-staged vs peer-to-peer transfer routing. This crate extracts that
//! protocol into a pure, dependency-free transition system and checks it
//! by **exhaustive enumeration** instead of hope:
//!
//! * [`proto`] — the protocol itself: [`proto::plan_acquire`],
//!   [`proto::plan_flush`], [`proto::commit`], [`proto::finish_access`]
//!   over abstract [`proto::Node`]s and a [`proto::CostView`].
//!   `DataRegistry` delegates every transition here, so the verified
//!   model and the shipping implementation are the same code.
//! * [`topo`] — small bounded topologies (shared-memory CPU + `PCIe`
//!   accelerators, `NVLink` peer pairs) the checker explores; the runtime
//!   derives them from real PDL descriptions.
//! * [`model`] — the instrumented model: registry-visible valid sets plus
//!   ground-truth freshness per copy, split acquire/finish actions to
//!   expose interleavings, and named [`model::Mutation`]s (deliberate
//!   bugs) for validating the checker.
//! * [`explore`] — BFS over every reachable state under a bounded number
//!   of outstanding accesses, checking five invariants on every
//!   transition (valid-somewhere, single-writer, no-lost-update,
//!   probe==charge, monotone-staging) and minimizing counterexample
//!   traces.
//!
//! Violations surface through `pdl-analyze` as the stable M-series
//! diagnostic codes (`M001`–`M005`); `pdl model-check` drives the whole
//! thing from the command line. See `docs/MODEL.md`.
//!
//! ```
//! use hetero_model::{explore::{explore, Bounds}, model::Model, topo::Topo};
//!
//! // A CPU sharing host memory plus two PCIe GPUs with an NVLink pair.
//! let topo = Topo::star("demo", 3, 10.0).with_shared(0).with_peer(1, 2, 3.0);
//! let model = Model::new(vec![topo.clone(), topo]);
//! let ex = explore(&model, &Bounds { max_pending: 1, max_states: 1 << 20 });
//! assert!(ex.violation.is_none() && ex.complete);
//! ```

#![forbid(unsafe_code)]

pub mod explore;
pub mod model;
pub mod proto;
pub mod topo;

pub use explore::{explore, Bounds, Exploration, Invariant, Violation};
pub use model::{Action, Model, Mutation, State};
pub use proto::{AccessMode, CostView, Node, Plan, PlanClass, Routing};
pub use topo::Topo;
