//! Parallel reduction (sum) — the canonical tree-shaped task workload,
//! exercising deep dependency chains in the scheduler ablations.

/// FLOPs of an `n`-element sum.
pub fn reduce_flops(n: usize) -> f64 {
    n.saturating_sub(1) as f64
}

/// Sequential reference sum (Kahan-compensated so large test vectors
/// compare reliably against tree order).
pub fn sum_sequential(data: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut c = 0.0;
    for &x in data {
        let y = x - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Pairwise (tree) sum — the order a parallel reduction produces.
pub fn sum_pairwise(data: &[f64]) -> f64 {
    match data.len() {
        0 => 0.0,
        1 => data[0],
        n => {
            let mid = n / 2;
            sum_pairwise(&data[..mid]) + sum_pairwise(&data[mid..])
        }
    }
}

/// Partial sums of `chunks` contiguous blocks — stage one of a two-phase
/// parallel reduction.
pub fn partial_sums(data: &[f64], chunks: usize) -> Vec<f64> {
    crate::vecadd::block_ranges(data.len(), chunks)
        .into_iter()
        .map(|(lo, hi)| sum_sequential(&data[lo..hi]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_agree() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.25 - 3.0).collect();
        let seq = sum_sequential(&data);
        let pair = sum_pairwise(&data);
        assert!((seq - pair).abs() < 1e-9);
    }

    #[test]
    fn two_phase_reduction() {
        let data: Vec<f64> = (0..777).map(|i| (i % 13) as f64).collect();
        let partials = partial_sums(&data, 8);
        assert_eq!(partials.len(), 8);
        let total = sum_sequential(&partials);
        assert!((total - sum_sequential(&data)).abs() < 1e-9);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(sum_sequential(&[]), 0.0);
        assert_eq!(sum_pairwise(&[]), 0.0);
        assert_eq!(sum_pairwise(&[42.0]), 42.0);
        assert_eq!(reduce_flops(0), 0.0);
        assert_eq!(reduce_flops(100), 99.0);
    }
}
