//! Double-precision matrix multiplication (DGEMM): the paper's evaluation
//! kernel (§IV-D: "a double precision matrix multiplication of two
//! 8192x8192 matrices … via calling a highly optimized BLAS library").
//!
//! Implementation variants (naive / blocked / transposed-blocked) stand in
//! for GotoBLAS/CuBLAS at small functional sizes; the analytic
//! [`dgemm_flops`] cost drives the simulator at the paper's 8192² scale.
//!
//! All variants compute `C += A × B` on row-major square matrices, so
//! results are bitwise-comparable accumulation order aside.

/// A square row-major matrix of f64.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Dimension.
    pub n: usize,
    /// Row-major data, `n*n` long.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Matrix filled by `f(row, col)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.data[i * n + j] = f(i, j);
            }
        }
        m
    }

    /// Element accessor.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element mutator.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Max-abs difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.n, other.n);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Size of the matrix payload in bytes.
    pub fn size_bytes(&self) -> f64 {
        (self.n * self.n * std::mem::size_of::<f64>()) as f64
    }
}

/// FLOPs of an `n×n` DGEMM (`2n³`: one multiply + one add per inner step).
pub fn dgemm_flops(n: usize) -> f64 {
    2.0 * (n as f64).powi(3)
}

/// Bytes of one `n×n` f64 matrix.
pub fn matrix_bytes(n: usize) -> f64 {
    (n * n * 8) as f64
}

/// Naive triple loop, the reference implementation.
pub fn dgemm_naive(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let n = a.n;
    assert!(n == b.n && n == c.n, "dimension mismatch");
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a.data[i * n + k] * b.data[k * n + j];
            }
            c.data[i * n + j] += acc;
        }
    }
}

/// Cache-blocked variant (i-k-j loop order inside blocks, good spatial
/// locality on row-major data).
pub fn dgemm_blocked(a: &Matrix, b: &Matrix, c: &mut Matrix, block: usize) {
    let n = a.n;
    assert!(n == b.n && n == c.n, "dimension mismatch");
    let block = block.max(1);
    for ii in (0..n).step_by(block) {
        for kk in (0..n).step_by(block) {
            for jj in (0..n).step_by(block) {
                let i_end = (ii + block).min(n);
                let k_end = (kk + block).min(n);
                let j_end = (jj + block).min(n);
                for i in ii..i_end {
                    for k in kk..k_end {
                        let aik = a.data[i * n + k];
                        if aik == 0.0 {
                            continue;
                        }
                        for j in jj..j_end {
                            c.data[i * n + j] += aik * b.data[k * n + j];
                        }
                    }
                }
            }
        }
    }
}

/// Variant that pre-transposes `B` for unit-stride inner loops — the shape
/// a tuned "expert" implementation takes; numerically identical.
pub fn dgemm_transposed(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let n = a.n;
    assert!(n == b.n && n == c.n, "dimension mismatch");
    let mut bt = vec![0.0; n * n];
    for k in 0..n {
        for j in 0..n {
            bt[j * n + k] = b.data[k * n + j];
        }
    }
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            let arow = &a.data[i * n..(i + 1) * n];
            let bcol = &bt[j * n..(j + 1) * n];
            for k in 0..n {
                acc += arow[k] * bcol[k];
            }
            c.data[i * n + j] += acc;
        }
    }
}

/// Multiplies the `tile×tile` sub-blocks
/// `C[ci..ci+t][cj..cj+t] += A[ci..][k..] × B[k..][cj..]` — the task body of
/// the tiled decomposition used for heterogeneous execution.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_tile(
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    tile: usize,
    ti: usize,
    tj: usize,
    tk: usize,
) {
    let n = a.n;
    let i0 = ti * tile;
    let j0 = tj * tile;
    let k0 = tk * tile;
    let i1 = (i0 + tile).min(n);
    let j1 = (j0 + tile).min(n);
    let k1 = (k0 + tile).min(n);
    for i in i0..i1 {
        for k in k0..k1 {
            let aik = a.data[i * n + k];
            for j in j0..j1 {
                c.data[i * n + j] += aik * b.data[k * n + j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> (Matrix, Matrix) {
        let a = Matrix::from_fn(n, |i, j| (i * 31 + j * 17) as f64 % 7.0 - 3.0);
        let b = Matrix::from_fn(n, |i, j| (i * 13 + j * 29) as f64 % 5.0 - 2.0);
        (a, b)
    }

    #[test]
    fn identity_is_neutral() {
        let (a, _) = sample(16);
        let i = Matrix::identity(16);
        let mut c = Matrix::zeros(16);
        dgemm_naive(&a, &i, &mut c);
        assert_eq!(c.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn variants_agree_with_reference() {
        let (a, b) = sample(33); // deliberately not a multiple of the block
        let mut reference = Matrix::zeros(33);
        dgemm_naive(&a, &b, &mut reference);

        let mut blocked = Matrix::zeros(33);
        dgemm_blocked(&a, &b, &mut blocked, 8);
        assert!(blocked.max_abs_diff(&reference) < 1e-9);

        let mut transposed = Matrix::zeros(33);
        dgemm_transposed(&a, &b, &mut transposed);
        assert!(transposed.max_abs_diff(&reference) < 1e-9);
    }

    #[test]
    fn accumulates_into_c() {
        let (a, b) = sample(8);
        let mut c = Matrix::from_fn(8, |i, j| (i + j) as f64);
        let pre = c.clone();
        dgemm_naive(&a, &b, &mut c);
        let mut product = Matrix::zeros(8);
        dgemm_naive(&a, &b, &mut product);
        for i in 0..8 {
            for j in 0..8 {
                let expect = pre.get(i, j) + product.get(i, j);
                assert!((c.get(i, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tiles_cover_the_full_product() {
        let (a, b) = sample(20);
        let mut reference = Matrix::zeros(20);
        dgemm_naive(&a, &b, &mut reference);

        let tile = 6; // 20/6 → ragged last tile
        let tiles = 20usize.div_ceil(tile);
        let mut c = Matrix::zeros(20);
        for ti in 0..tiles {
            for tj in 0..tiles {
                for tk in 0..tiles {
                    dgemm_tile(&a, &b, &mut c, tile, ti, tj, tk);
                }
            }
        }
        assert!(c.max_abs_diff(&reference) < 1e-9);
    }

    #[test]
    fn flop_count() {
        assert_eq!(dgemm_flops(2), 16.0);
        // The paper's 8192³×2 ≈ 1.1 TFLOP.
        assert!((dgemm_flops(8192) - 1.0995e12).abs() < 1e9);
        assert_eq!(matrix_bytes(8192), 8192.0 * 8192.0 * 8.0);
    }

    #[test]
    fn block_size_edge_cases() {
        let (a, b) = sample(8);
        let mut reference = Matrix::zeros(8);
        dgemm_naive(&a, &b, &mut reference);
        for block in [1, 3, 8, 100] {
            let mut c = Matrix::zeros(8);
            dgemm_blocked(&a, &b, &mut c, block);
            assert!(c.max_abs_diff(&reference) < 1e-9, "block={block}");
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(4);
        let b = Matrix::zeros(5);
        let mut c = Matrix::zeros(4);
        dgemm_naive(&a, &b, &mut c);
    }
}
