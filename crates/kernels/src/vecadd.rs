//! Vector addition — the paper's running annotation example (§IV-A
//! `void vectoradd(double *A, double *B)` with `A: readwrite, B: read`).

/// FLOPs of an `n`-element vector addition.
pub fn vecadd_flops(n: usize) -> f64 {
    n as f64
}

/// Bytes of an `n`-element f64 vector.
pub fn vector_bytes(n: usize) -> f64 {
    (n * 8) as f64
}

/// `A[i] += B[i]` — the paper's signature (A readwrite, B read).
pub fn vecadd(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Chunked variant: adds only `B[lo..hi]` into `A[lo..hi]` — the task body
/// of a BLOCK-distributed decomposition (`(A:BLOCK:N, B:BLOCK:N)` in the
/// paper's execute annotation).
pub fn vecadd_chunk(a: &mut [f64], b: &[f64], lo: usize, hi: usize) {
    assert!(lo <= hi && hi <= a.len() && a.len() == b.len());
    for i in lo..hi {
        a[i] += b[i];
    }
}

/// Splits `0..n` into `chunks` contiguous ranges of near-equal size
/// (BLOCK distribution).
pub fn block_ranges(n: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.max(1);
    let base = n / chunks;
    let rem = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut lo = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < rem);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds_elementwise() {
        let mut a = vec![1.0, 2.0, 3.0];
        let b = vec![10.0, 20.0, 30.0];
        vecadd(&mut a, &b);
        assert_eq!(a, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn chunks_compose_to_full_add() {
        let n = 101;
        let mut full: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
        let mut chunked = full.clone();
        vecadd(&mut full, &b);
        for (lo, hi) in block_ranges(n, 7) {
            vecadd_chunk(&mut chunked, &b, lo, hi);
        }
        assert_eq!(full, chunked);
    }

    #[test]
    fn block_ranges_partition() {
        for (n, chunks) in [(10, 3), (0, 4), (7, 7), (5, 10), (100, 1)] {
            let ranges = block_ranges(n, chunks);
            assert_eq!(ranges.len(), chunks.max(1));
            // Contiguous, ordered, covering exactly 0..n.
            let mut expect_lo = 0;
            for &(lo, hi) in &ranges {
                assert_eq!(lo, expect_lo);
                assert!(hi >= lo);
                expect_lo = hi;
            }
            assert_eq!(expect_lo, n);
            // Near-equal: sizes differ by at most 1.
            let sizes: Vec<usize> = ranges.iter().map(|(l, h)| h - l).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "n={n} chunks={chunks} sizes={sizes:?}");
        }
    }

    #[test]
    fn costs() {
        assert_eq!(vecadd_flops(1000), 1000.0);
        assert_eq!(vector_bytes(1000), 8000.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        vecadd(&mut [1.0], &[1.0, 2.0]);
    }
}
