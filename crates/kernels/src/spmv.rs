//! Sparse matrix–vector multiplication (CSR) — a memory-bound, irregular
//! workload complementing the dense kernels; used by the scheduler
//! ablations to exercise non-uniform task costs.

/// A sparse matrix in compressed-sparse-row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row pointers, `rows + 1` long.
    pub row_ptr: Vec<usize>,
    /// Column indices, one per non-zero.
    pub col_idx: Vec<usize>,
    /// Non-zero values.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets. Duplicate
    /// coordinates are summed; triplets may arrive in any order.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut per_row: Vec<std::collections::BTreeMap<usize, f64>> =
            vec![Default::default(); rows];
        for (r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
            *per_row[r].entry(c).or_insert(0.0) += v;
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in per_row {
            for (c, v) in row {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// A tridiagonal test matrix (2 on the diagonal, -1 off-diagonal) — the
    /// 1D Poisson operator.
    pub fn poisson_1d(n: usize) -> Self {
        let mut t = Vec::with_capacity(3 * n);
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        Self::from_triplets(n, n, t)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length");
        assert_eq!(y.len(), self.rows, "y length");
        self.spmv_rows(x, y, 0, self.rows);
    }

    /// `y[lo..hi] = (A x)[lo..hi]` — row-strip task body.
    pub fn spmv_rows(&self, x: &[f64], y: &mut [f64], lo: usize, hi: usize) {
        assert!(lo <= hi && hi <= self.rows);
        for (r, out) in y.iter_mut().enumerate().take(hi).skip(lo) {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
    }

    /// FLOPs of one `SpMV` (2 per stored non-zero).
    pub fn spmv_flops(&self) -> f64 {
        2.0 * self.nnz() as f64
    }

    /// FLOPs of the row strip `[lo, hi)`.
    pub fn strip_flops(&self, lo: usize, hi: usize) -> f64 {
        2.0 * (self.row_ptr[hi] - self.row_ptr[lo]) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplet_construction() {
        let m = CsrMatrix::from_triplets(2, 3, [(0, 1, 5.0), (1, 0, 3.0), (0, 1, 2.0)]);
        assert_eq!(m.nnz(), 2); // duplicate (0,1) summed
        assert_eq!(m.row_ptr, vec![0, 1, 2]);
        assert_eq!(m.col_idx, vec![1, 0]);
        assert_eq!(m.values, vec![7.0, 3.0]);
    }

    #[test]
    fn poisson_spmv() {
        let m = CsrMatrix::poisson_1d(5);
        assert_eq!(m.nnz(), 13); // 5 diag + 2*4 off-diag
        let x = vec![1.0; 5];
        let mut y = vec![0.0; 5];
        m.spmv(&x, &mut y);
        // Interior rows: 2 - 1 - 1 = 0; boundary rows: 2 - 1 = 1.
        assert_eq!(y, vec![1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn strips_compose() {
        let m = CsrMatrix::poisson_1d(100);
        let x: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut full = vec![0.0; 100];
        m.spmv(&x, &mut full);
        let mut strips = vec![0.0; 100];
        for (lo, hi) in crate::vecadd::block_ranges(100, 7) {
            m.spmv_rows(&x, &mut strips, lo, hi);
        }
        assert_eq!(full, strips);
    }

    #[test]
    fn flop_accounting() {
        let m = CsrMatrix::poisson_1d(10);
        assert_eq!(m.spmv_flops(), 2.0 * m.nnz() as f64);
        let total: f64 = crate::vecadd::block_ranges(10, 3)
            .into_iter()
            .map(|(lo, hi)| m.strip_flops(lo, hi))
            .sum();
        assert_eq!(total, m.spmv_flops());
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::from_triplets(3, 3, [(0, 0, 1.0), (2, 2, 1.0)]);
        let x = vec![1.0, 1.0, 1.0];
        let mut y = vec![9.0; 3];
        m.spmv(&x, &mut y);
        assert_eq!(y, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_triplet_panics() {
        CsrMatrix::from_triplets(2, 2, [(2, 0, 1.0)]);
    }
}
