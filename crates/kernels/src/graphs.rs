//! Task-graph builders for the paper's workloads.
//!
//! These produce [`hetero_rt::graph::TaskGraph`]s shaped exactly like the
//! programs Cascabel generates: tiled DGEMM (the §IV-D experiment),
//! BLOCK-distributed vecadd (the §IV-A example), strip-decomposed Jacobi and
//! two-phase reduction. Each task carries its analytic FLOP cost and data
//! accesses, so the same graph runs on any PDL-described machine.

use crate::dgemm::{dgemm_flops, matrix_bytes};
use crate::reduce::reduce_flops;
use crate::stencil::{grid_bytes, stencil_flops};
use crate::vecadd::{block_ranges, vecadd_flops, vector_bytes};
use hetero_rt::data::{AccessMode, HandleId};
use hetero_rt::graph::TaskGraph;
use hetero_rt::task::{Codelet, DataAccess, Variant};

fn read(handle: HandleId) -> DataAccess {
    DataAccess {
        handle,
        mode: AccessMode::Read,
    }
}

fn rw(handle: HandleId) -> DataAccess {
    DataAccess {
        handle,
        mode: AccessMode::ReadWrite,
    }
}

/// The DGEMM codelet with the paper's three implementations:
/// the serial input task (`GotoBLAS`, `x86`), the `CuBLAS` GPU variant and an
/// `OpenCL` variant.
pub fn dgemm_codelet() -> Codelet {
    Codelet::new("I_dgemm")
        .with_variant(Variant::new("x86"))
        .with_variant(Variant::new("gpu").requiring("Cuda"))
        .with_variant(Variant::new("gpu").requiring("OpenCL").with_speedup(0.85))
}

/// Builds the tiled DGEMM task graph: `(n/tile)³` tasks, each multiplying a
/// `tile×tile` block triple `C[i][j] += A[i][k] × B[k][j]`. Tiles of A, B
/// and C are separate data handles, so the runtime moves only what a task
/// touches — the vertical data-movement pattern of §III-A.
///
/// `execution_group` optionally pins all tasks to a logic group.
pub fn dgemm_graph(n: usize, tile: usize, execution_group: Option<String>) -> TaskGraph {
    assert!(tile > 0 && tile <= n, "tile must be in 1..=n");
    let tiles = n.div_ceil(tile);
    let mut g = TaskGraph::with_capacity(tiles * tiles * tiles);
    let codelet = g.add_codelet(dgemm_codelet());
    let tile_bytes = matrix_bytes(tile.min(n));

    let mut a = Vec::with_capacity(tiles * tiles);
    let mut b = Vec::with_capacity(tiles * tiles);
    let mut c = Vec::with_capacity(tiles * tiles);
    for i in 0..tiles {
        for j in 0..tiles {
            a.push(g.register_data(format!("A[{i}][{j}]"), tile_bytes));
        }
    }
    for i in 0..tiles {
        for j in 0..tiles {
            b.push(g.register_data(format!("B[{i}][{j}]"), tile_bytes));
        }
    }
    for i in 0..tiles {
        for j in 0..tiles {
            c.push(g.register_data(format!("C[{i}][{j}]"), tile_bytes));
        }
    }

    let tile_flops = dgemm_flops(tile);
    for i in 0..tiles {
        for j in 0..tiles {
            for k in 0..tiles {
                g.submit(
                    codelet,
                    format!("dgemm[{i},{j},{k}]"),
                    tile_flops,
                    vec![
                        read(a[i * tiles + k]),
                        read(b[k * tiles + j]),
                        rw(c[i * tiles + j]),
                    ],
                    execution_group.clone(),
                );
            }
        }
    }
    g
}

/// Builds the single-task DGEMM graph: the *serial input program* of the
/// paper's experiment — one 8192×8192 `GotoBLAS` call, CPU-only.
pub fn dgemm_serial_graph(n: usize) -> TaskGraph {
    let mut g = TaskGraph::new();
    // The serial input program has only the CPU implementation.
    let codelet = g.add_codelet(Codelet::new("I_dgemm").with_variant(Variant::new("x86")));
    let a = g.register_data("A", matrix_bytes(n));
    let b = g.register_data("B", matrix_bytes(n));
    let c = g.register_data("C", matrix_bytes(n));
    g.submit(
        codelet,
        "dgemm",
        dgemm_flops(n),
        vec![read(a), read(b), rw(c)],
        None,
    );
    g
}

/// The vecadd codelet (paper §IV-A): x86 fall-back plus GPU offload.
pub fn vecadd_codelet() -> Codelet {
    Codelet::new("I_vecadd")
        .with_variant(Variant::new("x86"))
        .with_variant(Variant::new("gpu").requiring("OpenCL"))
}

/// Builds the BLOCK-distributed vecadd graph of the paper's execute
/// annotation `(A:BLOCK:N, B:BLOCK:N)`: `chunks` independent tasks, each
/// adding one block of B into the matching block of A.
pub fn vecadd_graph(n: usize, chunks: usize, execution_group: Option<String>) -> TaskGraph {
    let mut g = TaskGraph::with_capacity(chunks);
    let codelet = g.add_codelet(vecadd_codelet());
    for (idx, (lo, hi)) in block_ranges(n, chunks).into_iter().enumerate() {
        let len = hi - lo;
        let a = g.register_data(format!("A[{idx}]"), vector_bytes(len));
        let b = g.register_data(format!("B[{idx}]"), vector_bytes(len));
        g.submit(
            codelet,
            format!("vecadd[{idx}]"),
            vecadd_flops(len),
            vec![rw(a), read(b)],
            execution_group.clone(),
        );
    }
    g
}

/// Builds a strip-decomposed Jacobi graph: `sweeps` iterations over
/// `strips` horizontal strips with double buffering (each sweep reads the
/// previous buffer — its own strip plus halo neighbours — and writes the
/// next buffer). Within one sweep all strips are independent; across sweeps
/// the halo reads create the classic neighbour dependencies.
pub fn stencil_graph(n: usize, strips: usize, sweeps: usize) -> TaskGraph {
    let mut g = TaskGraph::with_capacity(strips.max(1) * sweeps);
    let codelet = g.add_codelet(
        Codelet::new("I_jacobi")
            .with_variant(Variant::new("x86"))
            .with_variant(Variant::new("gpu").requiring("OpenCL")),
    );
    let strips = strips.max(1);
    let strip_bytes = grid_bytes(n) / strips as f64;
    let buf = |g: &mut TaskGraph, name: &str| -> Vec<HandleId> {
        (0..strips)
            .map(|s| g.register_data(format!("{name}[{s}]"), strip_bytes))
            .collect()
    };
    let buffers = [buf(&mut g, "even"), buf(&mut g, "odd")];
    let strip_flops = stencil_flops(n) / strips as f64;

    for sweep in 0..sweeps {
        let src = &buffers[sweep % 2];
        let dst = &buffers[(sweep + 1) % 2];
        for s in 0..strips {
            let mut accesses = vec![
                read(src[s]),
                DataAccess {
                    handle: dst[s],
                    mode: AccessMode::Write,
                },
            ];
            if s > 0 {
                accesses.push(read(src[s - 1]));
            }
            if s + 1 < strips {
                accesses.push(read(src[s + 1]));
            }
            g.submit(
                codelet,
                format!("jacobi[{sweep},{s}]"),
                strip_flops,
                accesses,
                None,
            );
        }
    }
    g
}

/// Builds a row-strip `SpMV` graph over a 1D Poisson matrix: `strips`
/// independent tasks with *non-uniform* costs (boundary strips have fewer
/// non-zeros), exercising load balancing in the scheduler ablations.
pub fn spmv_graph(n: usize, strips: usize) -> TaskGraph {
    let matrix = crate::spmv::CsrMatrix::poisson_1d(n);
    let mut g = TaskGraph::with_capacity(strips.max(1));
    let codelet = g.add_codelet(
        Codelet::new("I_spmv")
            .with_variant(Variant::new("x86"))
            .with_variant(Variant::new("gpu").requiring("OpenCL")),
    );
    let x = g.register_data("x", vector_bytes(n));
    for (idx, (lo, hi)) in block_ranges(n, strips.max(1)).into_iter().enumerate() {
        let y_strip = g.register_data(format!("y[{idx}]"), vector_bytes(hi - lo));
        g.submit(
            codelet,
            format!("spmv[{idx}]"),
            matrix.strip_flops(lo, hi),
            vec![
                read(x),
                DataAccess {
                    handle: y_strip,
                    mode: AccessMode::Write,
                },
            ],
            None,
        );
    }
    g
}

/// Builds a two-phase reduction graph: `chunks` partial sums feeding one
/// combine task.
pub fn reduce_graph(n: usize, chunks: usize) -> TaskGraph {
    let mut g = TaskGraph::with_capacity(chunks.max(1) + 1);
    let codelet = g.add_codelet(
        Codelet::new("I_reduce")
            .with_variant(Variant::new("x86"))
            .with_variant(Variant::new("gpu").requiring("OpenCL")),
    );
    let chunks = chunks.max(1);
    let result = g.register_data("result", 8.0);
    let mut partials = Vec::with_capacity(chunks);
    for (idx, (lo, hi)) in block_ranges(n, chunks).into_iter().enumerate() {
        let len = hi - lo;
        let input = g.register_data(format!("in[{idx}]"), vector_bytes(len));
        let partial = g.register_data(format!("part[{idx}]"), 8.0);
        g.submit(
            codelet,
            format!("partial[{idx}]"),
            reduce_flops(len),
            vec![
                read(input),
                DataAccess {
                    handle: partial,
                    mode: AccessMode::Write,
                },
            ],
            None,
        );
        partials.push(partial);
    }
    let mut accesses: Vec<DataAccess> = partials.into_iter().map(read).collect();
    accesses.push(DataAccess {
        handle: result,
        mode: AccessMode::Write,
    });
    g.submit(codelet, "combine", reduce_flops(chunks), accesses, None);
    g
}

/// Builds a repeated wide fork-join graph: `stages` rounds of `width`
/// independent tasks, each round funnelled through a join task before the
/// next round forks again.
///
/// This is the scheduler stress shape — every stage dumps `width` ready
/// tasks into the engine at once and the join serialises them back — used
/// by the `engine_scaling` bench to compare the work-stealing and
/// single-queue thread engines. Per-task cost is a nominal `flops` so the
/// graph also simulates meaningfully.
///
/// `execution_group` optionally pins all tasks to a logic group.
pub fn fork_join_graph(width: usize, stages: usize, execution_group: Option<String>) -> TaskGraph {
    let width = width.max(1);
    let stages = stages.max(1);
    let mut g = TaskGraph::with_capacity(stages * (width + 1));
    let codelet = g.add_codelet(Codelet::new("I_forkjoin").with_variant(Variant::new("x86")));
    let flops = 1000.0;

    let mut join_prev: Option<HandleId> = None;
    for s in 0..stages {
        let join = g.register_data(format!("join[{s}]"), 8.0);
        let mut partials = Vec::with_capacity(width);
        for i in 0..width {
            let partial = g.register_data(format!("part[{s}][{i}]"), 8.0);
            let mut accesses = vec![DataAccess {
                handle: partial,
                mode: AccessMode::Write,
            }];
            if let Some(prev) = join_prev {
                accesses.push(read(prev));
            }
            g.submit(
                codelet,
                format!("fork[{s}][{i}]"),
                flops,
                accesses,
                execution_group.clone(),
            );
            partials.push(partial);
        }
        let mut accesses: Vec<DataAccess> = partials.into_iter().map(read).collect();
        accesses.push(DataAccess {
            handle: join,
            mode: AccessMode::Write,
        });
        g.submit(
            codelet,
            format!("join[{s}]"),
            flops,
            accesses,
            execution_group.clone(),
        );
        join_prev = Some(join);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgemm_graph_shape() {
        let g = dgemm_graph(8192, 2048, None);
        let tiles = 8192 / 2048; // 4
        assert_eq!(g.len(), tiles * tiles * tiles);
        assert_eq!(g.data.len(), 3 * tiles * tiles);
        // Total flops preserved by the decomposition.
        assert!((g.total_flops() - dgemm_flops(8192)).abs() < 1.0);
        // k-chain on each C tile: critical path = tiles × tile_flops.
        assert!((g.critical_path_flops() - (tiles as f64) * dgemm_flops(2048)).abs() < 1.0);
    }

    #[test]
    fn dgemm_ragged_tiles() {
        let g = dgemm_graph(100, 30, None); // 4 tiles per dim, last ragged
        assert_eq!(g.len(), 4 * 4 * 4);
    }

    #[test]
    fn dgemm_serial_is_one_task() {
        let g = dgemm_serial_graph(8192);
        assert_eq!(g.len(), 1);
        assert_eq!(g.total_flops(), dgemm_flops(8192));
        assert!(!g.codelets[0].variants.iter().any(|v| v.arch == "gpu"));
    }

    #[test]
    fn vecadd_graph_is_embarrassingly_parallel() {
        let g = vecadd_graph(1_000_000, 8, Some("gpus".into()));
        assert_eq!(g.len(), 8);
        assert_eq!(g.sources().len(), 8);
        assert!((g.total_flops() - 1_000_000.0).abs() < 1e-9);
        assert!(g
            .tasks
            .iter()
            .all(|t| t.execution_group.as_deref() == Some("gpus")));
    }

    #[test]
    fn stencil_graph_has_wavefront_deps() {
        let g = stencil_graph(1024, 4, 3);
        assert_eq!(g.len(), 12);
        // First sweep: all strips independent (double buffering).
        assert_eq!(g.sources().len(), 4);
        // Sweep 1 strip 1 depends on sweep 0 strips 0,1,2: it reads their
        // freshly written buffer entries (own strip + both halos).
        let t = hetero_rt::task::TaskId(4 + 1);
        let deps = g.dependencies(t);
        assert_eq!(deps.len(), 3, "{deps:?}");
        // Edge strip of sweep 1 has only 2 upstream writers.
        let edge = hetero_rt::task::TaskId(4);
        assert_eq!(g.dependencies(edge).len(), 2);
    }

    #[test]
    fn reduce_graph_fans_in() {
        let g = reduce_graph(1_000_000, 16);
        assert_eq!(g.len(), 17);
        let combine = hetero_rt::task::TaskId(16);
        assert_eq!(g.dependencies(combine).len(), 16);
        assert_eq!(g.dependents(combine).len(), 0);
    }

    #[test]
    fn spmv_graph_costs_are_nonuniform_but_total() {
        let g = spmv_graph(1000, 8);
        assert_eq!(g.len(), 8);
        assert_eq!(g.sources().len(), 8); // strips independent
        let m = crate::spmv::CsrMatrix::poisson_1d(1000);
        assert_eq!(g.total_flops(), m.spmv_flops());
        // Boundary strips are lighter than interior strips.
        let costs: Vec<f64> = g.tasks.iter().map(|t| t.flops).collect();
        assert!(costs[0] < costs[3]);
    }

    #[test]
    fn fork_join_shape() {
        let width = 6;
        let stages = 4;
        let g = fork_join_graph(width, stages, Some("cpus".into()));
        assert_eq!(g.tasks.len(), stages * (width + 1));
        for s in 0..stages {
            let join = &g.tasks[s * (width + 1) + width];
            assert_eq!(join.label, format!("join[{s}]"));
            // The join waits on every fork of its stage.
            assert_eq!(g.dependencies(join.id).len(), width);
            // Stage s forks wait on the previous join (and nothing else).
            for i in 0..width {
                let fork = &g.tasks[s * (width + 1) + i];
                let deps = g.dependencies(fork.id);
                if s == 0 {
                    assert!(deps.is_empty());
                } else {
                    assert_eq!(deps, vec![g.tasks[(s - 1) * (width + 1) + width].id]);
                }
                assert_eq!(fork.execution_group.as_deref(), Some("cpus"));
            }
        }
    }

    #[test]
    fn all_workload_codelets_have_cpu_fallback() {
        // Paper §IV-C: "At least one sequential fall-back variant must be
        // provided by the application developer."
        for g in [
            dgemm_graph(64, 32, None),
            vecadd_graph(100, 4, None),
            stencil_graph(64, 2, 2),
            reduce_graph(100, 4),
            spmv_graph(100, 4),
            fork_join_graph(8, 3, None),
        ] {
            for c in &g.codelets {
                assert!(c.has_cpu_fallback(), "{}", c.name);
            }
        }
    }

    #[test]
    #[should_panic(expected = "tile must be")]
    fn zero_tile_panics() {
        dgemm_graph(64, 0, None);
    }
}
