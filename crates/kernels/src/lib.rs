//! # kernels — computational kernels with implementation variants
//!
//! The functional workloads of the reproduction: DGEMM (the paper's §IV-D
//! evaluation kernel), vecadd (the §IV-A annotation example), a Jacobi
//! stencil and a reduction. Each module provides real implementations
//! (verified against references), analytic FLOP/byte cost functions for the
//! simulator, and [`graphs`] builds the corresponding
//! [`hetero_rt::graph::TaskGraph`]s shaped like Cascabel's generated
//! programs.
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dgemm;
pub mod graphs;
pub mod reduce;
pub mod spmv;
pub mod stencil;
pub mod vecadd;
