//! 2D 5-point Jacobi stencil — a second domain workload (memory-bound, the
//! opposite regime from DGEMM) for the portability sweep.

/// FLOPs per sweep of an `n×n` 5-point Jacobi update (4 adds + 1 multiply
/// per interior point).
pub fn stencil_flops(n: usize) -> f64 {
    if n < 3 {
        return 0.0;
    }
    5.0 * ((n - 2) as f64).powi(2)
}

/// Bytes of the `n×n` grid.
pub fn grid_bytes(n: usize) -> f64 {
    (n * n * 8) as f64
}

/// One Jacobi sweep: `dst[i][j] = 0.25*(src up+down+left+right)` on interior
/// points; boundary copied.
pub fn jacobi_sweep(src: &[f64], dst: &mut [f64], n: usize) {
    assert_eq!(src.len(), n * n);
    assert_eq!(dst.len(), n * n);
    dst.copy_from_slice(src);
    for i in 1..n.saturating_sub(1) {
        for j in 1..n - 1 {
            dst[i * n + j] = 0.25
                * (src[(i - 1) * n + j]
                    + src[(i + 1) * n + j]
                    + src[i * n + j - 1]
                    + src[i * n + j + 1]);
        }
    }
}

/// Sweeps rows `[row_lo, row_hi)` only (interior rows of a horizontal strip
/// decomposition). The caller provides the full `src` including halo rows.
pub fn jacobi_sweep_rows(src: &[f64], dst: &mut [f64], n: usize, row_lo: usize, row_hi: usize) {
    assert!(row_lo >= 1 && row_hi <= n.saturating_sub(1) && row_lo <= row_hi);
    for i in row_lo..row_hi {
        for j in 1..n - 1 {
            dst[i * n + j] = 0.25
                * (src[(i - 1) * n + j]
                    + src[(i + 1) * n + j]
                    + src[i * n + j - 1]
                    + src[i * n + j + 1]);
        }
    }
}

/// Max-abs residual between two grids.
pub fn residual(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_edge_grid(n: usize) -> Vec<f64> {
        let mut g = vec![0.0; n * n];
        g[..n].fill(100.0); // top edge hot
        g
    }

    #[test]
    fn sweep_averages_neighbours() {
        let n = 3;
        let src = hot_edge_grid(n);
        let mut dst = vec![0.0; n * n];
        jacobi_sweep(&src, &mut dst, n);
        // Center = average of (top=100, bottom=0, left=0, right=0) = 25.
        assert_eq!(dst[n + 1], 25.0);
        // Boundary preserved.
        assert_eq!(dst[0], 100.0);
        assert_eq!(dst[2 * n], 0.0);
    }

    #[test]
    fn converges_toward_smoothness() {
        let n = 16;
        let mut a = hot_edge_grid(n);
        let mut b = vec![0.0; n * n];
        let mut last_delta = f64::INFINITY;
        for _ in 0..50 {
            jacobi_sweep(&a, &mut b, n);
            let delta = residual(&a, &b);
            assert!(delta <= last_delta + 1e-12, "not contracting");
            last_delta = delta;
            std::mem::swap(&mut a, &mut b);
        }
        assert!(last_delta < 1.0);
    }

    #[test]
    fn strip_decomposition_matches_full_sweep() {
        let n = 12;
        let src = hot_edge_grid(n);
        let mut full = vec![0.0; n * n];
        jacobi_sweep(&src, &mut full, n);

        let mut strips = src.clone();
        // Interior rows 1..n-1 split into 3 strips.
        let bounds = [(1, 4), (4, 8), (8, n - 1)];
        for (lo, hi) in bounds {
            jacobi_sweep_rows(&src, &mut strips, n, lo, hi);
        }
        assert_eq!(residual(&full, &strips), 0.0);
    }

    #[test]
    fn costs() {
        assert_eq!(stencil_flops(2), 0.0);
        assert_eq!(stencil_flops(4), 5.0 * 4.0);
        assert_eq!(grid_bytes(4), 128.0);
    }
}
