//! A descriptor catalog: named PDL descriptors, persisted as XML files.
//!
//! Figure 1 of the paper shows tools drawing on "PDL descriptors for
//! various platforms"; a real deployment needs somewhere to keep them. The
//! catalog stores platforms by name, persists each as one `<name>.pdl.xml`
//! file, and answers simple capability queries ("platforms with a GPU
//! worker") so tools can pick a target descriptor.

use pdl_core::platform::Platform;
use pdl_query::capability::RequirementSet;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Catalog errors.
#[derive(Debug)]
pub enum CatalogError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A stored document failed to parse/validate/decode.
    Xml {
        /// The offending file.
        file: PathBuf,
        /// The underlying error.
        source: pdl_xml::XmlError,
    },
    /// Name collision on insert.
    Duplicate(String),
    /// Lookup miss.
    NotFound(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "catalog I/O error: {e}"),
            CatalogError::Xml { file, source } => {
                write!(f, "catalog entry {} is invalid: {source}", file.display())
            }
            CatalogError::Duplicate(n) => write!(f, "catalog already contains {n:?}"),
            CatalogError::NotFound(n) => write!(f, "catalog has no platform named {n:?}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Io(e)
    }
}

/// File suffix of stored descriptors.
pub const FILE_SUFFIX: &str = ".pdl.xml";

/// An in-memory catalog of named platform descriptors.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    entries: BTreeMap<String, Platform>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// A catalog preloaded with the synthetic platform library.
    pub fn with_builtin_platforms() -> Self {
        let mut c = Self::new();
        for p in [
            crate::synthetic::xeon_x5550_host(),
            crate::synthetic::xeon_2gpu_testbed(),
            crate::synthetic::cell_be(),
            crate::synthetic::gpgpu_cluster(4, 2),
            crate::synthetic::numa_host(2, 4),
        ] {
            c.insert(p).expect("builtin names are unique");
        }
        c
    }

    /// Inserts a platform under its own name.
    pub fn insert(&mut self, platform: Platform) -> Result<(), CatalogError> {
        if self.entries.contains_key(&platform.name) {
            return Err(CatalogError::Duplicate(platform.name.clone()));
        }
        self.entries.insert(platform.name.clone(), platform);
        Ok(())
    }

    /// Replaces (or inserts) a platform under its own name, returning any
    /// previous entry.
    pub fn upsert(&mut self, platform: Platform) -> Option<Platform> {
        self.entries.insert(platform.name.clone(), platform)
    }

    /// Looks up by exact name.
    pub fn get(&self, name: &str) -> Option<&Platform> {
        self.entries.get(name)
    }

    /// Removes an entry.
    pub fn remove(&mut self, name: &str) -> Option<Platform> {
        self.entries.remove(name)
    }

    /// Number of stored descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// All entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Platform)> {
        self.entries.iter().map(|(n, p)| (n.as_str(), p))
    }

    /// Platforms on which the given requirement set is satisfiable by at
    /// least one PU — "which of my descriptors can run this variant?".
    pub fn supporting<'a>(
        &'a self,
        requirements: &'a RequirementSet,
    ) -> impl Iterator<Item = (&'a str, &'a Platform)> + 'a {
        self.iter().filter(|(_, p)| requirements.supported_by(p))
    }

    /// Publishes every entry into a registry (sorted by name, so version
    /// assignment is deterministic), returning the publish outcomes.
    /// Re-publishing an unchanged catalog is a no-op for every entry.
    pub fn publish_into(
        &self,
        registry: &pdl_registry::Registry,
    ) -> Vec<pdl_registry::PublishOutcome> {
        self.entries.values().map(|p| registry.publish(p)).collect()
    }

    /// Persists every entry as `<dir>/<name>.pdl.xml`.
    pub fn save_to_dir(&self, dir: &Path) -> Result<(), CatalogError> {
        std::fs::create_dir_all(dir)?;
        for (name, platform) in &self.entries {
            let file = dir.join(format!("{}{FILE_SUFFIX}", sanitize(name)));
            std::fs::write(&file, pdl_xml::to_xml(platform))?;
        }
        Ok(())
    }

    /// Loads every `*.pdl.xml` in a directory. Later duplicates (same
    /// platform name from different files) are rejected.
    pub fn load_from_dir(dir: &Path) -> Result<Self, CatalogError> {
        let mut c = Self::new();
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| n.ends_with(FILE_SUFFIX))
                    .unwrap_or(false)
            })
            .collect();
        files.sort();
        for file in files {
            let xml = std::fs::read_to_string(&file)?;
            let platform = pdl_xml::from_xml(&xml).map_err(|source| CatalogError::Xml {
                file: file.clone(),
                source,
            })?;
            c.insert(platform)?;
        }
        Ok(c)
    }
}

/// A registry seeded with the synthetic platform library, each builtin at
/// version `1.0.0`.
pub fn builtin_registry() -> pdl_registry::Registry {
    let registry = pdl_registry::Registry::new();
    Catalog::with_builtin_platforms().publish_into(&registry);
    registry
}

/// Makes a platform name filesystem-safe.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_query::capability::{opencl_gpu_requirements, Requirement};

    #[test]
    fn builtin_catalog() {
        let c = Catalog::with_builtin_platforms();
        assert_eq!(c.len(), 5);
        assert!(c.get("cell-be").is_some());
        assert!(c.get("xeon-x5550-gtx480-gtx285").is_some());
        assert!(c.get("imaginary").is_none());
        let names: Vec<&str> = c.names().collect();
        assert!(names.windows(2).all(|w| w[0] < w[1])); // sorted
    }

    #[test]
    fn duplicate_insert_rejected_but_upsert_allowed() {
        let mut c = Catalog::new();
        let p = crate::synthetic::cell_be();
        c.insert(p.clone()).unwrap();
        assert!(matches!(
            c.insert(p.clone()),
            Err(CatalogError::Duplicate(_))
        ));
        assert!(c.upsert(p).is_some());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capability_search() {
        let c = Catalog::with_builtin_platforms();
        // Platforms with an OpenCL GPU holding ≥ 1 GB.
        let gpu_reqs = opencl_gpu_requirements(1e9);
        let gpu_platforms: Vec<&str> = c.supporting(&gpu_reqs).map(|(n, _)| n).collect();
        assert!(gpu_platforms.contains(&"xeon-x5550-gtx480-gtx285"));
        assert!(!gpu_platforms.contains(&"cell-be"));
        assert!(!gpu_platforms.contains(&"xeon-x5550-8core"));

        // Platforms with SPE workers.
        let spe = RequirementSet::new().with(Requirement::Architecture("spe".into()));
        let spe_platforms: Vec<&str> = c.supporting(&spe).map(|(n, _)| n).collect();
        assert_eq!(spe_platforms, ["cell-be"]);
    }

    #[test]
    fn directory_round_trip() {
        let dir = std::env::temp_dir().join(format!("pdl-catalog-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = Catalog::with_builtin_platforms();
        c.save_to_dir(&dir).unwrap();
        let loaded = Catalog::load_from_dir(&dir).unwrap();
        assert_eq!(loaded.len(), c.len());
        for (name, p) in c.iter() {
            assert_eq!(loaded.get(name), Some(p), "{name}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_file_reported_with_path() {
        let dir = std::env::temp_dir().join(format!("pdl-catalog-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(format!("broken{FILE_SUFFIX}")), "<Master id=").unwrap();
        let err = Catalog::load_from_dir(&dir).unwrap_err();
        assert!(matches!(err, CatalogError::Xml { .. }));
        assert!(err.to_string().contains("broken"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_pdl_files_ignored() {
        let dir = std::env::temp_dir().join(format!("pdl-catalog-mixed-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("README.txt"), "not xml").unwrap();
        let c = Catalog::load_from_dir(&dir).unwrap();
        assert!(c.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn publish_into_registry_is_deterministic_and_idempotent() {
        let c = Catalog::with_builtin_platforms();
        let reg = pdl_registry::Registry::new();
        let first = c.publish_into(&reg);
        assert_eq!(first.len(), c.len());
        assert!(first.iter().all(|o| o.created));
        assert!(first
            .iter()
            .all(|o| o.version == pdl_registry::SemVer::INITIAL));
        // Publishing the same catalog again creates nothing new.
        let second = c.publish_into(&reg);
        assert!(second.iter().all(|o| !o.created));
        let snap = reg.snapshot();
        assert_eq!(snap.len(), c.len());
        assert_eq!(snap.total_releases(), c.len());
        for name in c.names() {
            assert!(snap.resolve_str(name, "latest").is_ok(), "{name}");
        }
    }

    #[test]
    fn builtin_registry_matches_builtin_catalog() {
        let reg = builtin_registry();
        let snap = reg.snapshot();
        assert_eq!(snap.len(), Catalog::with_builtin_platforms().len());
        let cell = snap.resolve_str("cell-be", "^1").unwrap();
        assert_eq!(cell.name, "cell-be");
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("a/b c:d"), "a_b_c_d");
        assert_eq!(sanitize("ok-name_1.2"), "ok-name_1.2");
    }
}
