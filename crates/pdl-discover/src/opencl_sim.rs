//! Simulated `OpenCL` platform query.
//!
//! Listing 2 of the paper shows concrete GPU properties "generated from
//! `OpenCL` run-time libraries". Without GPUs we substitute a device database
//! covering the paper's hardware (GTX 480, GTX 285) and a few contemporaries,
//! producing the same `ocl:`-typed property lists an `OpenCL` query would.
//! The database also carries the performance figures (peak DP rate, memory
//! bandwidth, sustained efficiency) that the simulator reads from the PDL.

use pdl_core::prelude::*;

/// Static description of one OpenCL-visible device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, as `CL_DEVICE_NAME` would report.
    pub device_name: &'static str,
    /// Vendor string.
    pub vendor: &'static str,
    /// Number of compute units (SMs).
    pub max_compute_units: u32,
    /// `CL_DEVICE_MAX_WORK_ITEM_DIMENSIONS`.
    pub max_work_item_dimensions: u32,
    /// Global memory in kB (decimal, as in Listing 2).
    pub global_mem_kb: u64,
    /// Local memory per work-group in kB.
    pub local_mem_kb: u64,
    /// Core clock in MHz.
    pub clock_mhz: u32,
    /// Peak double-precision GFLOP/s.
    pub peak_gflops_dp: f64,
    /// Sustained fraction of peak for tuned BLAS3 kernels.
    pub dgemm_efficiency: f64,
    /// Device memory bandwidth, GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Board TDP in watts.
    pub tdp_w: f64,
}

/// The simulated device database.
///
/// Figures are the published specs for each board; `dgemm_efficiency`
/// reflects vendor-BLAS DGEMM results reported in the literature of the
/// paper's era (`CuBLAS` 3.x).
pub fn device_database() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec {
            device_name: "GeForce GTX 480",
            vendor: "NVIDIA Corporation",
            max_compute_units: 15,
            max_work_item_dimensions: 3,
            global_mem_kb: 1_572_864,
            local_mem_kb: 48,
            clock_mhz: 1401,
            peak_gflops_dp: 168.0,
            dgemm_efficiency: 0.60,
            mem_bandwidth_gbs: 177.4,
            tdp_w: 250.0,
        },
        DeviceSpec {
            device_name: "GeForce GTX 285",
            vendor: "NVIDIA Corporation",
            max_compute_units: 30,
            max_work_item_dimensions: 3,
            global_mem_kb: 1_048_576,
            local_mem_kb: 16,
            clock_mhz: 1476,
            peak_gflops_dp: 88.5,
            dgemm_efficiency: 0.85,
            mem_bandwidth_gbs: 159.0,
            tdp_w: 204.0,
        },
        DeviceSpec {
            device_name: "Tesla C2050",
            vendor: "NVIDIA Corporation",
            max_compute_units: 14,
            max_work_item_dimensions: 3,
            global_mem_kb: 3_145_728,
            local_mem_kb: 48,
            clock_mhz: 1150,
            peak_gflops_dp: 515.0,
            dgemm_efficiency: 0.58,
            mem_bandwidth_gbs: 144.0,
            tdp_w: 238.0,
        },
        DeviceSpec {
            device_name: "Radeon HD 5870",
            vendor: "Advanced Micro Devices, Inc.",
            max_compute_units: 20,
            max_work_item_dimensions: 3,
            global_mem_kb: 1_048_576,
            local_mem_kb: 32,
            clock_mhz: 850,
            peak_gflops_dp: 544.0,
            dgemm_efficiency: 0.45,
            mem_bandwidth_gbs: 153.6,
            tdp_w: 188.0,
        },
    ]
}

/// Looks up a device by (case-insensitive) name.
pub fn query_device(name: &str) -> Option<DeviceSpec> {
    device_database()
        .into_iter()
        .find(|d| d.device_name.eq_ignore_ascii_case(name))
}

/// The `ocl:` subschema reference used for all generated properties.
fn ocl_type() -> SubschemaRef {
    SubschemaRef::new("ocl", "oclDevicePropertyType")
}

impl DeviceSpec {
    /// Generates the Listing-2 style `ocl:` property list for this device.
    ///
    /// Properties are *unfixed* (`fixed="false"`), exactly as in the paper:
    /// they were instantiated by a runtime query mechanism, not authored as
    /// immutable platform facts.
    pub fn ocl_properties(&self) -> Vec<Property> {
        vec![
            Property::typed(
                "DEVICE_NAME",
                PropertyValue::text(self.device_name),
                ocl_type(),
            ),
            Property::typed(
                "MAX_COMPUTE_UNITS",
                PropertyValue::text(self.max_compute_units.to_string()),
                ocl_type(),
            ),
            Property::typed(
                "MAX_WORK_ITEM_DIMENSIONS",
                PropertyValue::text(self.max_work_item_dimensions.to_string()),
                ocl_type(),
            ),
            Property::typed(
                "GLOBAL_MEM_SIZE",
                PropertyValue::with_unit(self.global_mem_kb, Unit::KiloByte),
                ocl_type(),
            ),
            Property::typed(
                "LOCAL_MEM_SIZE",
                PropertyValue::with_unit(self.local_mem_kb, Unit::KiloByte),
                ocl_type(),
            ),
        ]
    }

    /// Generates the well-known (base schema) performance properties the
    /// simulator and schedulers consume.
    pub fn wellknown_properties(&self) -> Vec<Property> {
        vec![
            Property::fixed(wellknown::ARCHITECTURE, "gpu"),
            Property::fixed(wellknown::DEVICE_NAME, self.device_name),
            Property::fixed(wellknown::VENDOR, self.vendor),
            Property::fixed(wellknown::CORES, self.max_compute_units.to_string()),
            Property::fixed(wellknown::FREQUENCY, self.clock_mhz.to_string())
                .with_unit(Unit::MegaHertz),
            Property::fixed(wellknown::PEAK_GFLOPS_DP, self.peak_gflops_dp.to_string())
                .with_unit(Unit::GigaFlopPerSec),
            Property::fixed(wellknown::EFFICIENCY, self.dgemm_efficiency.to_string()),
            Property::fixed(wellknown::TDP, self.tdp_w.to_string()).with_unit(Unit::Watt),
            Property::fixed(
                wellknown::SOFTWARE_PLATFORM,
                if self.vendor.starts_with("NVIDIA") {
                    "OpenCL, Cuda"
                } else {
                    "OpenCL"
                },
            ),
            Property::fixed(wellknown::COMPILER, "nvcc"),
        ]
    }

    /// The device-global memory region (`vram`), with size and bandwidth.
    pub fn memory_region(&self) -> MemoryRegion {
        MemoryRegion::new("vram").with_descriptor(
            Descriptor::new()
                .with(
                    Property::fixed(wellknown::SIZE, self.global_mem_kb.to_string())
                        .with_unit(Unit::KiloByte),
                )
                .with(
                    Property::fixed(wellknown::BANDWIDTH, self.mem_bandwidth_gbs.to_string())
                        .with_unit(Unit::GigaBytePerSec),
                )
                .with(Property::fixed(wellknown::MEMORY_KIND, "vram")),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_contains_paper_gpus() {
        assert!(query_device("GeForce GTX 480").is_some());
        assert!(query_device("GeForce GTX 285").is_some());
        assert!(query_device("geforce gtx 480").is_some()); // case-insensitive
        assert!(query_device("GeForce RTX 4090").is_none()); // anachronism
    }

    #[test]
    fn gtx480_matches_listing2() {
        // Listing 2 of the paper, field by field.
        let d = query_device("GeForce GTX 480").unwrap();
        let props = d.ocl_properties();
        let get = |n: &str| props.iter().find(|p| p.name == n).unwrap();
        assert_eq!(get("DEVICE_NAME").value.text, "GeForce GTX 480");
        assert_eq!(get("MAX_COMPUTE_UNITS").value.as_i64(), Some(15));
        assert_eq!(get("MAX_WORK_ITEM_DIMENSIONS").value.as_i64(), Some(3));
        let gm = get("GLOBAL_MEM_SIZE");
        assert_eq!(gm.value.as_i64(), Some(1_572_864));
        assert_eq!(gm.value.unit, Some(Unit::KiloByte));
        let lm = get("LOCAL_MEM_SIZE");
        assert_eq!(lm.value.as_i64(), Some(48));
        assert_eq!(lm.value.unit, Some(Unit::KiloByte));
        // All unfixed, all ocl-typed — as generated by a runtime query.
        for p in &props {
            assert!(!p.fixed, "{}", p.name);
            assert_eq!(
                p.subschema.as_ref().unwrap().qualified(),
                "ocl:oclDevicePropertyType"
            );
        }
    }

    #[test]
    fn wellknown_properties_expose_performance_model() {
        let d = query_device("GeForce GTX 285").unwrap();
        let props = d.wellknown_properties();
        let desc = Descriptor::from_properties(props);
        assert_eq!(desc.value(wellknown::ARCHITECTURE), Some("gpu"));
        assert_eq!(desc.value_base(wellknown::PEAK_GFLOPS_DP), Some(88.5e9));
        assert_eq!(desc.value_f64(wellknown::EFFICIENCY), Some(0.85));
        assert!(desc
            .value(wellknown::SOFTWARE_PLATFORM)
            .unwrap()
            .contains("Cuda"));
    }

    #[test]
    fn memory_region_sizes() {
        let d = query_device("GeForce GTX 480").unwrap();
        let mr = d.memory_region();
        assert_eq!(mr.size_bytes(), Some(1_572_864_000.0));
        assert_eq!(mr.bandwidth_bps(), Some(177.4e9));
    }

    #[test]
    fn database_entries_have_sane_figures() {
        for d in device_database() {
            assert!(d.peak_gflops_dp > 0.0, "{}", d.device_name);
            assert!(
                (0.0..=1.0).contains(&d.dgemm_efficiency),
                "{}",
                d.device_name
            );
            assert!(d.mem_bandwidth_gbs > 0.0);
            assert!(d.global_mem_kb > 0);
            assert!(d.max_compute_units > 0);
        }
    }
}
