//! # pdl-discover — automatic generation of PDL descriptors
//!
//! The paper anticipates "manual as well as automatic generation of PDL
//! descriptors" (§II) and names hwloc and `OpenCL` platform queries as
//! complementary discovery mechanisms (§V). This crate implements those
//! generators:
//!
//! * [`linux`] — hwloc-analogue discovery of the host from `/proc`;
//! * [`opencl_sim`] — a simulated `OpenCL` device query producing the
//!   Listing-2 style `ocl:`-typed properties (the machine this reproduction
//!   runs on has no GPU — see DESIGN.md for the substitution note);
//! * [`synthetic`] — fully-annotated descriptors for the paper's evaluation
//!   testbed (dual Xeon X5550 + GTX 480 + GTX 285), a Cell B.E., a GPGPU
//!   cluster and a NUMA host.
//!
//! ```
//! let testbed = pdl_discover::synthetic::xeon_2gpu_testbed();
//! assert_eq!(testbed.group_members("gpus").len(), 2);
//! ```
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod linux;
pub mod opencl_sim;
pub mod synthetic;

pub use catalog::Catalog;
pub use linux::discover_host;
pub use opencl_sim::{device_database, query_device};
pub use synthetic::{cell_be, gpgpu_cluster, numa_host, xeon_2gpu_testbed, xeon_x5550_host};
