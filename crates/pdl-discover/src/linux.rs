//! hwloc-analogue host discovery from Linux `/proc`.
//!
//! Paper §V: "APIs like hwloc used for exploration of hardware parameters
//! can facilitate the automatic generation of PDL descriptors." This module
//! is that facility for the host we run on: it parses `/proc/cpuinfo` and
//! `/proc/meminfo` into a concrete PDL descriptor. Parsers take the file
//! contents as input (testable, hermetic); [`discover_host`] wires them to
//! the live files.

use pdl_core::prelude::*;
use std::fs;

/// Information extracted from `/proc/cpuinfo`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CpuInfo {
    /// Model name of the first processor entry.
    pub model_name: String,
    /// Vendor string of the first processor entry.
    pub vendor: String,
    /// Number of logical processors (count of `processor` entries).
    pub logical_cpus: u32,
    /// Clock in MHz (first `cpu MHz` entry), if reported.
    pub mhz: Option<f64>,
}

/// Parses `/proc/cpuinfo` content.
pub fn parse_cpuinfo(content: &str) -> CpuInfo {
    let mut info = CpuInfo::default();
    for line in content.lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "processor" => info.logical_cpus += 1,
            "model name" if info.model_name.is_empty() => info.model_name = value.to_string(),
            "vendor_id" if info.vendor.is_empty() => info.vendor = value.to_string(),
            "cpu MHz" if info.mhz.is_none() => info.mhz = value.parse().ok(),
            _ => {}
        }
    }
    info
}

/// Parses `MemTotal` out of `/proc/meminfo`, returning bytes.
pub fn parse_meminfo_total_bytes(content: &str) -> Option<f64> {
    for line in content.lines() {
        if let Some(rest) = line.strip_prefix("MemTotal:") {
            let mut parts = rest.split_whitespace();
            let value: f64 = parts.next()?.parse().ok()?;
            let unit = parts.next().unwrap_or("kB");
            let factor = match unit {
                // /proc "kB" is actually KiB.
                "kB" | "KB" => 1024.0,
                "MB" => 1024.0 * 1024.0,
                _ => 1.0,
            };
            return Some(value * factor);
        }
    }
    None
}

/// Builds a PDL descriptor for a host from parsed information: one Master
/// PU per host with one Worker per logical CPU, a `ram` memory region and
/// shared-memory interconnects.
pub fn platform_from_cpuinfo(name: &str, cpu: &CpuInfo, mem_total_bytes: Option<f64>) -> Platform {
    let mut b = Platform::builder(name);
    let host = b.master("host");
    b.prop(host, Property::fixed(wellknown::ARCHITECTURE, "x86"));
    if !cpu.model_name.is_empty() {
        b.prop(
            host,
            Property::fixed(wellknown::DEVICE_NAME, cpu.model_name.clone()),
        );
    }
    if !cpu.vendor.is_empty() {
        b.prop(host, Property::fixed(wellknown::VENDOR, cpu.vendor.clone()));
    }
    b.prop(
        host,
        Property::fixed(wellknown::CORES, cpu.logical_cpus.max(1).to_string()),
    );
    if let Some(mhz) = cpu.mhz {
        b.prop(
            host,
            Property::fixed(wellknown::FREQUENCY, format!("{mhz:.0}")).with_unit(Unit::MegaHertz),
        );
    }
    b.prop(host, Property::fixed(wellknown::SOFTWARE_PLATFORM, "x86"));
    if let Some(bytes) = mem_total_bytes {
        b.memory(
            host,
            MemoryRegion::new("ram").with_descriptor(
                Descriptor::new()
                    .with(
                        Property::fixed(wellknown::SIZE, format!("{bytes:.0}"))
                            .with_unit(Unit::Byte),
                    )
                    .with(Property::fixed(wellknown::MEMORY_KIND, "ram")),
            ),
        );
    }
    for c in 0..cpu.logical_cpus.max(1) {
        let id = format!("cpu{c}");
        let w = b.worker(host, id.clone()).expect("master controls");
        b.prop(w, Property::fixed(wellknown::ARCHITECTURE, "x86"));
        if let Some(mhz) = cpu.mhz {
            // Rough per-core DP peak: 4 FLOP/cycle.
            let gflops = 4.0 * mhz / 1000.0;
            b.prop(
                w,
                Property::fixed(wellknown::PEAK_GFLOPS_DP, format!("{gflops:.2}"))
                    .with_unit(Unit::GigaFlopPerSec),
            );
        }
        b.group(w, "cpus");
        b.interconnect(Interconnect::new("shared-mem", "host", id));
    }
    b.build().expect("host descriptor is structurally valid")
}

/// Discovers the machine this process runs on by reading `/proc`.
/// Returns `None` when `/proc/cpuinfo` is unreadable (non-Linux host).
pub fn discover_host() -> Option<Platform> {
    let cpuinfo = fs::read_to_string("/proc/cpuinfo").ok()?;
    let cpu = parse_cpuinfo(&cpuinfo);
    let mem = fs::read_to_string("/proc/meminfo")
        .ok()
        .and_then(|m| parse_meminfo_total_bytes(&m));
    Some(platform_from_cpuinfo("discovered-host", &cpu, mem))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_CPUINFO: &str = "\
processor\t: 0
vendor_id\t: GenuineIntel
model name\t: Intel(R) Xeon(R) CPU           X5550  @ 2.67GHz
cpu MHz\t\t: 2660.000

processor\t: 1
vendor_id\t: GenuineIntel
model name\t: Intel(R) Xeon(R) CPU           X5550  @ 2.67GHz
cpu MHz\t\t: 2660.000
";

    #[test]
    fn cpuinfo_parsing() {
        let info = parse_cpuinfo(SAMPLE_CPUINFO);
        assert_eq!(info.logical_cpus, 2);
        assert!(info.model_name.contains("X5550"));
        assert_eq!(info.vendor, "GenuineIntel");
        assert_eq!(info.mhz, Some(2660.0));
    }

    #[test]
    fn cpuinfo_empty_and_garbage() {
        let info = parse_cpuinfo("");
        assert_eq!(info.logical_cpus, 0);
        let info = parse_cpuinfo("no colons here\njust noise\n");
        assert_eq!(info.logical_cpus, 0);
        assert!(info.model_name.is_empty());
    }

    #[test]
    fn meminfo_parsing() {
        assert_eq!(
            parse_meminfo_total_bytes("MemTotal:       16384 kB\nMemFree: 1 kB\n"),
            Some(16384.0 * 1024.0)
        );
        assert_eq!(parse_meminfo_total_bytes("MemFree: 1 kB\n"), None);
        assert_eq!(parse_meminfo_total_bytes(""), None);
    }

    #[test]
    fn platform_generation() {
        let info = parse_cpuinfo(SAMPLE_CPUINFO);
        let p = platform_from_cpuinfo("test-host", &info, Some(16.0 * 1024.0 * 1024.0 * 1024.0));
        assert_eq!(p.masters().count(), 1);
        assert_eq!(p.workers().count(), 2);
        let (_, host) = p.pu_by_id("host").unwrap();
        assert_eq!(host.cores(), Some(2));
        assert_eq!(host.memory_regions.len(), 1);
        let (_, w) = p.pu_by_id("cpu0").unwrap();
        // 4 FLOP/cycle × 2.66 GHz ≈ 10.64 GF/s
        let gf = w.peak_flops_dp().unwrap();
        assert!((gf - 10.64e9).abs() < 0.1e9, "{gf}");
        p.validate().unwrap();
    }

    #[test]
    fn zero_cpu_fallback() {
        let p = platform_from_cpuinfo("empty", &CpuInfo::default(), None);
        assert_eq!(p.workers().count(), 1); // at least one worker
    }

    #[test]
    fn live_discovery_on_linux() {
        // We run on Linux in CI; this exercises the real /proc path.
        if std::path::Path::new("/proc/cpuinfo").exists() {
            let p = discover_host().expect("living on Linux");
            assert!(p.workers().count() >= 1);
            p.validate().unwrap();
            // Round-trips through XML like any other descriptor.
            let xml = pdl_xml::to_xml(&p);
            assert_eq!(pdl_xml::from_xml(&xml).unwrap(), p);
        }
    }
}
