//! Synthetic platform generators.
//!
//! Concrete, fully-annotated PDL descriptors for the machines the paper
//! discusses: the evaluation testbed (dual Xeon X5550 + GTX480 + GTX285,
//! §IV-D), a Cell B.E. (the IBM example of the introduction), a GPGPU
//! cluster (hierarchical pattern) and a NUMA host. All performance figures
//! are stored *in the PDL* as well-known properties — downstream tools
//! (simulator, schedulers, code generator) are parameterized exclusively by
//! these descriptors, which is precisely the paper's thesis.

use crate::opencl_sim::{query_device, DeviceSpec};
use pdl_core::prelude::*;

/// Per-core peak DP GFLOP/s of a 2.66 GHz Nehalem core
/// (4 DP FLOP/cycle × 2.66 GHz).
pub const XEON_X5550_CORE_GFLOPS_DP: f64 = 10.64;

/// Sustained fraction of peak for `GotoBLAS2` DGEMM on Nehalem.
pub const GOTOBLAS_EFFICIENCY: f64 = 0.90;

/// Effective `PCIe` 2.0 ×16 bandwidth (GB/s) — ~6 of the theoretical 8.
pub const PCIE2_X16_EFFECTIVE_GBS: f64 = 6.0;

/// Options controlling the testbed descriptor generation.
#[derive(Debug, Clone)]
pub struct TestbedOptions {
    /// Number of CPU cores exposed as workers (the machine has 8).
    pub cpu_cores: u32,
    /// GPU device names to attach (resolved via the simulated `OpenCL`
    /// database).
    pub gpus: Vec<&'static str>,
    /// Whether each attached GPU consumes one CPU core as its driver
    /// thread, as `StarPU` does by default.
    pub dedicate_driver_cores: bool,
    /// Whether to declare a direct NVLink-style interconnect between every
    /// pair of attached GPUs, enabling peer-to-peer transfers that bypass
    /// host staging.
    pub nvlink_gpus: bool,
}

impl Default for TestbedOptions {
    fn default() -> Self {
        TestbedOptions {
            cpu_cores: 8,
            gpus: vec![],
            dedicate_driver_cores: true,
            nvlink_gpus: false,
        }
    }
}

/// Paper §IV-D testbed, CPU-only view ("starpu" configuration):
/// dual-socket 2.66 GHz Xeon X5550, 8 cores, no GPUs.
pub fn xeon_x5550_host() -> Platform {
    build_testbed("xeon-x5550-8core", &TestbedOptions::default())
}

/// Paper §IV-D testbed, full view ("starpu+2gpu" configuration):
/// the Xeon host plus GTX 480 and GTX 285.
pub fn xeon_2gpu_testbed() -> Platform {
    build_testbed(
        "xeon-x5550-gtx480-gtx285",
        &TestbedOptions {
            gpus: vec!["GeForce GTX 480", "GeForce GTX 285"],
            ..TestbedOptions::default()
        },
    )
}

/// Effective NVLink-style peer bandwidth between the two GPUs (GB/s).
pub const NVLINK_EFFECTIVE_GBS: f64 = 25.0;

/// `NVLink` peer latency (µs).
pub const NVLINK_LATENCY_US: f64 = 2.0;

/// The 2-GPU testbed with a direct NVLink-style GPU↔GPU interconnect
/// declared in addition to the per-GPU `PCIe` links — a what-if variant for
/// studying peer-to-peer routing and host-staging avoidance.
pub fn xeon_2gpu_nvlink_testbed() -> Platform {
    build_testbed(
        "xeon-x5550-gtx480-gtx285-nvlink",
        &TestbedOptions {
            gpus: vec!["GeForce GTX 480", "GeForce GTX 285"],
            nvlink_gpus: true,
            ..TestbedOptions::default()
        },
    )
}

/// Generic testbed builder.
pub fn build_testbed(name: &str, opts: &TestbedOptions) -> Platform {
    let mut b = Platform::builder(name);
    let host = b.master("host");
    b.prop(host, Property::fixed(wellknown::ARCHITECTURE, "x86"));
    b.prop(
        host,
        Property::fixed(wellknown::DEVICE_NAME, "Intel Xeon X5550"),
    );
    b.prop(host, Property::fixed(wellknown::VENDOR, "Intel"));
    b.prop(
        host,
        Property::fixed(wellknown::FREQUENCY, "2.66").with_unit(Unit::GigaHertz),
    );
    b.prop(
        host,
        Property::fixed(wellknown::CORES, opts.cpu_cores.to_string()),
    );
    b.prop(host, Property::fixed(wellknown::SOFTWARE_PLATFORM, "x86"));
    b.prop(host, Property::fixed(wellknown::COMPILER, "gcc"));
    b.prop(host, Property::fixed(wellknown::RUNTIME_SYSTEM, "StarPU"));
    b.memory(
        host,
        MemoryRegion::new("ram").with_descriptor(
            Descriptor::new()
                .with(Property::fixed(wellknown::SIZE, "24").with_unit(Unit::GibiByte))
                .with(Property::fixed(wellknown::BANDWIDTH, "32").with_unit(Unit::GigaBytePerSec))
                .with(Property::fixed(wellknown::MEMORY_KIND, "ram")),
        ),
    );

    // One worker per CPU core StarPU can schedule on: attached GPUs each
    // consume one core as a driver thread (StarPU default behaviour).
    let driver_cores = if opts.dedicate_driver_cores {
        opts.gpus.len() as u32
    } else {
        0
    };
    let sched_cores = opts.cpu_cores.saturating_sub(driver_cores);
    for c in 0..sched_cores {
        let id = format!("cpu{c}");
        let w = b.worker(host, id.clone()).expect("master controls");
        b.prop(w, Property::fixed(wellknown::ARCHITECTURE, "x86"));
        b.prop(
            w,
            Property::fixed(
                wellknown::PEAK_GFLOPS_DP,
                XEON_X5550_CORE_GFLOPS_DP.to_string(),
            )
            .with_unit(Unit::GigaFlopPerSec),
        );
        b.prop(
            w,
            Property::fixed(wellknown::EFFICIENCY, GOTOBLAS_EFFICIENCY.to_string()),
        );
        b.prop(w, Property::fixed(wellknown::SOFTWARE_PLATFORM, "x86"));
        b.group(w, "cpus");
        // Shared-memory "interconnect": effectively free transfers.
        b.interconnect(
            Interconnect::new("shared-mem", "host", id).with_descriptor(
                Descriptor::new()
                    .with(
                        Property::fixed(wellknown::BANDWIDTH, "32").with_unit(Unit::GigaBytePerSec),
                    )
                    .with(Property::fixed(wellknown::LATENCY, "0.1").with_unit(Unit::MicroSecond)),
            ),
        );
    }

    for (i, gpu_name) in opts.gpus.iter().enumerate() {
        let spec: DeviceSpec =
            query_device(gpu_name).unwrap_or_else(|| panic!("unknown GPU {gpu_name:?}"));
        let id = format!("gpu{i}");
        let w = b.worker(host, id.clone()).expect("master controls");
        for p in spec.wellknown_properties() {
            b.prop(w, p);
        }
        for p in spec.ocl_properties() {
            b.prop(w, p);
        }
        b.memory(w, spec.memory_region());
        b.group(w, "gpus");
        b.interconnect(
            Interconnect::new("PCIe", "host", id)
                .with_scheme("rDMA")
                .with_descriptor(
                    Descriptor::new()
                        .with(
                            Property::fixed(
                                wellknown::BANDWIDTH,
                                PCIE2_X16_EFFECTIVE_GBS.to_string(),
                            )
                            .with_unit(Unit::GigaBytePerSec),
                        )
                        .with(
                            Property::fixed(wellknown::LATENCY, "15").with_unit(Unit::MicroSecond),
                        ),
                ),
        );
    }

    if opts.nvlink_gpus {
        for i in 0..opts.gpus.len() {
            for j in (i + 1)..opts.gpus.len() {
                b.interconnect(
                    Interconnect::new("NVLink", format!("gpu{i}"), format!("gpu{j}"))
                        .with_scheme("p2p")
                        .with_descriptor(
                            Descriptor::new()
                                .with(
                                    Property::fixed(
                                        wellknown::BANDWIDTH,
                                        NVLINK_EFFECTIVE_GBS.to_string(),
                                    )
                                    .with_unit(Unit::GigaBytePerSec),
                                )
                                .with(
                                    Property::fixed(
                                        wellknown::LATENCY,
                                        NVLINK_LATENCY_US.to_string(),
                                    )
                                    .with_unit(Unit::MicroSecond),
                                ),
                        ),
                );
            }
        }
    }

    b.build().expect("synthetic testbed is structurally valid")
}

/// IBM Cell B.E.: one PPE Master controlling 8 SPE Workers over the EIB.
pub fn cell_be() -> Platform {
    let mut b = Platform::builder("cell-be");
    let ppe = b.master("ppe");
    b.prop(ppe, Property::fixed(wellknown::ARCHITECTURE, "ppe"));
    b.prop(
        ppe,
        Property::fixed(wellknown::DEVICE_NAME, "Cell B.E. PPE"),
    );
    b.prop(ppe, Property::fixed(wellknown::VENDOR, "IBM"));
    b.prop(
        ppe,
        Property::fixed(wellknown::FREQUENCY, "3.2").with_unit(Unit::GigaHertz),
    );
    b.prop(
        ppe,
        Property::fixed(wellknown::PEAK_GFLOPS_DP, "6.4").with_unit(Unit::GigaFlopPerSec),
    );
    b.prop(ppe, Property::fixed(wellknown::EFFICIENCY, "0.8"));
    b.prop(
        ppe,
        Property::fixed(wellknown::SOFTWARE_PLATFORM, "CellSDK"),
    );
    b.prop(ppe, Property::fixed(wellknown::COMPILER, "xlc"));
    b.memory(
        ppe,
        MemoryRegion::new("xdr").with_descriptor(
            Descriptor::new()
                .with(Property::fixed(wellknown::SIZE, "256").with_unit(Unit::MebiByte))
                .with(
                    Property::fixed(wellknown::BANDWIDTH, "25.6").with_unit(Unit::GigaBytePerSec),
                ),
        ),
    );
    for i in 0..8 {
        let id = format!("spe{i}");
        let w = b.worker(ppe, id.clone()).expect("master controls");
        b.prop(w, Property::fixed(wellknown::ARCHITECTURE, "spe"));
        b.prop(
            w,
            Property::fixed(wellknown::PEAK_GFLOPS_DP, "1.8").with_unit(Unit::GigaFlopPerSec),
        );
        b.prop(w, Property::fixed(wellknown::EFFICIENCY, "0.85"));
        b.prop(w, Property::fixed(wellknown::SOFTWARE_PLATFORM, "CellSDK"));
        b.prop(w, Property::fixed(wellknown::COMPILER, "gcc-spu"));
        b.group(w, "spes");
        // 256 kB local store — the defining Cell constraint.
        b.memory(
            w,
            MemoryRegion::new("ls").with_descriptor(
                Descriptor::new()
                    .with(Property::fixed(wellknown::SIZE, "256").with_unit(Unit::KibiByte))
                    .with(Property::fixed(wellknown::MEMORY_KIND, "local-store")),
            ),
        );
        b.interconnect(
            Interconnect::new("EIB", "ppe", id)
                .with_scheme("dma")
                .with_descriptor(
                    Descriptor::new()
                        .with(
                            Property::fixed(wellknown::BANDWIDTH, "25.6")
                                .with_unit(Unit::GigaBytePerSec),
                        )
                        .with(
                            Property::fixed(wellknown::LATENCY, "0.5").with_unit(Unit::MicroSecond),
                        ),
                ),
        );
    }
    b.build().expect("cell descriptor is structurally valid")
}

/// A GPGPU cluster: front-end Master, `nodes` Hybrid compute nodes, each
/// with `gpus_per_node` GPU Workers (GTX 480s) — the Figure 2 hierarchical
/// shape, concretely instantiated.
pub fn gpgpu_cluster(nodes: u32, gpus_per_node: u32) -> Platform {
    let mut b = Platform::builder(format!("gpgpu-cluster-{nodes}x{gpus_per_node}"));
    let fe = b.master("frontend");
    b.prop(fe, Property::fixed(wellknown::ARCHITECTURE, "x86"));
    b.prop(fe, Property::fixed(wellknown::SOFTWARE_PLATFORM, "x86"));
    let gpu_spec = query_device("GeForce GTX 480").expect("db entry");
    for n in 0..nodes {
        let nid = format!("node{n}");
        let h = b.hybrid(fe, nid.clone()).expect("master controls");
        b.prop(h, Property::fixed(wellknown::ARCHITECTURE, "x86"));
        b.prop(
            h,
            Property::fixed(wellknown::PEAK_GFLOPS_DP, "85.1").with_unit(Unit::GigaFlopPerSec),
        );
        b.prop(h, Property::fixed(wellknown::EFFICIENCY, "0.9"));
        b.prop(h, Property::fixed(wellknown::SOFTWARE_PLATFORM, "x86"));
        b.group(h, "nodes");
        b.interconnect(
            Interconnect::new("Infiniband", "frontend", nid.clone()).with_descriptor(
                Descriptor::new()
                    .with(
                        Property::fixed(wellknown::BANDWIDTH, "3.2")
                            .with_unit(Unit::GigaBytePerSec),
                    )
                    .with(Property::fixed(wellknown::LATENCY, "2").with_unit(Unit::MicroSecond)),
            ),
        );
        for g in 0..gpus_per_node {
            let gid = format!("node{n}gpu{g}");
            let w = b.worker(h, gid.clone()).expect("hybrid controls");
            for p in gpu_spec.wellknown_properties() {
                b.prop(w, p);
            }
            b.memory(w, gpu_spec.memory_region());
            b.group(w, "gpus");
            b.interconnect(
                Interconnect::new("PCIe", nid.clone(), gid).with_descriptor(
                    Descriptor::new()
                        .with(
                            Property::fixed(
                                wellknown::BANDWIDTH,
                                PCIE2_X16_EFFECTIVE_GBS.to_string(),
                            )
                            .with_unit(Unit::GigaBytePerSec),
                        )
                        .with(
                            Property::fixed(wellknown::LATENCY, "15").with_unit(Unit::MicroSecond),
                        ),
                ),
            );
        }
    }
    b.build().expect("cluster descriptor is structurally valid")
}

/// A large homogeneous NUMA host: `sockets` Masters, each controlling a
/// pool of `cores_per_socket` workers via `quantity` — exercises the
/// multi-master pattern and quantity expansion at scale.
pub fn numa_host(sockets: u32, cores_per_socket: u32) -> Platform {
    let mut b = Platform::builder(format!("numa-{sockets}x{cores_per_socket}"));
    let mut socket_ids = Vec::new();
    for s in 0..sockets {
        let sid = format!("socket{s}");
        let m = b.master(sid.clone());
        b.prop(m, Property::fixed(wellknown::ARCHITECTURE, "x86"));
        let pool = b
            .worker(m, format!("socket{s}core"))
            .expect("master controls");
        b.quantity(pool, cores_per_socket);
        b.prop(pool, Property::fixed(wellknown::ARCHITECTURE, "x86"));
        b.prop(
            pool,
            Property::fixed(
                wellknown::PEAK_GFLOPS_DP,
                XEON_X5550_CORE_GFLOPS_DP.to_string(),
            )
            .with_unit(Unit::GigaFlopPerSec),
        );
        b.memory(
            m,
            MemoryRegion::new(format!("numa{s}")).with_descriptor(
                Descriptor::new()
                    .with(Property::fixed(wellknown::SIZE, "12").with_unit(Unit::GibiByte)),
            ),
        );
        socket_ids.push(sid);
    }
    // QPI mesh between sockets.
    for i in 0..socket_ids.len() {
        for j in (i + 1)..socket_ids.len() {
            b.interconnect(
                Interconnect::new("QPI", socket_ids[i].clone(), socket_ids[j].clone())
                    .with_descriptor(
                        Descriptor::new()
                            .with(
                                Property::fixed(wellknown::BANDWIDTH, "12.8")
                                    .with_unit(Unit::GigaBytePerSec),
                            )
                            .with(
                                Property::fixed(wellknown::LATENCY, "0.3")
                                    .with_unit(Unit::MicroSecond),
                            ),
                    ),
            );
        }
    }
    b.build().expect("numa descriptor is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_query::capability::matches_pattern;

    #[test]
    fn cpu_testbed_shape() {
        let p = xeon_x5550_host();
        assert_eq!(p.masters().count(), 1);
        assert_eq!(p.workers().count(), 8);
        assert_eq!(p.group_members("cpus").len(), 8);
        assert!(p.group_members("gpus").is_empty());
        p.validate().unwrap();
    }

    #[test]
    fn gpu_testbed_shape() {
        let p = xeon_2gpu_testbed();
        // 2 GPUs consume 2 driver cores → 6 CPU workers + 2 GPU workers.
        assert_eq!(p.workers().count(), 8);
        assert_eq!(p.group_members("cpus").len(), 6);
        assert_eq!(p.group_members("gpus").len(), 2);
        let (_, g0) = p.pu_by_id("gpu0").unwrap();
        assert_eq!(
            g0.descriptor.value(wellknown::DEVICE_NAME),
            Some("GeForce GTX 480")
        );
        let (_, g1) = p.pu_by_id("gpu1").unwrap();
        assert_eq!(
            g1.descriptor.value(wellknown::DEVICE_NAME),
            Some("GeForce GTX 285")
        );
        p.validate().unwrap();
    }

    #[test]
    fn testbed_interconnects_annotated() {
        let p = xeon_2gpu_testbed();
        let pcie: Vec<_> = p
            .interconnects()
            .iter()
            .filter(|ic| ic.ic_type == "PCIe")
            .collect();
        assert_eq!(pcie.len(), 2);
        for ic in pcie {
            assert_eq!(ic.bandwidth_bps(), Some(6e9));
            assert_eq!(ic.scheme, "rDMA");
        }
    }

    #[test]
    fn no_driver_core_dedication_option() {
        let p = build_testbed(
            "t",
            &TestbedOptions {
                cpu_cores: 8,
                gpus: vec!["GeForce GTX 480"],
                dedicate_driver_cores: false,
                nvlink_gpus: false,
            },
        );
        assert_eq!(p.group_members("cpus").len(), 8);
        assert_eq!(p.group_members("gpus").len(), 1);
    }

    #[test]
    fn cell_be_shape() {
        let p = cell_be();
        assert_eq!(p.masters().count(), 1);
        assert_eq!(p.workers().count(), 8);
        let (_, spe) = p.pu_by_id("spe3").unwrap();
        assert_eq!(spe.architecture(), Some("spe"));
        // Local store constraint present.
        assert_eq!(spe.memory_regions[0].size_bytes(), Some(256.0 * 1024.0));
        assert_eq!(
            p.interconnects()
                .iter()
                .filter(|i| i.ic_type == "EIB")
                .count(),
            8
        );
        assert!(matches_pattern(
            &p,
            pdl_core::patterns::PatternKind::MasterWorkerPool
        ));
        p.validate().unwrap();
    }

    #[test]
    fn cluster_is_hierarchical() {
        let p = gpgpu_cluster(3, 2);
        assert_eq!(p.hybrids().count(), 3);
        assert_eq!(p.workers().count(), 6);
        assert!(matches_pattern(
            &p,
            pdl_core::patterns::PatternKind::Hierarchical
        ));
        assert_eq!(p.height(), 2);
        p.validate().unwrap();
    }

    #[test]
    fn numa_host_multimaster() {
        let p = numa_host(4, 6);
        assert_eq!(p.masters().count(), 4);
        assert_eq!(p.total_units(), 4 + 4 * 6);
        assert!(matches_pattern(
            &p,
            pdl_core::patterns::PatternKind::MultiMaster
        ));
        // QPI mesh: C(4,2) = 6 links.
        assert_eq!(p.interconnects().len(), 6);
        let e = p.expand_quantities();
        assert_eq!(e.workers().count(), 24);
        e.validate().unwrap();
    }

    #[test]
    fn nvlink_testbed_declares_peer_interconnect() {
        let p = xeon_2gpu_nvlink_testbed();
        let nv: Vec<_> = p
            .interconnects()
            .iter()
            .filter(|ic| ic.ic_type == "NVLink")
            .collect();
        assert_eq!(nv.len(), 1);
        assert_eq!(nv[0].bandwidth_bps(), Some(25e9));
        assert_eq!(nv[0].scheme, "p2p");
        // PCIe host links unchanged.
        assert_eq!(
            p.interconnects()
                .iter()
                .filter(|ic| ic.ic_type == "PCIe")
                .count(),
            2
        );
        p.validate().unwrap();
    }

    #[test]
    fn testbeds_round_trip_through_xml() {
        for p in [
            xeon_x5550_host(),
            xeon_2gpu_testbed(),
            xeon_2gpu_nvlink_testbed(),
            cell_be(),
        ] {
            let xml = pdl_xml::to_xml(&p);
            let back = pdl_xml::from_xml(&xml).unwrap();
            assert_eq!(p, back);
        }
    }
}
