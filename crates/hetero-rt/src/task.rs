//! Codelets, implementation variants and tasks.
//!
//! Mirrors `StarPU`'s model, which the paper's generated code targets: a
//! **codelet** names an operation and bundles **implementation variants**
//! for different architectures ("A task can have multiple task
//! implementations for different heterogeneous platforms but offers same
//! functionality and function signature", §IV-A). A **task** is one
//! invocation of a codelet on concrete data handles.

use crate::data::{AccessMode, HandleId};
use std::fmt;

/// Identifier of a submitted task within a [`crate::graph::TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One architecture-specific implementation of a codelet.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Architecture the implementation targets (`x86`, `gpu`, `spe`), the
    /// PDL `ARCHITECTURE` vocabulary.
    pub arch: String,
    /// Software platform required (`x86`, `OpenCL`, `Cuda`, `CellSDK`),
    /// matching the annotation `targetplatformlist` and the PDL
    /// `SOFTWARE_PLATFORM` property. `None` = no requirement.
    pub software_platform: Option<String>,
    /// Throughput multiplier relative to the device's nominal effective
    /// rate (1.0 = the device's PDL-declared rate; a hand-tuned variant may
    /// exceed a generic one).
    pub speedup: f64,
}

impl Variant {
    /// A variant for the given architecture with nominal throughput.
    pub fn new(arch: impl Into<String>) -> Self {
        Variant {
            arch: arch.into(),
            software_platform: None,
            speedup: 1.0,
        }
    }

    /// Requires a software platform, builder style.
    pub fn requiring(mut self, software_platform: impl Into<String>) -> Self {
        self.software_platform = Some(software_platform.into());
        self
    }

    /// Sets the relative speedup, builder style.
    pub fn with_speedup(mut self, speedup: f64) -> Self {
        self.speedup = speedup;
        self
    }

    /// Whether this variant can run on a device with the given architecture
    /// and software platforms.
    pub fn runs_on(&self, arch: &str, software_platforms: &[&str]) -> bool {
        if self.arch != arch {
            return false;
        }
        match &self.software_platform {
            None => true,
            Some(req) => software_platforms
                .iter()
                .any(|p| p.eq_ignore_ascii_case(req)),
        }
    }
}

/// A named operation with per-architecture implementation variants.
#[derive(Debug, Clone, PartialEq)]
pub struct Codelet {
    /// Operation name (the paper's *taskidentifier*, e.g. `I_vecadd`).
    pub name: String,
    /// Available implementations.
    pub variants: Vec<Variant>,
}

impl Codelet {
    /// A codelet with no variants yet.
    pub fn new(name: impl Into<String>) -> Self {
        Codelet {
            name: name.into(),
            variants: Vec::new(),
        }
    }

    /// Adds a variant, builder style.
    pub fn with_variant(mut self, v: Variant) -> Self {
        self.variants.push(v);
        self
    }

    /// The variant usable on the given device characteristics, if any.
    /// When several match, the fastest (highest speedup) wins.
    pub fn variant_for(&self, arch: &str, software_platforms: &[&str]) -> Option<&Variant> {
        self.variants
            .iter()
            .filter(|v| v.runs_on(arch, software_platforms))
            .max_by(|a, b| {
                a.speedup
                    .partial_cmp(&b.speedup)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Architectures this codelet has variants for.
    pub fn supported_archs(&self) -> Vec<&str> {
        let mut archs: Vec<&str> = self.variants.iter().map(|v| v.arch.as_str()).collect();
        archs.sort_unstable();
        archs.dedup();
        archs
    }

    /// Whether a sequential CPU fall-back exists (paper §IV-C: "At least one
    /// sequential fall-back variant must be provided").
    pub fn has_cpu_fallback(&self) -> bool {
        self.variants.iter().any(|v| v.arch == "x86")
    }
}

/// One access of a task to a data handle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataAccess {
    /// The handle.
    pub handle: HandleId,
    /// Access mode.
    pub mode: AccessMode,
}

/// One invocation of a codelet.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Task id within its graph.
    pub id: TaskId,
    /// Index of the codelet in the graph's codelet table.
    pub codelet: usize,
    /// Display label (`dgemm[2,3]`).
    pub label: String,
    /// Work in double-precision FLOPs (drives the simulated compute time).
    pub flops: f64,
    /// Data accesses in parameter order.
    pub accesses: Vec<DataAccess>,
    /// Optional device restriction: the task must run on a device whose PU
    /// belongs to this logic group (the paper's *executiongroup*).
    pub execution_group: Option<String>,
    /// Scheduling priority (higher = dispatched earlier by the online
    /// engine; StarPU-style). Defaults to 0.
    pub priority: i32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dgemm_codelet() -> Codelet {
        Codelet::new("I_dgemm")
            .with_variant(Variant::new("x86"))
            .with_variant(Variant::new("gpu").requiring("Cuda").with_speedup(1.0))
            .with_variant(Variant::new("gpu").requiring("OpenCL").with_speedup(0.8))
    }

    #[test]
    fn variant_matching() {
        let c = dgemm_codelet();
        assert!(c.variant_for("x86", &[]).is_some());
        assert!(c.variant_for("gpu", &["OpenCL", "Cuda"]).is_some());
        assert!(c.variant_for("gpu", &[]).is_none()); // needs a SW platform
        assert!(c.variant_for("spe", &["CellSDK"]).is_none());
    }

    #[test]
    fn fastest_matching_variant_wins() {
        let c = dgemm_codelet();
        let v = c.variant_for("gpu", &["OpenCL", "Cuda"]).unwrap();
        assert_eq!(v.software_platform.as_deref(), Some("Cuda"));
        // Only OpenCL available → the slower OpenCL variant is picked.
        let v = c.variant_for("gpu", &["OpenCL"]).unwrap();
        assert_eq!(v.software_platform.as_deref(), Some("OpenCL"));
        assert_eq!(v.speedup, 0.8);
    }

    #[test]
    fn software_platform_case_insensitive() {
        let v = Variant::new("gpu").requiring("Cuda");
        assert!(v.runs_on("gpu", &["cuda"]));
        assert!(!v.runs_on("x86", &["cuda"]));
    }

    #[test]
    fn supported_archs_deduped() {
        let c = dgemm_codelet();
        assert_eq!(c.supported_archs(), ["gpu", "x86"]);
        assert!(c.has_cpu_fallback());
        let gpu_only = Codelet::new("k").with_variant(Variant::new("gpu"));
        assert!(!gpu_only.has_cpu_fallback());
    }
}
