//! Scheduling policies.
//!
//! The runtime separates *mechanism* (the simulation engine in
//! [`crate::sim_engine`]) from *policy*: a [`Scheduler`] picks the device a
//! ready task runs on, given candidate devices and a cost oracle. Policies
//! mirror `StarPU`'s families:
//!
//! * [`EagerScheduler`] — first-come-first-served onto the earliest-free
//!   device, ignoring transfer costs (`StarPU` `eager`);
//! * [`HeftScheduler`] — minimizes estimated finish time including data
//!   transfers (HEFT-style);
//! * [`DmdaScheduler`] — `StarPU`'s `dmda` (deque model data aware):
//!   minimizes begin + routed transfer cost + modeled compute, where the
//!   transfer term prices the actual transfer plan (peer-to-peer when the
//!   engine routes that way) and the compute term prefers learned
//!   [`crate::perfmodel::PerfModel`] history over the analytic estimate;
//! * [`RandomScheduler`] — seeded uniform choice (`StarPU` `random`), a lower
//!   bound for ablations;
//! * [`RoundRobinScheduler`] — cycles through candidates;
//! * [`EnergyAwareScheduler`] — greedy energy-delay policy driven by the
//!   PDL's `TDP` power properties.

use crate::task::Task;
use simhw::machine::{DeviceId, SimMachine};
use simhw::time::{Duration, SimTime};

/// Information a scheduler sees when placing one task.
pub struct ScheduleContext<'a> {
    /// The machine being scheduled onto (device rates, power, groups).
    pub machine: &'a SimMachine,
    /// The task being placed.
    pub task: &'a Task,
    /// Name of the task's codelet.
    pub codelet_name: &'a str,
    /// Time all dependencies have finished.
    pub ready: SimTime,
    /// Devices able to run the task (variant + execution-group filtered),
    /// in device order. Never empty.
    pub candidates: &'a [DeviceId],
    /// Earliest time each candidate becomes free.
    pub free_at: &'a dyn Fn(DeviceId) -> SimTime,
    /// Estimated finish time on each candidate: max(ready, free) +
    /// transfers + compute.
    pub est_finish: &'a dyn Fn(DeviceId) -> SimTime,
    /// Uncontended cost of the transfers the engine would actually route
    /// for this task on each candidate (peer-to-peer priced when active).
    pub transfer_cost: &'a dyn Fn(DeviceId) -> Duration,
    /// Modeled compute duration on each candidate: learned perf-model
    /// history when available, analytic `flops / rate` otherwise.
    pub est_compute: &'a dyn Fn(DeviceId) -> Duration,
}

/// A task-placement policy.
pub trait Scheduler {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Picks one of `ctx.candidates`.
    fn pick(&mut self, ctx: &ScheduleContext<'_>) -> DeviceId;
}

/// First-come-first-served onto the earliest-free device.
#[derive(Debug, Clone, Copy, Default)]
pub struct EagerScheduler;

impl Scheduler for EagerScheduler {
    fn name(&self) -> &'static str {
        "eager"
    }

    fn pick(&mut self, ctx: &ScheduleContext<'_>) -> DeviceId {
        *ctx.candidates
            .iter()
            .min_by_key(|&&d| ((ctx.free_at)(d), d))
            .expect("candidates never empty")
    }
}

/// Minimizes estimated finish time, transfer costs included
/// (HEFT-style; `StarPU`'s `dmda`).
#[derive(Debug, Clone, Copy, Default)]
pub struct HeftScheduler;

impl Scheduler for HeftScheduler {
    fn name(&self) -> &'static str {
        "heft"
    }

    fn pick(&mut self, ctx: &ScheduleContext<'_>) -> DeviceId {
        *ctx.candidates
            .iter()
            .min_by_key(|&&d| ((ctx.est_finish)(d), d))
            .expect("candidates never empty")
    }
}

/// `StarPU`'s `dmda` (deque model data aware): minimizes
/// `max(ready, free) + transfer_cost + est_compute`, pricing transfers
/// along the route the engine will actually take (peer-to-peer links
/// included) and preferring learned perf-model history for the compute
/// term. Differs from [`HeftScheduler`] in both cost oracles: HEFT prices
/// host-staged transfers and analytic compute only.
#[derive(Debug, Clone, Copy, Default)]
pub struct DmdaScheduler;

impl Scheduler for DmdaScheduler {
    fn name(&self) -> &'static str {
        "dmda"
    }

    fn pick(&mut self, ctx: &ScheduleContext<'_>) -> DeviceId {
        *ctx.candidates
            .iter()
            .min_by_key(|&&d| {
                let begin = ctx.ready.max((ctx.free_at)(d));
                (begin + (ctx.transfer_cost)(d) + (ctx.est_compute)(d), d)
            })
            .expect("candidates never empty")
    }
}

/// Seeded uniform-random placement. Deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    state: u64,
}

impl RandomScheduler {
    /// Creates a scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            state: seed.wrapping_mul(0x9E3779B97F4A7C15).max(1),
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "random"
    }

    fn pick(&mut self, ctx: &ScheduleContext<'_>) -> DeviceId {
        let i = (self.next() % ctx.candidates.len() as u64) as usize;
        ctx.candidates[i]
    }
}

/// Cycles through candidates in order.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinScheduler {
    counter: usize,
}

impl Scheduler for RoundRobinScheduler {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick(&mut self, ctx: &ScheduleContext<'_>) -> DeviceId {
        let d = ctx.candidates[self.counter % ctx.candidates.len()];
        self.counter += 1;
        d
    }
}

/// Minimizes *active energy* (compute time × device TDP), breaking ties by
/// estimated finish time — a greedy energy-delay policy enabled by the
/// power figures the PDL carries (`TDP` property). Devices without power
/// information (TDP 0) count as free and therefore attract work.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyAwareScheduler;

impl Scheduler for EnergyAwareScheduler {
    fn name(&self) -> &'static str {
        "energy"
    }

    fn pick(&mut self, ctx: &ScheduleContext<'_>) -> DeviceId {
        let joules = |d: DeviceId| {
            let dev = &ctx.machine.devices[d.0];
            let compute_s = ctx.task.flops / dev.flops_dp;
            compute_s * dev.active_power_w
        };
        *ctx.candidates
            .iter()
            .min_by(|&&a, &&b| {
                joules(a)
                    .partial_cmp(&joules(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| (ctx.est_finish)(a).cmp(&(ctx.est_finish)(b)))
                    .then_with(|| a.cmp(&b))
            })
            .expect("candidates never empty")
    }
}

/// Constructs a scheduler by StarPU-style policy name
/// (`eager`, `heft`, `dmda`, `random`, `round-robin`, `energy`).
pub fn by_name(name: &str) -> Option<Box<dyn Scheduler>> {
    match name {
        "eager" => Some(Box::new(EagerScheduler)),
        "heft" => Some(Box::new(HeftScheduler)),
        "dmda" => Some(Box::new(DmdaScheduler)),
        "random" => Some(Box::new(RandomScheduler::new(42))),
        "energy" => Some(Box::new(EnergyAwareScheduler)),
        "round-robin" | "rr" => Some(Box::new(RoundRobinScheduler::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn dummy_task() -> Task {
        Task {
            id: TaskId(0),
            codelet: 0,
            label: "t".into(),
            flops: 1.0,
            accesses: vec![],
            execution_group: None,
            priority: 0,
        }
    }

    fn test_machine() -> SimMachine {
        SimMachine::from_platform(&pdl_core::patterns::master_worker_pool(4))
    }

    fn zero_cost(_d: DeviceId) -> Duration {
        Duration::ZERO
    }

    fn ctx<'a>(
        machine: &'a SimMachine,
        task: &'a Task,
        candidates: &'a [DeviceId],
        free_at: &'a dyn Fn(DeviceId) -> SimTime,
        est_finish: &'a dyn Fn(DeviceId) -> SimTime,
    ) -> ScheduleContext<'a> {
        ScheduleContext {
            machine,
            task,
            codelet_name: "k",
            ready: SimTime::ZERO,
            candidates,
            free_at,
            est_finish,
            transfer_cost: &zero_cost,
            est_compute: &zero_cost,
        }
    }

    #[test]
    fn eager_picks_earliest_free() {
        let machine = test_machine();
        let task = dummy_task();
        let candidates = [DeviceId(0), DeviceId(1), DeviceId(2)];
        let free = |d: DeviceId| SimTime::new([5.0, 1.0, 3.0][d.0]);
        let est = |_d: DeviceId| SimTime::ZERO;
        let mut s = EagerScheduler;
        assert_eq!(
            s.pick(&ctx(&machine, &task, &candidates, &free, &est)),
            DeviceId(1)
        );
        assert_eq!(s.name(), "eager");
    }

    #[test]
    fn heft_picks_min_finish() {
        let machine = test_machine();
        let task = dummy_task();
        let candidates = [DeviceId(0), DeviceId(1)];
        // Device 0 free earlier but finishes later (slow / far data).
        let free = |d: DeviceId| SimTime::new([0.0, 2.0][d.0]);
        let est = |d: DeviceId| SimTime::new([10.0, 4.0][d.0]);
        let mut s = HeftScheduler;
        assert_eq!(
            s.pick(&ctx(&machine, &task, &candidates, &free, &est)),
            DeviceId(1)
        );
    }

    #[test]
    fn deterministic_tie_break_by_device_id() {
        let machine = test_machine();
        let task = dummy_task();
        let candidates = [DeviceId(2), DeviceId(0), DeviceId(1)];
        let free = |_d: DeviceId| SimTime::ZERO;
        let est = |_d: DeviceId| SimTime::new(1.0);
        assert_eq!(
            EagerScheduler.pick(&ctx(&machine, &task, &candidates, &free, &est)),
            DeviceId(0)
        );
        assert_eq!(
            HeftScheduler.pick(&ctx(&machine, &task, &candidates, &free, &est)),
            DeviceId(0)
        );
    }

    #[test]
    fn random_is_seeded_and_in_range() {
        let machine = test_machine();
        let task = dummy_task();
        let candidates = [DeviceId(0), DeviceId(1), DeviceId(2)];
        let free = |_d: DeviceId| SimTime::ZERO;
        let est = |_d: DeviceId| SimTime::ZERO;
        let picks = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..20)
                .map(|_| s.pick(&ctx(&machine, &task, &candidates, &free, &est)).0)
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7)); // deterministic
        assert_ne!(picks(7), picks(8)); // seed-sensitive
        assert!(picks(7).iter().all(|&d| d < 3));
        // Not constant (all three devices eventually chosen).
        let p = picks(7);
        assert!(p.contains(&0) && p.contains(&1) && p.contains(&2));
    }

    #[test]
    fn round_robin_cycles() {
        let machine = test_machine();
        let task = dummy_task();
        let candidates = [DeviceId(0), DeviceId(1)];
        let free = |_d: DeviceId| SimTime::ZERO;
        let est = |_d: DeviceId| SimTime::ZERO;
        let mut s = RoundRobinScheduler::default();
        let seq: Vec<usize> = (0..4)
            .map(|_| s.pick(&ctx(&machine, &task, &candidates, &free, &est)).0)
            .collect();
        assert_eq!(seq, [0, 1, 0, 1]);
    }

    #[test]
    fn energy_prefers_low_power_device() {
        // Two candidates, identical est-finish; device 1 draws less power
        // per FLOP in the testbed-like machine below.
        let machine = SimMachine::from_platform(&pdl_discover_stub());
        let mut task = dummy_task();
        task.flops = 1e9;
        let candidates = [DeviceId(0), DeviceId(1)];
        let free = |_d: DeviceId| SimTime::ZERO;
        let est = |_d: DeviceId| SimTime::new(1.0);
        let mut s = EnergyAwareScheduler;
        let picked = s.pick(&ctx(&machine, &task, &candidates, &free, &est));
        // dev0: 10 GF/s @ 200 W -> 20 J/GFLOP; dev1: 10 GF/s @ 50 W -> 5 J.
        assert_eq!(picked, DeviceId(1));
        assert_eq!(s.name(), "energy");
    }

    fn pdl_discover_stub() -> pdl_core::platform::Platform {
        use pdl_core::prelude::*;
        let mut b = Platform::builder("power");
        let m = b.master("host");
        for (i, tdp) in [(0, "200"), (1, "50")] {
            let w = b.worker(m, format!("w{i}")).unwrap();
            b.prop(w, Property::fixed(wellknown::ARCHITECTURE, "x86"));
            b.prop(
                w,
                Property::fixed(wellknown::PEAK_GFLOPS_DP, "10").with_unit(Unit::GigaFlopPerSec),
            );
            b.prop(
                w,
                Property::fixed(wellknown::TDP, tdp).with_unit(Unit::Watt),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn dmda_weighs_routed_transfers_and_learned_compute() {
        let machine = test_machine();
        let task = dummy_task();
        let candidates = [DeviceId(0), DeviceId(1)];
        let free = |_d: DeviceId| SimTime::ZERO;
        let est = |_d: DeviceId| SimTime::ZERO; // dmda ignores est_finish
                                                // Device 0 computes faster but pays a large routed transfer;
                                                // device 1 holds the data already.
        let transfer = |d: DeviceId| Duration::new([10.0, 0.0][d.0]);
        let compute = |d: DeviceId| Duration::new([1.0, 4.0][d.0]);
        let mut c = ctx(&machine, &task, &candidates, &free, &est);
        c.transfer_cost = &transfer;
        c.est_compute = &compute;
        let mut s = DmdaScheduler;
        assert_eq!(s.pick(&c), DeviceId(1));
        assert_eq!(s.name(), "dmda");
        // With the transfer gap removed, the faster device wins.
        let flat = |_d: DeviceId| Duration::ZERO;
        c.transfer_cost = &flat;
        assert_eq!(s.pick(&c), DeviceId(0));
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(by_name("eager").unwrap().name(), "eager");
        assert_eq!(by_name("dmda").unwrap().name(), "dmda");
        assert_eq!(by_name("heft").unwrap().name(), "heft");
        assert_eq!(by_name("random").unwrap().name(), "random");
        assert_eq!(by_name("rr").unwrap().name(), "round-robin");
        assert_eq!(by_name("energy").unwrap().name(), "energy");
        assert!(by_name("quantum").is_none());
    }
}
