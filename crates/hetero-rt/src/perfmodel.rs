//! History-based performance models.
//!
//! `StarPU` (which the paper's generated code targets) estimates task
//! execution times from per-(codelet, architecture, size) execution
//! histories. This module implements that mechanism: observations are
//! bucketed by size (powers of two), and the model answers with the running
//! mean. Schedulers consult it when a task carries no analytic cost
//! ([`crate::task::Task::flops`] of zero).

use simhw::time::Duration;
use std::collections::BTreeMap;

/// Running statistics of a bucket.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BucketStats {
    /// Number of observations.
    pub count: u64,
    /// Mean observed duration in seconds.
    pub mean_s: f64,
    /// Sum of squared deviations (for variance).
    m2: f64,
}

impl BucketStats {
    fn record(&mut self, seconds: f64) {
        // Welford's online mean/variance.
        self.count += 1;
        let delta = seconds - self.mean_s;
        self.mean_s += delta / self.count as f64;
        self.m2 += delta * (seconds - self.mean_s);
    }

    /// Sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }
}

/// A history-based performance model.
///
/// Buckets are stored codelet → arch → size-bucket so the hot scheduler
/// lookup path ([`estimate`](Self::estimate)) works entirely on borrowed
/// `&str` keys, without allocating.
#[derive(Debug, Clone, Default)]
pub struct PerfModel {
    buckets: BTreeMap<String, BTreeMap<String, BTreeMap<u32, BucketStats>>>,
}

/// Buckets sizes by floor(log2): tasks within 2× of each other share a
/// bucket, as `StarPU`'s history models do.
fn size_bucket(size: f64) -> u32 {
    if size <= 1.0 {
        0
    } else {
        size.log2().floor() as u32
    }
}

impl PerfModel {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observed execution.
    pub fn record(&mut self, codelet: &str, arch: &str, size: f64, duration: Duration) {
        // Allocation only on the cold path: a bucket's first observation.
        if let Some(archs) = self.buckets.get_mut(codelet) {
            if let Some(sizes) = archs.get_mut(arch) {
                sizes
                    .entry(size_bucket(size))
                    .or_default()
                    .record(duration.seconds());
                return;
            }
        }
        self.buckets
            .entry(codelet.to_string())
            .or_default()
            .entry(arch.to_string())
            .or_default()
            .entry(size_bucket(size))
            .or_default()
            .record(duration.seconds());
    }

    /// The bucket for a (codelet, arch, size) triple, looked up without
    /// allocating — this sits on the hot scheduler path.
    fn bucket(&self, codelet: &str, arch: &str, size: f64) -> Option<&BucketStats> {
        self.buckets
            .get(codelet)?
            .get(arch)?
            .get(&size_bucket(size))
    }

    /// Estimated duration, if the model has seen this (codelet, arch, size
    /// bucket) before.
    pub fn estimate(&self, codelet: &str, arch: &str, size: f64) -> Option<Duration> {
        self.bucket(codelet, arch, size)
            .filter(|s| s.count > 0)
            .map(|s| Duration::new(s.mean_s))
    }

    /// Statistics of a bucket, if present.
    pub fn stats(&self, codelet: &str, arch: &str, size: f64) -> Option<BucketStats> {
        self.bucket(codelet, arch, size).copied()
    }

    /// Number of populated buckets.
    pub fn len(&self) -> usize {
        self.buckets
            .values()
            .flat_map(|archs| archs.values())
            .map(std::collections::BTreeMap::len)
            .sum()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_running_mean() {
        let mut m = PerfModel::new();
        assert!(m.estimate("dgemm", "gpu", 1024.0).is_none());
        m.record("dgemm", "gpu", 1024.0, Duration::new(1.0));
        m.record("dgemm", "gpu", 1100.0, Duration::new(3.0)); // same bucket
        let est = m.estimate("dgemm", "gpu", 1500.0).unwrap(); // 2^10 bucket
        assert!((est.seconds() - 2.0).abs() < 1e-12);
        let stats = m.stats("dgemm", "gpu", 1024.0).unwrap();
        assert_eq!(stats.count, 2);
        assert!((stats.variance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn buckets_partition_by_size_codelet_arch() {
        let mut m = PerfModel::new();
        m.record("dgemm", "gpu", 1024.0, Duration::new(1.0));
        // Different size bucket.
        assert!(m.estimate("dgemm", "gpu", 4096.0).is_none());
        // Different arch.
        assert!(m.estimate("dgemm", "x86", 1024.0).is_none());
        // Different codelet.
        assert!(m.estimate("vecadd", "gpu", 1024.0).is_none());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn size_bucketing() {
        assert_eq!(size_bucket(0.0), 0);
        assert_eq!(size_bucket(1.0), 0);
        assert_eq!(size_bucket(2.0), 1);
        assert_eq!(size_bucket(1023.0), 9);
        assert_eq!(size_bucket(1024.0), 10);
        assert_eq!(size_bucket(2047.0), 10);
    }

    #[test]
    fn variance_zero_with_one_sample() {
        let mut m = PerfModel::new();
        m.record("k", "x86", 10.0, Duration::new(5.0));
        assert_eq!(m.stats("k", "x86", 10.0).unwrap().variance(), 0.0);
    }
}
