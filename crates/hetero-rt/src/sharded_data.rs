//! A sharded, concurrently readable view of the coherence data layer.
//!
//! [`DataRegistry`](crate::data::DataRegistry) is a single-owner structure:
//! every plan, probe and commit goes through one `&mut self`. That is the
//! right shape for the single-threaded simulators, but it serializes the
//! data layer of a million-task run behind one lock the moment more than
//! one thread wants at it (ROADMAP: "Parallelize the data layer").
//!
//! [`ShardedDataRegistry`] splits handles across [`SHARD_COUNT`] shards by
//! `handle % SHARD_COUNT`. Each shard publishes an immutable snapshot
//! behind an RCU-style `RwLock<Arc<..>>` (the `pdl-registry` service
//! idiom): readers clone the `Arc` and then plan/probe against frozen
//! state with **no lock held**; writers are serialized per shard by a
//! publish mutex, clone the shard's entry table (a `Vec<Arc<..>>`, so the
//! clone is shallow), replace only the touched handle's entry and swap the
//! snapshot pointer. Two writers on different shards never contend.
//!
//! All coherence *transitions* delegate to the model-checked
//! [`hetero_model::proto`] exactly as the plain registry does — this
//! module adds concurrency structure, not protocol behaviour, and the
//! differential fuzzer in `tests/sharded_data.rs` replays thousands of
//! random sequences against the pure model to prove it.

use crate::data::{
    decorate_hop, device_of, node_of, nodes_of, pure_plan, DataMeta, HandleId, MachineCosts,
    TransferPlan, HOST,
};
use hetero_model::proto::{self, AccessMode, HopKind, Routing};
use parking_lot::{Mutex, RwLock};
use simhw::machine::{DeviceId, SimMachine};
use simhw::time::Duration;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of shards. A fixed power of two keeps the handle→shard map a
/// mask; 16 comfortably exceeds the worker counts the engines run with,
/// so same-shard writer collisions are rare.
pub const SHARD_COUNT: usize = 16;

/// One handle's registered metadata plus its current valid set, frozen
/// inside a shard snapshot.
#[derive(Debug)]
struct HandleEntry {
    meta: DataMeta,
    valid: BTreeSet<DeviceId>,
}

/// A shard's immutable published state. Writers build a new one (sharing
/// untouched `HandleEntry`s by `Arc`) and swap the pointer; readers work
/// off whatever snapshot they pinned.
#[derive(Debug, Default)]
struct ShardState {
    /// Slot `s` holds the handle with id `s * SHARD_COUNT + shard`;
    /// `None` while a concurrent register to a later slot got published
    /// first.
    entries: Vec<Option<Arc<HandleEntry>>>,
    bytes_to_devices: f64,
    bytes_to_host: f64,
    bytes_peer: f64,
}

/// One shard: the published snapshot plus the writer-serialization lock.
#[derive(Debug, Default)]
struct Shard {
    /// Serializes writers; snapshot swaps happen while holding this, so a
    /// writer always clones the latest state.
    publish: Mutex<()>,
    state: RwLock<Arc<ShardState>>,
}

impl Shard {
    /// Pins the current snapshot (one brief read-lock, then lock-free).
    fn pin(&self) -> Arc<ShardState> {
        self.state.read().clone()
    }

    /// Runs `mutate` against a private clone of the latest state and
    /// publishes the result. Serialized per shard.
    fn update(&self, mutate: impl FnOnce(&mut ShardState)) {
        let _writer = self.publish.lock();
        let mut next = ShardState {
            entries: self.state.read().entries.clone(),
            bytes_to_devices: self.state.read().bytes_to_devices,
            bytes_to_host: self.state.read().bytes_to_host,
            bytes_peer: self.state.read().bytes_peer,
        };
        mutate(&mut next);
        *self.state.write() = Arc::new(next);
    }
}

/// A concurrently usable registry of data handles plus their coherence
/// state, sharded by handle id. See the module docs for the locking
/// discipline; the public API mirrors [`crate::data::DataRegistry`]
/// except that planning methods take `&self` snapshots and metadata
/// accessors return owned values (the backing entry may be republished at
/// any time).
#[derive(Debug)]
pub struct ShardedDataRegistry {
    shards: Vec<Shard>,
    next_id: AtomicUsize,
}

impl Default for ShardedDataRegistry {
    fn default() -> Self {
        ShardedDataRegistry::new()
    }
}

/// Shard index and in-shard slot of a handle.
fn locate(h: HandleId) -> (usize, usize) {
    (h.0 % SHARD_COUNT, h.0 / SHARD_COUNT)
}

impl ShardedDataRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ShardedDataRegistry {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            next_id: AtomicUsize::new(0),
        }
    }

    /// Registers a datum of `size_bytes`, initially valid on the host
    /// only. Safe to call concurrently: ids are allocated atomically and
    /// a shard fills earlier slots with placeholders when a later handle
    /// publishes first.
    pub fn register(&self, label: impl Into<String>, size_bytes: f64) -> HandleId {
        let id = HandleId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (shard, slot) = locate(id);
        let label = label.into();
        self.shards[shard].update(|state| {
            if state.entries.len() <= slot {
                state.entries.resize(slot + 1, None);
            }
            state.entries[slot] = Some(Arc::new(HandleEntry {
                meta: DataMeta {
                    id,
                    label: label.clone(),
                    size_bytes,
                },
                valid: BTreeSet::from([HOST]),
            }));
        });
        id
    }

    /// The pinned entry for `h`.
    ///
    /// # Panics
    /// Panics when `h` was never registered (same contract as the plain
    /// registry's indexing).
    fn entry(&self, h: HandleId) -> Arc<HandleEntry> {
        let (shard, slot) = locate(h);
        self.shards[shard]
            .pin()
            .entries
            .get(slot)
            .and_then(Clone::clone)
            .unwrap_or_else(|| panic!("handle {h} is not registered"))
    }

    /// Metadata for a handle (an owned copy of the pinned snapshot's).
    pub fn meta(&self, h: HandleId) -> DataMeta {
        self.entry(h).meta.clone()
    }

    /// Number of registered handles.
    pub fn len(&self) -> usize {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Whether no data is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Devices currently holding a valid copy of `h` (a pinned-snapshot
    /// copy; concurrent writers may publish a newer set immediately).
    pub fn valid_on(&self, h: HandleId) -> BTreeSet<DeviceId> {
        self.entry(h).valid.clone()
    }

    /// Whether device `d` holds a valid copy of `h`.
    pub fn is_valid_on(&self, h: HandleId, d: DeviceId) -> bool {
        self.entry(h).valid.contains(&d)
    }

    /// Plans the transfers needed before accessing `h` on `device` with
    /// `mode`, against the pinned snapshot, without locks and without
    /// changing any state. Same protocol, same plans as
    /// [`DataRegistry::plan_acquire`](crate::data::DataRegistry::plan_acquire).
    pub fn plan_acquire(
        &self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
        routing: Routing,
    ) -> TransferPlan {
        let entry = self.entry(h);
        let size = entry.meta.size_bytes;
        let pure = proto::plan_acquire(
            &nodes_of(&entry.valid),
            node_of(device),
            mode,
            routing,
            &MachineCosts { machine, size },
        );
        TransferPlan {
            handle: h,
            hops: pure
                .hops
                .iter()
                .map(|hop| decorate_hop(machine, size, hop))
                .collect(),
        }
    }

    /// Plans the transfer bringing `h` back to host memory, against the
    /// pinned snapshot, without changing any state.
    pub fn plan_flush(&self, machine: &SimMachine, h: HandleId) -> TransferPlan {
        let entry = self.entry(h);
        let size = entry.meta.size_bytes;
        let pure = proto::plan_flush(&nodes_of(&entry.valid), &MachineCosts { machine, size });
        TransferPlan {
            handle: h,
            hops: pure
                .hops
                .iter()
                .map(|hop| decorate_hop(machine, size, hop))
                .collect(),
        }
    }

    /// Applies a plan's coherence and byte-accounting effects, serialized
    /// against other writers of the same shard. The transition is computed
    /// from the shard's *latest* state (not the snapshot the plan came
    /// from), delegating to [`proto::commit`] unchanged.
    pub fn commit(&self, plan: &TransferPlan) {
        let (shard, slot) = locate(plan.handle);
        let pure = pure_plan(plan);
        self.shards[shard].update(|state| {
            let entry = state.entries[slot]
                .as_ref()
                .expect("commit of an unregistered handle");
            let mut valid = nodes_of(&entry.valid);
            proto::commit(&mut valid, &pure);
            state.entries[slot] = Some(Arc::new(HandleEntry {
                meta: entry.meta.clone(),
                valid: valid.iter().copied().map(device_of).collect(),
            }));
            for (hop, pure_hop) in plan.hops.iter().zip(&pure.hops) {
                match pure_hop.kind() {
                    HopKind::ToHost => state.bytes_to_host += hop.bytes,
                    HopKind::ToDevice => state.bytes_to_devices += hop.bytes,
                    HopKind::Peer => state.bytes_peer += hop.bytes,
                    HopKind::Local => {}
                }
            }
        });
    }

    /// Records the access itself after its transfers committed: delegates
    /// to [`proto::finish_access`] under the shard writer lock.
    pub fn finish_access(&self, h: HandleId, device: DeviceId, mode: AccessMode) {
        let (shard, slot) = locate(h);
        self.shards[shard].update(|state| {
            let entry = state.entries[slot]
                .as_ref()
                .expect("finish_access of an unregistered handle");
            let mut valid = nodes_of(&entry.valid);
            proto::finish_access(&mut valid, node_of(device), mode);
            state.entries[slot] = Some(Arc::new(HandleEntry {
                meta: entry.meta.clone(),
                valid: valid.iter().copied().map(device_of).collect(),
            }));
        });
    }

    /// Plans, commits and completes one access under the given routing,
    /// returning the modeled uncontended transfer time.
    pub fn acquire_via(
        &self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
        routing: Routing,
    ) -> Duration {
        let plan = self.plan_acquire(machine, h, device, mode, routing);
        self.commit(&plan);
        self.finish_access(h, device, mode);
        plan.total()
    }

    /// [`acquire_via`](Self::acquire_via) with host-staged routing.
    pub fn acquire(
        &self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
    ) -> Duration {
        self.acquire_via(machine, h, device, mode, Routing::HostStaged)
    }

    /// Estimates the transfer time [`acquire_via`](Self::acquire_via)
    /// would charge, without changing coherence state.
    pub fn probe_acquire_via(
        &self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
        routing: Routing,
    ) -> Duration {
        self.plan_acquire(machine, h, device, mode, routing).total()
    }

    /// [`probe_acquire_via`](Self::probe_acquire_via) with host-staged
    /// routing.
    pub fn probe_acquire(
        &self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
    ) -> Duration {
        self.probe_acquire_via(machine, h, device, mode, Routing::HostStaged)
    }

    /// Plans and commits the transfer bringing `h` back to host memory.
    /// Returns the modeled time.
    pub fn flush_to_host(&self, machine: &SimMachine, h: HandleId) -> Duration {
        let plan = self.plan_flush(machine, h);
        self.commit(&plan);
        plan.total()
    }

    /// Total bytes moved host→device so far, summed over shards.
    pub fn bytes_to_devices(&self) -> f64 {
        self.shards.iter().map(|s| s.pin().bytes_to_devices).sum()
    }

    /// Total bytes moved device→host so far, summed over shards.
    pub fn bytes_to_host(&self) -> f64 {
        self.shards.iter().map(|s| s.pin().bytes_to_host).sum()
    }

    /// Total bytes moved directly device→device over peer interconnects,
    /// summed over shards.
    pub fn bytes_peer(&self) -> f64 {
        self.shards.iter().map(|s| s.pin().bytes_peer).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_discover::synthetic;

    fn machine() -> SimMachine {
        SimMachine::from_platform(&synthetic::xeon_2gpu_testbed())
    }

    fn gpu0(m: &SimMachine) -> DeviceId {
        m.device_by_pu("gpu0").unwrap().id
    }

    fn gpu1(m: &SimMachine) -> DeviceId {
        m.device_by_pu("gpu1").unwrap().id
    }

    #[test]
    fn mirrors_plain_registry_semantics() {
        let m = machine();
        let reg = ShardedDataRegistry::new();
        let h = reg.register("A", 600e6);
        assert!(reg.is_valid_on(h, HOST));
        let t = reg.acquire(&m, h, gpu0(&m), AccessMode::Read);
        assert!((t.seconds() - 0.100015).abs() < 1e-6, "{t}");
        assert_eq!(
            reg.acquire(&m, h, gpu0(&m), AccessMode::Read),
            Duration::ZERO
        );
        assert_eq!(reg.bytes_to_devices(), 600e6);
        // A write elsewhere invalidates the other copies.
        reg.acquire(&m, h, gpu1(&m), AccessMode::Write);
        assert!(!reg.is_valid_on(h, HOST));
        assert!(!reg.is_valid_on(h, gpu0(&m)));
        assert!(reg.is_valid_on(h, gpu1(&m)));
    }

    #[test]
    fn handles_spread_across_shards() {
        let reg = ShardedDataRegistry::new();
        let handles: Vec<HandleId> = (0..64)
            .map(|i| reg.register(format!("h{i}"), 8.0))
            .collect();
        assert_eq!(reg.len(), 64);
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(h.0, i);
            assert_eq!(reg.meta(*h).label, format!("h{i}"));
            assert!(reg.is_valid_on(*h, HOST));
        }
    }

    #[test]
    fn concurrent_registers_fill_all_slots() {
        let reg = Arc::new(ShardedDataRegistry::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let reg = reg.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        reg.register(format!("t{t}h{i}"), 8.0);
                    }
                });
            }
        });
        assert_eq!(reg.len(), 400);
        for i in 0..400 {
            // Every allocated id resolves to a published entry.
            assert!(reg.is_valid_on(HandleId(i), HOST));
        }
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_handle_panics() {
        let reg = ShardedDataRegistry::new();
        reg.meta(HandleId(3));
    }
}
