//! Data handles and coherence across distinct memory spaces.
//!
//! Paper §IV-A: "High-level task parallel work distribution eases handling
//! of distinct, non-coherent memory spaces often present in heterogeneous
//! systems." Like `StarPU`, the runtime tracks data through opaque handles:
//! each handle has a size and a set of devices currently holding a **valid
//! copy**. Before a task reads a handle on device `D`, the runtime inserts
//! the transfers that make `D`'s copy valid; a write invalidates all other
//! copies (MSI-style, write-invalidate).
//!
//! The protocol itself — which hops a plan contains, how commits and
//! accesses mutate valid sets, which counter each hop charges — lives in
//! the pure, model-checked [`hetero_model::proto`] module. This module
//! only *decorates* the pure plans with physical links and modeled
//! durations drawn from the [`SimMachine`], so the exhaustively explored
//! model and the shipping implementation cannot drift apart (see
//! `docs/MODEL.md` and `pdl model-check`).

use hetero_model::proto::{self, HopKind, Node};
use simhw::link::LinkId;
use simhw::machine::{DeviceId, SimMachine};
use simhw::time::Duration;
use std::collections::BTreeSet;
use std::fmt;

pub use hetero_model::proto::{AccessMode, Routing};

/// One physical data movement of a [`TransferPlan`]: a copy between two
/// memory spaces over zero or more physical links.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferHop {
    /// Memory space the copy departs from ([`HOST`] or a device id).
    pub from: DeviceId,
    /// Memory space the copy arrives at; gains a valid copy on commit.
    pub to: DeviceId,
    /// Links the copy occupies, in order. Empty when both endpoints share
    /// an address space (the hop only records validity, it moves nothing).
    pub links: Vec<LinkId>,
    /// Modeled duration of the copy.
    pub duration: Duration,
    /// Bytes physically moved: the datum size when `links` is non-empty,
    /// zero otherwise.
    pub bytes: f64,
}

/// The ordered transfers required before one access, produced by
/// [`DataRegistry::plan_acquire`] / [`DataRegistry::plan_flush`].
///
/// A plan is a pure description: it charges nothing until
/// [`DataRegistry::commit`] applies it. Engines use the hop structure to
/// place each copy on the link timelines it occupies.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferPlan {
    /// Handle the plan moves.
    pub handle: HandleId,
    /// Hops in dependency order (a later hop needs the earlier one done).
    pub hops: Vec<TransferHop>,
}

impl TransferPlan {
    /// An empty plan (data already where it needs to be).
    pub fn empty(handle: HandleId) -> Self {
        TransferPlan {
            handle,
            hops: Vec::new(),
        }
    }

    /// Total modeled time when hops run back-to-back without contention.
    pub fn total(&self) -> Duration {
        self.hops
            .iter()
            .fold(Duration::ZERO, |acc, hop| acc + hop.duration)
    }

    /// Whether the plan moves no data.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

/// Identifier of a data handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandleId(pub usize);

impl fmt::Display for HandleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Metadata for one registered datum.
#[derive(Debug, Clone, PartialEq)]
pub struct DataMeta {
    /// Handle id.
    pub id: HandleId,
    /// Label for traces (`A[0][1]`).
    pub label: String,
    /// Payload size in bytes.
    pub size_bytes: f64,
}

/// The host memory "device id" used by the coherence tracker. Host memory
/// is where registered data initially lives; it is not a schedulable device,
/// so it gets a sentinel outside the machine's device range.
pub const HOST: DeviceId = DeviceId(usize::MAX);

/// The protocol-level [`Node`] for a runtime device id.
pub(crate) fn node_of(d: DeviceId) -> Node {
    if d == HOST {
        Node::Host
    } else {
        Node::Dev(d.0)
    }
}

/// The runtime device id for a protocol-level [`Node`].
pub(crate) fn device_of(n: Node) -> DeviceId {
    match n {
        Node::Host => HOST,
        Node::Dev(i) => DeviceId(i),
    }
}

/// One handle's valid set as the pure protocol sees it. `Node`'s variant
/// order mirrors `DeviceId` ordering (the host sentinel is `usize::MAX`),
/// so owner selection picks the same element on both sides.
pub(crate) fn nodes_of(valid: &BTreeSet<DeviceId>) -> BTreeSet<Node> {
    valid.iter().copied().map(node_of).collect()
}

/// The machine's transfer costs for one datum, as the pure planner sees
/// them: modeled seconds per route, `None` where an address space is
/// shared. Costs come from the exact `transfer_time` computation the
/// decorated hops carry, so pure totals and decorated totals are
/// bit-identical floats.
pub(crate) struct MachineCosts<'a> {
    pub(crate) machine: &'a SimMachine,
    pub(crate) size: f64,
}

impl proto::CostView for MachineCosts<'_> {
    fn host_cost(&self, dev: usize) -> Option<f64> {
        self.machine
            .host_route(DeviceId(dev))
            .map(|path| path.transfer_time(self.size).seconds())
    }

    fn peer_cost(&self, from: usize, to: usize) -> Option<f64> {
        self.machine
            .peer_route(DeviceId(from), DeviceId(to))
            .map(|path| path.transfer_time(self.size).seconds())
    }
}

/// Projects the machine's transfer costs for a datum of `size_bytes` onto
/// the bounded [`hetero_model::Topo`] the model checker explores: device
/// `i` of the topology is `devices[i]`, host-route and declared peer-route
/// costs are the modeled transfer times. This is the bridge `pdl
/// model-check` uses to explore real PDL-derived platforms.
pub fn model_topo(
    machine: &SimMachine,
    name: impl Into<String>,
    devices: &[DeviceId],
    size_bytes: f64,
) -> hetero_model::Topo {
    let costs = MachineCosts {
        machine,
        size: size_bytes,
    };
    use proto::CostView as _;
    let mut topo = hetero_model::Topo {
        name: name.into(),
        host_cost: devices.iter().map(|d| costs.host_cost(d.0)).collect(),
        peer_cost: std::collections::BTreeMap::new(),
    };
    for (i, a) in devices.iter().enumerate() {
        for (j, b) in devices.iter().enumerate() {
            if i == j {
                continue;
            }
            if let Some(cost) = costs.peer_cost(a.0, b.0) {
                topo.peer_cost.insert((i, j), cost);
            }
        }
    }
    topo
}

/// Rebuilds the pure skeleton of a decorated plan, for delegating commit
/// classification to the protocol.
pub(crate) fn pure_plan(plan: &TransferPlan) -> proto::Plan {
    proto::Plan {
        hops: plan
            .hops
            .iter()
            .map(|hop| proto::Hop {
                from: node_of(hop.from),
                to: node_of(hop.to),
                cost: hop.duration.seconds(),
                moves_bytes: !hop.links.is_empty() || hop.bytes > 0.0,
            })
            .collect(),
    }
}

/// Decorates one pure hop with the physical links and modeled duration of
/// the route it crosses. Free bookkeeping hops stay free.
pub(crate) fn decorate_hop(machine: &SimMachine, size: f64, hop: &proto::Hop) -> TransferHop {
    let from = device_of(hop.from);
    let to = device_of(hop.to);
    if !hop.moves_bytes {
        return TransferHop {
            from,
            to,
            links: Vec::new(),
            duration: Duration::ZERO,
            bytes: 0.0,
        };
    }
    let path = match (hop.from, hop.to) {
        (Node::Dev(o), Node::Host) => machine.host_route(DeviceId(o)),
        (Node::Host, Node::Dev(d)) => machine.host_route(DeviceId(d)),
        (Node::Dev(o), Node::Dev(d)) => machine.peer_route(DeviceId(o), DeviceId(d)),
        (Node::Host, Node::Host) => None,
    }
    .expect("the protocol only plans physical hops over declared routes");
    TransferHop {
        from,
        to,
        links: path.links.clone(),
        duration: path.transfer_time(size),
        bytes: size,
    }
}

/// Registry of data handles plus their coherence state.
#[derive(Debug, Clone, Default)]
pub struct DataRegistry {
    metas: Vec<DataMeta>,
    /// Per handle: devices holding a valid copy.
    valid: Vec<BTreeSet<DeviceId>>,
    /// Bytes transferred per direction, for statistics.
    bytes_to_devices: f64,
    bytes_to_host: f64,
    /// Bytes moved directly device→device over peer interconnects.
    bytes_peer: f64,
}

impl DataRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a datum of `size_bytes`, initially valid on the host only.
    pub fn register(&mut self, label: impl Into<String>, size_bytes: f64) -> HandleId {
        let id = HandleId(self.metas.len());
        self.metas.push(DataMeta {
            id,
            label: label.into(),
            size_bytes,
        });
        let mut set = BTreeSet::new();
        set.insert(HOST);
        self.valid.push(set);
        id
    }

    /// Metadata for a handle.
    pub fn meta(&self, h: HandleId) -> &DataMeta {
        &self.metas[h.0]
    }

    /// Number of registered handles.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether no data is registered.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Devices currently holding a valid copy of `h`.
    pub fn valid_on(&self, h: HandleId) -> &BTreeSet<DeviceId> {
        &self.valid[h.0]
    }

    /// Whether device `d` holds a valid copy of `h`.
    pub fn is_valid_on(&self, h: HandleId, d: DeviceId) -> bool {
        self.valid[h.0].contains(&d)
    }

    /// Plans the transfers needed before accessing `h` on `device` with
    /// `mode`, without changing any state.
    ///
    /// Under [`Routing::HostStaged`] the plan is at most two hops:
    /// owner→host (when no host copy exists), then host→device. Under
    /// [`Routing::PeerToPeer`] a direct owner→device hop over a declared
    /// peer interconnect is used instead whenever one exists and is cheaper.
    pub fn plan_acquire(
        &self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
        routing: Routing,
    ) -> TransferPlan {
        let size = self.metas[h.0].size_bytes;
        let pure = proto::plan_acquire(
            &nodes_of(&self.valid[h.0]),
            node_of(device),
            mode,
            routing,
            &MachineCosts { machine, size },
        );
        TransferPlan {
            handle: h,
            hops: pure
                .hops
                .iter()
                .map(|hop| decorate_hop(machine, size, hop))
                .collect(),
        }
    }

    /// Plans the transfer bringing `h` back to host memory (end of run /
    /// result collection), without changing any state. Prefers an owner
    /// sharing the host address space (free flush); otherwise the first
    /// owner pays its host route.
    pub fn plan_flush(&self, machine: &SimMachine, h: HandleId) -> TransferPlan {
        let size = self.metas[h.0].size_bytes;
        let pure = proto::plan_flush(&nodes_of(&self.valid[h.0]), &MachineCosts { machine, size });
        TransferPlan {
            handle: h,
            hops: pure
                .hops
                .iter()
                .map(|hop| decorate_hop(machine, size, hop))
                .collect(),
        }
    }

    /// Applies a plan's coherence and byte-accounting effects: every hop
    /// destination gains a valid copy, and each physically moved hop is
    /// counted exactly once in the matching direction counter.
    pub fn commit(&mut self, plan: &TransferPlan) {
        let pure = pure_plan(plan);
        let mut valid = nodes_of(&self.valid[plan.handle.0]);
        proto::commit(&mut valid, &pure);
        self.valid[plan.handle.0] = valid.iter().copied().map(device_of).collect();
        for (hop, pure_hop) in plan.hops.iter().zip(&pure.hops) {
            match pure_hop.kind() {
                HopKind::ToHost => self.bytes_to_host += hop.bytes,
                HopKind::ToDevice => self.bytes_to_devices += hop.bytes,
                HopKind::Peer => self.bytes_peer += hop.bytes,
                HopKind::Local => {}
            }
        }
    }

    /// Records the access itself after its transfers committed: a write
    /// invalidates every other copy (MSI write-invalidate), a read leaves
    /// the reader holding a valid copy.
    pub fn finish_access(&mut self, h: HandleId, device: DeviceId, mode: AccessMode) {
        let mut valid = nodes_of(&self.valid[h.0]);
        proto::finish_access(&mut valid, node_of(device), mode);
        self.valid[h.0] = valid.iter().copied().map(device_of).collect();
    }

    /// Plans, commits and completes one access under the given routing,
    /// returning the modeled uncontended transfer time.
    pub fn acquire_via(
        &mut self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
        routing: Routing,
    ) -> Duration {
        let plan = self.plan_acquire(machine, h, device, mode, routing);
        self.commit(&plan);
        self.finish_access(h, device, mode);
        plan.total()
    }

    /// [`acquire_via`](Self::acquire_via) with host-staged routing — the
    /// behaviour of PCIe-era systems the paper targets.
    pub fn acquire(
        &mut self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
    ) -> Duration {
        self.acquire_via(machine, h, device, mode, Routing::HostStaged)
    }

    /// Estimates the transfer time [`acquire_via`](Self::acquire_via) would
    /// charge, **without** changing coherence state. Equal by construction:
    /// both price the same [`plan_acquire`](Self::plan_acquire) plan.
    pub fn probe_acquire_via(
        &self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
        routing: Routing,
    ) -> Duration {
        self.plan_acquire(machine, h, device, mode, routing).total()
    }

    /// [`probe_acquire_via`](Self::probe_acquire_via) with host-staged
    /// routing. Schedulers use this to compare candidate devices.
    pub fn probe_acquire(
        &self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
    ) -> Duration {
        self.probe_acquire_via(machine, h, device, mode, Routing::HostStaged)
    }

    /// Plans and commits the transfer bringing `h` back to host memory.
    /// Returns the modeled time.
    pub fn flush_to_host(&mut self, machine: &SimMachine, h: HandleId) -> Duration {
        let plan = self.plan_flush(machine, h);
        self.commit(&plan);
        plan.total()
    }

    /// Total bytes moved host→device so far.
    pub fn bytes_to_devices(&self) -> f64 {
        self.bytes_to_devices
    }

    /// Total bytes moved device→host so far.
    pub fn bytes_to_host(&self) -> f64 {
        self.bytes_to_host
    }

    /// Total bytes moved directly device→device over peer interconnects.
    pub fn bytes_peer(&self) -> f64 {
        self.bytes_peer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_discover::synthetic;

    fn machine() -> SimMachine {
        SimMachine::from_platform(&synthetic::xeon_2gpu_testbed())
    }

    fn gpu0(m: &SimMachine) -> DeviceId {
        m.device_by_pu("gpu0").unwrap().id
    }

    fn gpu1(m: &SimMachine) -> DeviceId {
        m.device_by_pu("gpu1").unwrap().id
    }

    fn cpu0(m: &SimMachine) -> DeviceId {
        m.device_by_pu("cpu0").unwrap().id
    }

    #[test]
    fn access_mode_semantics() {
        assert!(AccessMode::Read.reads() && !AccessMode::Read.writes());
        assert!(!AccessMode::Write.reads() && AccessMode::Write.writes());
        assert!(AccessMode::ReadWrite.reads() && AccessMode::ReadWrite.writes());
        assert_eq!(AccessMode::parse("readwrite"), Some(AccessMode::ReadWrite));
        assert_eq!(AccessMode::parse(" READ "), Some(AccessMode::Read));
        assert_eq!(AccessMode::parse("x"), None);
    }

    #[test]
    fn access_mode_parse_ignores_case_and_separators() {
        // These spellings were rejected before parse normalized internal
        // separators; pragma keywords elsewhere already did (BLOCK-CYCLIC).
        assert_eq!(AccessMode::parse("Read-Write"), Some(AccessMode::ReadWrite));
        assert_eq!(AccessMode::parse("READ_WRITE"), Some(AccessMode::ReadWrite));
        assert_eq!(AccessMode::parse("in out"), Some(AccessMode::ReadWrite));
        assert_eq!(AccessMode::parse("\tOut "), Some(AccessMode::Write));
        assert_eq!(AccessMode::parse("not-a-mode"), None);
    }

    #[test]
    fn model_topo_mirrors_machine_routes() {
        use hetero_model::proto::CostView as _;
        let m = nvlink_machine();
        let devices = [cpu0(&m), gpu0(&m), gpu1(&m)];
        let size = 600e6;
        let topo = model_topo(&m, "nvlink", &devices, size);
        assert_eq!(topo.devices(), 3);
        // cpu0 shares the host address space; the GPUs pay their PCIe route.
        assert_eq!(topo.host_cost(0), None);
        let pcie = m.host_route(gpu0(&m)).unwrap().transfer_time(size);
        assert_eq!(topo.host_cost(1), Some(pcie.seconds()));
        // The declared NVLink pair appears in both directions, and nowhere
        // else.
        let nv = m
            .peer_route(gpu0(&m), gpu1(&m))
            .unwrap()
            .transfer_time(size);
        assert_eq!(topo.peer_cost(1, 2), Some(nv.seconds()));
        assert_eq!(topo.peer_cost(2, 1), Some(nv.seconds()));
        assert_eq!(topo.peer_cost(0, 1), None);
    }

    #[test]
    fn first_gpu_read_pays_pcie_transfer() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 600e6);
        let t = reg.acquire(&m, h, gpu0(&m), AccessMode::Read);
        // 600 MB over 6 GB/s + 15us latency.
        assert!((t.seconds() - 0.100015).abs() < 1e-6, "{t}");
        // Second read is free: copy is valid.
        let t2 = reg.acquire(&m, h, gpu0(&m), AccessMode::Read);
        assert_eq!(t2, Duration::ZERO);
        assert_eq!(reg.bytes_to_devices(), 600e6);
    }

    #[test]
    fn cpu_reads_are_free() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 1e9);
        let t = reg.acquire(&m, h, cpu0(&m), AccessMode::Read);
        assert_eq!(t, Duration::ZERO); // shared address space, no link
    }

    #[test]
    fn write_invalidates_other_copies() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 1e6);
        reg.acquire(&m, h, gpu0(&m), AccessMode::Read);
        assert!(reg.is_valid_on(h, HOST));
        assert!(reg.is_valid_on(h, gpu0(&m)));
        // GPU1 writes: everything else invalid.
        reg.acquire(&m, h, gpu1(&m), AccessMode::Write);
        assert!(!reg.is_valid_on(h, HOST));
        assert!(!reg.is_valid_on(h, gpu0(&m)));
        assert!(reg.is_valid_on(h, gpu1(&m)));
    }

    #[test]
    fn pure_write_needs_no_transfer_in() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("C", 1e9);
        let t = reg.acquire(&m, h, gpu0(&m), AccessMode::Write);
        assert_eq!(t, Duration::ZERO);
        assert_eq!(reg.bytes_to_devices(), 0.0);
    }

    #[test]
    fn gpu_to_gpu_stages_through_host() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 600e6);
        reg.acquire(&m, h, gpu0(&m), AccessMode::Write); // data lives on gpu0 only
        let t = reg.acquire(&m, h, gpu1(&m), AccessMode::Read);
        // Two PCIe hops: gpu0→host, host→gpu1.
        assert!((t.seconds() - 2.0 * 0.100015).abs() < 1e-5, "{t}");
        assert!(reg.is_valid_on(h, HOST)); // staged copy remains valid
        assert!(reg.is_valid_on(h, gpu0(&m))); // read does not invalidate
        assert!(reg.is_valid_on(h, gpu1(&m)));
    }

    #[test]
    fn flush_to_host_once() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("C", 600e6);
        reg.acquire(&m, h, gpu0(&m), AccessMode::Write);
        let t = reg.flush_to_host(&m, h);
        assert!(t > Duration::ZERO);
        let t2 = reg.flush_to_host(&m, h);
        assert_eq!(t2, Duration::ZERO);
        assert_eq!(reg.bytes_to_host(), 600e6);
    }

    #[test]
    fn read_after_write_on_same_device_is_free() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("C", 1e9);
        reg.acquire(&m, h, gpu0(&m), AccessMode::Write);
        let t = reg.acquire(&m, h, gpu0(&m), AccessMode::ReadWrite);
        assert_eq!(t, Duration::ZERO);
    }

    fn nvlink_machine() -> SimMachine {
        SimMachine::from_platform(&synthetic::xeon_2gpu_nvlink_testbed())
    }

    #[test]
    fn peer_read_uses_nvlink_when_declared() {
        let m = nvlink_machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 600e6);
        reg.acquire_via(&m, h, gpu0(&m), AccessMode::Write, Routing::PeerToPeer);
        let probe = reg.probe_acquire_via(&m, h, gpu1(&m), AccessMode::Read, Routing::PeerToPeer);
        let t = reg.acquire_via(&m, h, gpu1(&m), AccessMode::Read, Routing::PeerToPeer);
        // One NVLink hop: 600 MB over 25 GB/s + 2 µs — not two PCIe hops.
        assert!((t.seconds() - 0.024002).abs() < 1e-6, "{t}");
        assert_eq!(probe, t);
        assert_eq!(reg.bytes_peer(), 600e6);
        assert_eq!(reg.bytes_to_host(), 0.0);
        assert_eq!(reg.bytes_to_devices(), 0.0);
        // A peer copy does not create a host copy.
        assert!(!reg.is_valid_on(h, HOST));
        assert!(reg.is_valid_on(h, gpu0(&m)));
        assert!(reg.is_valid_on(h, gpu1(&m)));
    }

    #[test]
    fn p2p_routing_falls_back_to_staging_without_peer_link() {
        let m = machine(); // plain testbed: no NVLink declared
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 600e6);
        reg.acquire_via(&m, h, gpu0(&m), AccessMode::Write, Routing::PeerToPeer);
        let t = reg.acquire_via(&m, h, gpu1(&m), AccessMode::Read, Routing::PeerToPeer);
        assert!((t.seconds() - 2.0 * 0.100015).abs() < 1e-5, "{t}");
        assert_eq!(reg.bytes_peer(), 0.0);
        assert_eq!(reg.bytes_to_host(), 600e6);
        assert_eq!(reg.bytes_to_devices(), 600e6);
    }

    #[test]
    fn shared_space_staging_counts_no_host_bytes() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 600e6);
        // Data written on a CPU core: it lives in the host address space,
        // so "staging" it back to host is free and moves zero bytes.
        reg.acquire(&m, h, cpu0(&m), AccessMode::Write);
        let t = reg.acquire(&m, h, gpu0(&m), AccessMode::Read);
        assert!((t.seconds() - 0.100015).abs() < 1e-6, "{t}");
        assert_eq!(reg.bytes_to_host(), 0.0);
        assert_eq!(reg.bytes_to_devices(), 600e6);
    }

    #[test]
    fn acquire_charges_each_hop_once() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 600e6);
        reg.acquire(&m, h, gpu0(&m), AccessMode::Write);
        let plan = reg.plan_acquire(&m, h, gpu1(&m), AccessMode::Read, Routing::HostStaged);
        assert_eq!(plan.hops.len(), 2);
        assert_eq!(plan.hops[0].to, HOST);
        assert_eq!(plan.hops[1].from, HOST);
        // Both hops carry bytes over one PCIe link each — disjoint links.
        assert_eq!(plan.hops[0].bytes, 600e6);
        assert_eq!(plan.hops[1].bytes, 600e6);
        assert_eq!(plan.hops[0].links.len(), 1);
        assert_eq!(plan.hops[1].links.len(), 1);
        assert_ne!(plan.hops[0].links, plan.hops[1].links);
    }

    #[test]
    fn registry_bookkeeping() {
        let mut reg = DataRegistry::new();
        assert!(reg.is_empty());
        let a = reg.register("A", 10.0);
        let b = reg.register("B", 20.0);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.meta(a).label, "A");
        assert_eq!(reg.meta(b).size_bytes, 20.0);
        assert!(reg.is_valid_on(a, HOST));
    }
}
