//! Data handles and coherence across distinct memory spaces.
//!
//! Paper §IV-A: "High-level task parallel work distribution eases handling
//! of distinct, non-coherent memory spaces often present in heterogeneous
//! systems." Like StarPU, the runtime tracks data through opaque handles:
//! each handle has a size and a set of devices currently holding a **valid
//! copy**. Before a task reads a handle on device `D`, the runtime inserts
//! the transfers that make `D`'s copy valid; a write invalidates all other
//! copies (MSI-style, write-invalidate).

use simhw::machine::{DeviceId, SimMachine};
use simhw::time::Duration;
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a data handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandleId(pub usize);

impl fmt::Display for HandleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// How a task accesses a handle — the paper's parameter access-specifiers
/// (`read`, `write`, `readwrite`, §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Input only.
    Read,
    /// Output only (no transfer-in required).
    Write,
    /// In-out.
    ReadWrite,
}

impl AccessMode {
    /// Whether the access observes the previous value.
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }

    /// Whether the access produces a new value.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }

    /// Parses the annotation spelling: `read`/`write`/`readwrite` from the
    /// parameterlist, or the dataflow spelling `in`/`out`/`inout` used by
    /// `access(…)` clauses.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "read" | "r" | "in" => Some(AccessMode::Read),
            "write" | "w" | "out" => Some(AccessMode::Write),
            "readwrite" | "rw" | "inout" => Some(AccessMode::ReadWrite),
            _ => None,
        }
    }
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessMode::Read => "read",
            AccessMode::Write => "write",
            AccessMode::ReadWrite => "readwrite",
        })
    }
}

/// Metadata for one registered datum.
#[derive(Debug, Clone, PartialEq)]
pub struct DataMeta {
    /// Handle id.
    pub id: HandleId,
    /// Label for traces (`A[0][1]`).
    pub label: String,
    /// Payload size in bytes.
    pub size_bytes: f64,
}

/// The host memory "device id" used by the coherence tracker. Host memory
/// is where registered data initially lives; it is not a schedulable device,
/// so it gets a sentinel outside the machine's device range.
pub const HOST: DeviceId = DeviceId(usize::MAX);

/// Registry of data handles plus their coherence state.
#[derive(Debug, Clone, Default)]
pub struct DataRegistry {
    metas: Vec<DataMeta>,
    /// Per handle: devices holding a valid copy.
    valid: Vec<BTreeSet<DeviceId>>,
    /// Bytes transferred per (from-host/to-host) direction, for statistics.
    bytes_to_devices: f64,
    bytes_to_host: f64,
}

impl DataRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a datum of `size_bytes`, initially valid on the host only.
    pub fn register(&mut self, label: impl Into<String>, size_bytes: f64) -> HandleId {
        let id = HandleId(self.metas.len());
        self.metas.push(DataMeta {
            id,
            label: label.into(),
            size_bytes,
        });
        let mut set = BTreeSet::new();
        set.insert(HOST);
        self.valid.push(set);
        id
    }

    /// Metadata for a handle.
    pub fn meta(&self, h: HandleId) -> &DataMeta {
        &self.metas[h.0]
    }

    /// Number of registered handles.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether no data is registered.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Devices currently holding a valid copy of `h`.
    pub fn valid_on(&self, h: HandleId) -> &BTreeSet<DeviceId> {
        &self.valid[h.0]
    }

    /// Whether device `d` holds a valid copy of `h`.
    pub fn is_valid_on(&self, h: HandleId, d: DeviceId) -> bool {
        self.valid[h.0].contains(&d)
    }

    /// Plans the transfers needed before accessing `h` on `device` with
    /// `mode`, updates coherence state, and returns the modeled transfer
    /// time (possibly zero).
    ///
    /// Transfer routing is host-mediated, as on PCIe systems of the paper's
    /// era: accelerator→accelerator moves staging through host memory
    /// (src→host, then host→dst).
    pub fn acquire(
        &mut self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
    ) -> Duration {
        let size = self.metas[h.0].size_bytes;
        let mut time = Duration::ZERO;

        if mode.reads() && !self.valid[h.0].contains(&device) {
            // Need a valid copy on `device`.
            let dev_link = link_of(machine, device);
            if !self.valid[h.0].contains(&HOST) {
                // Stage back to host from some current owner first.
                let owner = *self.valid[h.0]
                    .iter()
                    .next()
                    .expect("a datum is always valid somewhere");
                let owner_link = link_of(machine, owner);
                time = time + transfer(owner_link, size);
                self.bytes_to_host += size;
                self.valid[h.0].insert(HOST);
            }
            time = time + transfer(dev_link, size);
            if transfer(dev_link, size) > Duration::ZERO {
                self.bytes_to_devices += size;
            }
            self.valid[h.0].insert(device);
        }

        if mode.writes() {
            // Write-invalidate: the writer becomes the only valid copy.
            self.valid[h.0].clear();
            self.valid[h.0].insert(device);
        } else if mode.reads() {
            self.valid[h.0].insert(device);
        }

        time
    }

    /// Estimates the transfer time [`acquire`](Self::acquire) would charge,
    /// **without** changing coherence state. Schedulers use this to compare
    /// candidate devices.
    pub fn probe_acquire(
        &self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
    ) -> Duration {
        let size = self.metas[h.0].size_bytes;
        let mut time = Duration::ZERO;
        if mode.reads() && !self.valid[h.0].contains(&device) {
            if !self.valid[h.0].contains(&HOST) {
                let owner = *self.valid[h.0]
                    .iter()
                    .next()
                    .expect("a datum is always valid somewhere");
                time = time + transfer(link_of(machine, owner), size);
            }
            time = time + transfer(link_of(machine, device), size);
        }
        time
    }

    /// Plans the transfer bringing `h` back to host memory (end of run /
    /// result collection). Returns the modeled time.
    pub fn flush_to_host(&mut self, machine: &SimMachine, h: HandleId) -> Duration {
        if self.valid[h.0].contains(&HOST) {
            return Duration::ZERO;
        }
        let owner = *self.valid[h.0]
            .iter()
            .next()
            .expect("a datum is always valid somewhere");
        let t = transfer(link_of(machine, owner), self.metas[h.0].size_bytes);
        self.bytes_to_host += self.metas[h.0].size_bytes;
        self.valid[h.0].insert(HOST);
        t
    }

    /// Total bytes moved host→device so far.
    pub fn bytes_to_devices(&self) -> f64 {
        self.bytes_to_devices
    }

    /// Total bytes moved device→host so far.
    pub fn bytes_to_host(&self) -> f64 {
        self.bytes_to_host
    }
}

/// The link of a device, or `None` for host / shared-address-space devices.
fn link_of(machine: &SimMachine, device: DeviceId) -> Option<simhw::machine::LinkParams> {
    if device == HOST {
        return None;
    }
    machine.devices.get(device.0).and_then(|d| d.link)
}

fn transfer(link: Option<simhw::machine::LinkParams>, size: f64) -> Duration {
    match link {
        None => Duration::ZERO, // same address space
        Some(l) => l.transfer_time(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_discover::synthetic;

    fn machine() -> SimMachine {
        SimMachine::from_platform(&synthetic::xeon_2gpu_testbed())
    }

    fn gpu0(m: &SimMachine) -> DeviceId {
        m.device_by_pu("gpu0").unwrap().id
    }

    fn gpu1(m: &SimMachine) -> DeviceId {
        m.device_by_pu("gpu1").unwrap().id
    }

    fn cpu0(m: &SimMachine) -> DeviceId {
        m.device_by_pu("cpu0").unwrap().id
    }

    #[test]
    fn access_mode_semantics() {
        assert!(AccessMode::Read.reads() && !AccessMode::Read.writes());
        assert!(!AccessMode::Write.reads() && AccessMode::Write.writes());
        assert!(AccessMode::ReadWrite.reads() && AccessMode::ReadWrite.writes());
        assert_eq!(AccessMode::parse("readwrite"), Some(AccessMode::ReadWrite));
        assert_eq!(AccessMode::parse(" READ "), Some(AccessMode::Read));
        assert_eq!(AccessMode::parse("x"), None);
    }

    #[test]
    fn first_gpu_read_pays_pcie_transfer() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 600e6);
        let t = reg.acquire(&m, h, gpu0(&m), AccessMode::Read);
        // 600 MB over 6 GB/s + 15us latency.
        assert!((t.seconds() - 0.100015).abs() < 1e-6, "{t}");
        // Second read is free: copy is valid.
        let t2 = reg.acquire(&m, h, gpu0(&m), AccessMode::Read);
        assert_eq!(t2, Duration::ZERO);
        assert_eq!(reg.bytes_to_devices(), 600e6);
    }

    #[test]
    fn cpu_reads_are_free() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 1e9);
        let t = reg.acquire(&m, h, cpu0(&m), AccessMode::Read);
        assert_eq!(t, Duration::ZERO); // shared address space, no link
    }

    #[test]
    fn write_invalidates_other_copies() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 1e6);
        reg.acquire(&m, h, gpu0(&m), AccessMode::Read);
        assert!(reg.is_valid_on(h, HOST));
        assert!(reg.is_valid_on(h, gpu0(&m)));
        // GPU1 writes: everything else invalid.
        reg.acquire(&m, h, gpu1(&m), AccessMode::Write);
        assert!(!reg.is_valid_on(h, HOST));
        assert!(!reg.is_valid_on(h, gpu0(&m)));
        assert!(reg.is_valid_on(h, gpu1(&m)));
    }

    #[test]
    fn pure_write_needs_no_transfer_in() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("C", 1e9);
        let t = reg.acquire(&m, h, gpu0(&m), AccessMode::Write);
        assert_eq!(t, Duration::ZERO);
        assert_eq!(reg.bytes_to_devices(), 0.0);
    }

    #[test]
    fn gpu_to_gpu_stages_through_host() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 600e6);
        reg.acquire(&m, h, gpu0(&m), AccessMode::Write); // data lives on gpu0 only
        let t = reg.acquire(&m, h, gpu1(&m), AccessMode::Read);
        // Two PCIe hops: gpu0→host, host→gpu1.
        assert!((t.seconds() - 2.0 * 0.100015).abs() < 1e-5, "{t}");
        assert!(reg.is_valid_on(h, HOST)); // staged copy remains valid
        assert!(reg.is_valid_on(h, gpu0(&m))); // read does not invalidate
        assert!(reg.is_valid_on(h, gpu1(&m)));
    }

    #[test]
    fn flush_to_host_once() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("C", 600e6);
        reg.acquire(&m, h, gpu0(&m), AccessMode::Write);
        let t = reg.flush_to_host(&m, h);
        assert!(t > Duration::ZERO);
        let t2 = reg.flush_to_host(&m, h);
        assert_eq!(t2, Duration::ZERO);
        assert_eq!(reg.bytes_to_host(), 600e6);
    }

    #[test]
    fn read_after_write_on_same_device_is_free() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("C", 1e9);
        reg.acquire(&m, h, gpu0(&m), AccessMode::Write);
        let t = reg.acquire(&m, h, gpu0(&m), AccessMode::ReadWrite);
        assert_eq!(t, Duration::ZERO);
    }

    #[test]
    fn registry_bookkeeping() {
        let mut reg = DataRegistry::new();
        assert!(reg.is_empty());
        let a = reg.register("A", 10.0);
        let b = reg.register("B", 20.0);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.meta(a).label, "A");
        assert_eq!(reg.meta(b).size_bytes, 20.0);
        assert!(reg.is_valid_on(a, HOST));
    }
}
