//! Data handles and coherence across distinct memory spaces.
//!
//! Paper §IV-A: "High-level task parallel work distribution eases handling
//! of distinct, non-coherent memory spaces often present in heterogeneous
//! systems." Like StarPU, the runtime tracks data through opaque handles:
//! each handle has a size and a set of devices currently holding a **valid
//! copy**. Before a task reads a handle on device `D`, the runtime inserts
//! the transfers that make `D`'s copy valid; a write invalidates all other
//! copies (MSI-style, write-invalidate).

use simhw::link::LinkId;
use simhw::machine::{DeviceId, SimMachine};
use simhw::time::Duration;
use std::collections::BTreeSet;
use std::fmt;

/// How accelerator↔accelerator transfers are routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Every move stages through host memory (PCIe-era default: src→host,
    /// then host→dst).
    #[default]
    HostStaged,
    /// Use a direct device↔device interconnect (e.g. NVLink) whenever the
    /// platform declares one and it is cheaper than staging through host.
    PeerToPeer,
}

/// One physical data movement of a [`TransferPlan`]: a copy between two
/// memory spaces over zero or more physical links.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferHop {
    /// Memory space the copy departs from ([`HOST`] or a device id).
    pub from: DeviceId,
    /// Memory space the copy arrives at; gains a valid copy on commit.
    pub to: DeviceId,
    /// Links the copy occupies, in order. Empty when both endpoints share
    /// an address space (the hop only records validity, it moves nothing).
    pub links: Vec<LinkId>,
    /// Modeled duration of the copy.
    pub duration: Duration,
    /// Bytes physically moved: the datum size when `links` is non-empty,
    /// zero otherwise.
    pub bytes: f64,
}

/// The ordered transfers required before one access, produced by
/// [`DataRegistry::plan_acquire`] / [`DataRegistry::plan_flush`].
///
/// A plan is a pure description: it charges nothing until
/// [`DataRegistry::commit`] applies it. Engines use the hop structure to
/// place each copy on the link timelines it occupies.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferPlan {
    /// Handle the plan moves.
    pub handle: HandleId,
    /// Hops in dependency order (a later hop needs the earlier one done).
    pub hops: Vec<TransferHop>,
}

impl TransferPlan {
    /// An empty plan (data already where it needs to be).
    pub fn empty(handle: HandleId) -> Self {
        TransferPlan {
            handle,
            hops: Vec::new(),
        }
    }

    /// Total modeled time when hops run back-to-back without contention.
    pub fn total(&self) -> Duration {
        self.hops
            .iter()
            .fold(Duration::ZERO, |acc, hop| acc + hop.duration)
    }

    /// Whether the plan moves no data.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

/// Identifier of a data handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandleId(pub usize);

impl fmt::Display for HandleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// How a task accesses a handle — the paper's parameter access-specifiers
/// (`read`, `write`, `readwrite`, §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Input only.
    Read,
    /// Output only (no transfer-in required).
    Write,
    /// In-out.
    ReadWrite,
}

impl AccessMode {
    /// Whether the access observes the previous value.
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }

    /// Whether the access produces a new value.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }

    /// Parses the annotation spelling: `read`/`write`/`readwrite` from the
    /// parameterlist, or the dataflow spelling `in`/`out`/`inout` used by
    /// `access(…)` clauses.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "read" | "r" | "in" => Some(AccessMode::Read),
            "write" | "w" | "out" => Some(AccessMode::Write),
            "readwrite" | "rw" | "inout" => Some(AccessMode::ReadWrite),
            _ => None,
        }
    }
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessMode::Read => "read",
            AccessMode::Write => "write",
            AccessMode::ReadWrite => "readwrite",
        })
    }
}

/// Metadata for one registered datum.
#[derive(Debug, Clone, PartialEq)]
pub struct DataMeta {
    /// Handle id.
    pub id: HandleId,
    /// Label for traces (`A[0][1]`).
    pub label: String,
    /// Payload size in bytes.
    pub size_bytes: f64,
}

/// The host memory "device id" used by the coherence tracker. Host memory
/// is where registered data initially lives; it is not a schedulable device,
/// so it gets a sentinel outside the machine's device range.
pub const HOST: DeviceId = DeviceId(usize::MAX);

/// Registry of data handles plus their coherence state.
#[derive(Debug, Clone, Default)]
pub struct DataRegistry {
    metas: Vec<DataMeta>,
    /// Per handle: devices holding a valid copy.
    valid: Vec<BTreeSet<DeviceId>>,
    /// Bytes transferred per direction, for statistics.
    bytes_to_devices: f64,
    bytes_to_host: f64,
    /// Bytes moved directly device→device over peer interconnects.
    bytes_peer: f64,
}

impl DataRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a datum of `size_bytes`, initially valid on the host only.
    pub fn register(&mut self, label: impl Into<String>, size_bytes: f64) -> HandleId {
        let id = HandleId(self.metas.len());
        self.metas.push(DataMeta {
            id,
            label: label.into(),
            size_bytes,
        });
        let mut set = BTreeSet::new();
        set.insert(HOST);
        self.valid.push(set);
        id
    }

    /// Metadata for a handle.
    pub fn meta(&self, h: HandleId) -> &DataMeta {
        &self.metas[h.0]
    }

    /// Number of registered handles.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether no data is registered.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Devices currently holding a valid copy of `h`.
    pub fn valid_on(&self, h: HandleId) -> &BTreeSet<DeviceId> {
        &self.valid[h.0]
    }

    /// Whether device `d` holds a valid copy of `h`.
    pub fn is_valid_on(&self, h: HandleId, d: DeviceId) -> bool {
        self.valid[h.0].contains(&d)
    }

    /// Plans the transfers needed before accessing `h` on `device` with
    /// `mode`, without changing any state.
    ///
    /// Under [`Routing::HostStaged`] the plan is at most two hops:
    /// owner→host (when no host copy exists), then host→device. Under
    /// [`Routing::PeerToPeer`] a direct owner→device hop over a declared
    /// peer interconnect is used instead whenever one exists and is cheaper.
    pub fn plan_acquire(
        &self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
        routing: Routing,
    ) -> TransferPlan {
        let mut plan = TransferPlan::empty(h);
        if !mode.reads() || self.valid[h.0].contains(&device) {
            return plan;
        }
        let size = self.metas[h.0].size_bytes;

        // Host-staged route: stage to host first when needed.
        if !self.valid[h.0].contains(&HOST) {
            let owner = *self.valid[h.0]
                .iter()
                .next()
                .expect("a datum is always valid somewhere");
            plan.hops.push(hop(machine, owner, HOST, size));
        }
        if device != HOST {
            if let Some(path) = machine.host_route(device) {
                plan.hops.push(TransferHop {
                    from: HOST,
                    to: device,
                    links: path.links.clone(),
                    duration: path.transfer_time(size),
                    bytes: size,
                });
            }
            // No host route: the device shares the host address space and
            // the (possibly staged) host copy already serves it.
        }

        if routing == Routing::PeerToPeer && device != HOST {
            // Cheapest direct route from any current owner, if one beats
            // the staged plan.
            let mut best: Option<TransferHop> = None;
            for &owner in &self.valid[h.0] {
                if owner == HOST || owner == device {
                    continue;
                }
                let Some(path) = machine.peer_route(owner, device) else {
                    continue;
                };
                let duration = path.transfer_time(size);
                if best.as_ref().is_none_or(|b| duration < b.duration) {
                    best = Some(TransferHop {
                        from: owner,
                        to: device,
                        links: path.links.clone(),
                        duration,
                        bytes: size,
                    });
                }
            }
            if let Some(peer) = best {
                if peer.duration < plan.total() {
                    plan.hops = vec![peer];
                }
            }
        }
        plan
    }

    /// Plans the transfer bringing `h` back to host memory (end of run /
    /// result collection), without changing any state.
    pub fn plan_flush(&self, machine: &SimMachine, h: HandleId) -> TransferPlan {
        let mut plan = TransferPlan::empty(h);
        if self.valid[h.0].contains(&HOST) {
            return plan;
        }
        // Prefer an owner sharing the host address space (free flush);
        // otherwise the first owner pays its host route.
        let owner = self.valid[h.0]
            .iter()
            .copied()
            .find(|&d| machine.host_route(d).is_none())
            .or_else(|| self.valid[h.0].iter().next().copied())
            .expect("a datum is always valid somewhere");
        plan.hops
            .push(hop(machine, owner, HOST, self.metas[h.0].size_bytes));
        plan
    }

    /// Applies a plan's coherence and byte-accounting effects: every hop
    /// destination gains a valid copy, and each physically moved hop is
    /// counted exactly once in the matching direction counter.
    pub fn commit(&mut self, plan: &TransferPlan) {
        for hop in &plan.hops {
            self.valid[plan.handle.0].insert(hop.to);
            if hop.to == HOST {
                self.bytes_to_host += hop.bytes;
            } else if hop.from == HOST {
                self.bytes_to_devices += hop.bytes;
            } else {
                self.bytes_peer += hop.bytes;
            }
        }
    }

    /// Records the access itself after its transfers committed: a write
    /// invalidates every other copy (MSI write-invalidate), a read leaves
    /// the reader holding a valid copy.
    pub fn finish_access(&mut self, h: HandleId, device: DeviceId, mode: AccessMode) {
        if mode.writes() {
            self.valid[h.0].clear();
            self.valid[h.0].insert(device);
        } else if mode.reads() {
            self.valid[h.0].insert(device);
        }
    }

    /// Plans, commits and completes one access under the given routing,
    /// returning the modeled uncontended transfer time.
    pub fn acquire_via(
        &mut self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
        routing: Routing,
    ) -> Duration {
        let plan = self.plan_acquire(machine, h, device, mode, routing);
        self.commit(&plan);
        self.finish_access(h, device, mode);
        plan.total()
    }

    /// [`acquire_via`](Self::acquire_via) with host-staged routing — the
    /// behaviour of PCIe-era systems the paper targets.
    pub fn acquire(
        &mut self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
    ) -> Duration {
        self.acquire_via(machine, h, device, mode, Routing::HostStaged)
    }

    /// Estimates the transfer time [`acquire_via`](Self::acquire_via) would
    /// charge, **without** changing coherence state. Equal by construction:
    /// both price the same [`plan_acquire`](Self::plan_acquire) plan.
    pub fn probe_acquire_via(
        &self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
        routing: Routing,
    ) -> Duration {
        self.plan_acquire(machine, h, device, mode, routing).total()
    }

    /// [`probe_acquire_via`](Self::probe_acquire_via) with host-staged
    /// routing. Schedulers use this to compare candidate devices.
    pub fn probe_acquire(
        &self,
        machine: &SimMachine,
        h: HandleId,
        device: DeviceId,
        mode: AccessMode,
    ) -> Duration {
        self.probe_acquire_via(machine, h, device, mode, Routing::HostStaged)
    }

    /// Plans and commits the transfer bringing `h` back to host memory.
    /// Returns the modeled time.
    pub fn flush_to_host(&mut self, machine: &SimMachine, h: HandleId) -> Duration {
        let plan = self.plan_flush(machine, h);
        self.commit(&plan);
        plan.total()
    }

    /// Total bytes moved host→device so far.
    pub fn bytes_to_devices(&self) -> f64 {
        self.bytes_to_devices
    }

    /// Total bytes moved device→host so far.
    pub fn bytes_to_host(&self) -> f64 {
        self.bytes_to_host
    }

    /// Total bytes moved directly device→device over peer interconnects.
    pub fn bytes_peer(&self) -> f64 {
        self.bytes_peer
    }
}

/// A hop from `from`'s memory into `to`'s, where `to` is [`HOST`] or shares
/// the host address space with `from` routed over its host route. Collapses
/// to a free bookkeeping hop when the source shares the host address space.
fn hop(machine: &SimMachine, from: DeviceId, to: DeviceId, size: f64) -> TransferHop {
    let endpoint = if to == HOST { from } else { to };
    match (endpoint != HOST)
        .then(|| machine.host_route(endpoint))
        .flatten()
    {
        Some(path) => TransferHop {
            from,
            to,
            links: path.links.clone(),
            duration: path.transfer_time(size),
            bytes: size,
        },
        None => TransferHop {
            from,
            to,
            links: Vec::new(),
            duration: Duration::ZERO,
            bytes: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_discover::synthetic;

    fn machine() -> SimMachine {
        SimMachine::from_platform(&synthetic::xeon_2gpu_testbed())
    }

    fn gpu0(m: &SimMachine) -> DeviceId {
        m.device_by_pu("gpu0").unwrap().id
    }

    fn gpu1(m: &SimMachine) -> DeviceId {
        m.device_by_pu("gpu1").unwrap().id
    }

    fn cpu0(m: &SimMachine) -> DeviceId {
        m.device_by_pu("cpu0").unwrap().id
    }

    #[test]
    fn access_mode_semantics() {
        assert!(AccessMode::Read.reads() && !AccessMode::Read.writes());
        assert!(!AccessMode::Write.reads() && AccessMode::Write.writes());
        assert!(AccessMode::ReadWrite.reads() && AccessMode::ReadWrite.writes());
        assert_eq!(AccessMode::parse("readwrite"), Some(AccessMode::ReadWrite));
        assert_eq!(AccessMode::parse(" READ "), Some(AccessMode::Read));
        assert_eq!(AccessMode::parse("x"), None);
    }

    #[test]
    fn first_gpu_read_pays_pcie_transfer() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 600e6);
        let t = reg.acquire(&m, h, gpu0(&m), AccessMode::Read);
        // 600 MB over 6 GB/s + 15us latency.
        assert!((t.seconds() - 0.100015).abs() < 1e-6, "{t}");
        // Second read is free: copy is valid.
        let t2 = reg.acquire(&m, h, gpu0(&m), AccessMode::Read);
        assert_eq!(t2, Duration::ZERO);
        assert_eq!(reg.bytes_to_devices(), 600e6);
    }

    #[test]
    fn cpu_reads_are_free() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 1e9);
        let t = reg.acquire(&m, h, cpu0(&m), AccessMode::Read);
        assert_eq!(t, Duration::ZERO); // shared address space, no link
    }

    #[test]
    fn write_invalidates_other_copies() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 1e6);
        reg.acquire(&m, h, gpu0(&m), AccessMode::Read);
        assert!(reg.is_valid_on(h, HOST));
        assert!(reg.is_valid_on(h, gpu0(&m)));
        // GPU1 writes: everything else invalid.
        reg.acquire(&m, h, gpu1(&m), AccessMode::Write);
        assert!(!reg.is_valid_on(h, HOST));
        assert!(!reg.is_valid_on(h, gpu0(&m)));
        assert!(reg.is_valid_on(h, gpu1(&m)));
    }

    #[test]
    fn pure_write_needs_no_transfer_in() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("C", 1e9);
        let t = reg.acquire(&m, h, gpu0(&m), AccessMode::Write);
        assert_eq!(t, Duration::ZERO);
        assert_eq!(reg.bytes_to_devices(), 0.0);
    }

    #[test]
    fn gpu_to_gpu_stages_through_host() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 600e6);
        reg.acquire(&m, h, gpu0(&m), AccessMode::Write); // data lives on gpu0 only
        let t = reg.acquire(&m, h, gpu1(&m), AccessMode::Read);
        // Two PCIe hops: gpu0→host, host→gpu1.
        assert!((t.seconds() - 2.0 * 0.100015).abs() < 1e-5, "{t}");
        assert!(reg.is_valid_on(h, HOST)); // staged copy remains valid
        assert!(reg.is_valid_on(h, gpu0(&m))); // read does not invalidate
        assert!(reg.is_valid_on(h, gpu1(&m)));
    }

    #[test]
    fn flush_to_host_once() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("C", 600e6);
        reg.acquire(&m, h, gpu0(&m), AccessMode::Write);
        let t = reg.flush_to_host(&m, h);
        assert!(t > Duration::ZERO);
        let t2 = reg.flush_to_host(&m, h);
        assert_eq!(t2, Duration::ZERO);
        assert_eq!(reg.bytes_to_host(), 600e6);
    }

    #[test]
    fn read_after_write_on_same_device_is_free() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("C", 1e9);
        reg.acquire(&m, h, gpu0(&m), AccessMode::Write);
        let t = reg.acquire(&m, h, gpu0(&m), AccessMode::ReadWrite);
        assert_eq!(t, Duration::ZERO);
    }

    fn nvlink_machine() -> SimMachine {
        SimMachine::from_platform(&synthetic::xeon_2gpu_nvlink_testbed())
    }

    #[test]
    fn peer_read_uses_nvlink_when_declared() {
        let m = nvlink_machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 600e6);
        reg.acquire_via(&m, h, gpu0(&m), AccessMode::Write, Routing::PeerToPeer);
        let probe = reg.probe_acquire_via(&m, h, gpu1(&m), AccessMode::Read, Routing::PeerToPeer);
        let t = reg.acquire_via(&m, h, gpu1(&m), AccessMode::Read, Routing::PeerToPeer);
        // One NVLink hop: 600 MB over 25 GB/s + 2 µs — not two PCIe hops.
        assert!((t.seconds() - 0.024002).abs() < 1e-6, "{t}");
        assert_eq!(probe, t);
        assert_eq!(reg.bytes_peer(), 600e6);
        assert_eq!(reg.bytes_to_host(), 0.0);
        assert_eq!(reg.bytes_to_devices(), 0.0);
        // A peer copy does not create a host copy.
        assert!(!reg.is_valid_on(h, HOST));
        assert!(reg.is_valid_on(h, gpu0(&m)));
        assert!(reg.is_valid_on(h, gpu1(&m)));
    }

    #[test]
    fn p2p_routing_falls_back_to_staging_without_peer_link() {
        let m = machine(); // plain testbed: no NVLink declared
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 600e6);
        reg.acquire_via(&m, h, gpu0(&m), AccessMode::Write, Routing::PeerToPeer);
        let t = reg.acquire_via(&m, h, gpu1(&m), AccessMode::Read, Routing::PeerToPeer);
        assert!((t.seconds() - 2.0 * 0.100015).abs() < 1e-5, "{t}");
        assert_eq!(reg.bytes_peer(), 0.0);
        assert_eq!(reg.bytes_to_host(), 600e6);
        assert_eq!(reg.bytes_to_devices(), 600e6);
    }

    #[test]
    fn shared_space_staging_counts_no_host_bytes() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 600e6);
        // Data written on a CPU core: it lives in the host address space,
        // so "staging" it back to host is free and moves zero bytes.
        reg.acquire(&m, h, cpu0(&m), AccessMode::Write);
        let t = reg.acquire(&m, h, gpu0(&m), AccessMode::Read);
        assert!((t.seconds() - 0.100015).abs() < 1e-6, "{t}");
        assert_eq!(reg.bytes_to_host(), 0.0);
        assert_eq!(reg.bytes_to_devices(), 600e6);
    }

    #[test]
    fn acquire_charges_each_hop_once() {
        let m = machine();
        let mut reg = DataRegistry::new();
        let h = reg.register("A", 600e6);
        reg.acquire(&m, h, gpu0(&m), AccessMode::Write);
        let plan = reg.plan_acquire(&m, h, gpu1(&m), AccessMode::Read, Routing::HostStaged);
        assert_eq!(plan.hops.len(), 2);
        assert_eq!(plan.hops[0].to, HOST);
        assert_eq!(plan.hops[1].from, HOST);
        // Both hops carry bytes over one PCIe link each — disjoint links.
        assert_eq!(plan.hops[0].bytes, 600e6);
        assert_eq!(plan.hops[1].bytes, 600e6);
        assert_eq!(plan.hops[0].links.len(), 1);
        assert_eq!(plan.hops[1].links.len(), 1);
        assert_ne!(plan.hops[0].links, plan.hops[1].links);
    }

    #[test]
    fn registry_bookkeeping() {
        let mut reg = DataRegistry::new();
        assert!(reg.is_empty());
        let a = reg.register("A", 10.0);
        let b = reg.register("B", 20.0);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.meta(a).label, "A");
        assert_eq!(reg.meta(b).size_bytes, 20.0);
        assert!(reg.is_valid_on(a, HOST));
    }
}
