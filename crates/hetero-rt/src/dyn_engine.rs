//! The event-driven execution engine: online scheduling in virtual time.
//!
//! The list engine ([`crate::sim_engine`]) places tasks in submission order,
//! which is how static schedules are constructed. Real runtimes like `StarPU`
//! work *online*: a task becomes schedulable the moment its last dependency
//! completes, and the scheduler chooses among all currently-ready tasks and
//! idle devices. This engine models that loop with a discrete-event queue
//! ([`simhw::events::EventQueue`]):
//!
//! 1. all dependency-free tasks enter the ready pool at t = 0;
//! 2. whenever a device is idle and the pool is non-empty, the policy picks
//!    a placement; transfers and compute are charged as in the list engine;
//! 3. each task completion is an event; firing it releases dependents into
//!    the pool and re-triggers step 2.
//!
//! Differences from the list engine are pure *scheduling-order* effects —
//! the same graphs, machines, coherence and cost models are used — which is
//! exactly what the list-vs-online ablation isolates.

use crate::data::{DataRegistry, HandleId};
use crate::graph::TaskGraph;
use crate::scheduler::{ScheduleContext, Scheduler};
use crate::sim_engine::{
    publish_sim_telemetry, run_plan_on_links, LinkUse, RtError, SimOptions, SimReport,
};
use crate::task::TaskId;
use simhw::energy::energy;
use simhw::events::EventQueue;
use simhw::machine::{DeviceId, SimMachine};
use simhw::resource::{BucketedTimeline, Timeline};
use simhw::time::{Duration, SimTime};
use simhw::trace::{SpanKind, Trace};
use std::collections::BTreeMap;

/// A ready-pool entry ordered for dispatch: higher priority first, then
/// submission order (StarPU-style). `BinaryHeap` is a max-heap, so `Ord`
/// treats the *smaller* task id as greater.
#[derive(PartialEq, Eq)]
struct ReadyKey {
    priority: i32,
    id: usize,
}

impl Ord for ReadyKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for ReadyKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-(codelet, device) dispatch table precomputed before the event loop:
/// the variant speedup when the device can run the codelet, `None` when it
/// cannot. Replaces the per-dispatch `variant_for` string matching (and
/// its software-platform `Vec` allocations) with an indexed load.
fn variant_table(graph: &TaskGraph, machine: &SimMachine) -> Vec<Vec<Option<f64>>> {
    graph
        .codelets
        .iter()
        .map(|codelet| {
            machine
                .devices
                .iter()
                .map(|d| {
                    let sw: Vec<&str> = d.software_platforms.iter().map(String::as_str).collect();
                    codelet.variant_for(&d.arch, &sw).map(|v| v.speedup)
                })
                .collect()
        })
        .collect()
}

/// Per-execution-group device eligibility, precomputed for every distinct
/// group name the graph mentions.
fn group_table<'g>(graph: &'g TaskGraph, machine: &SimMachine) -> BTreeMap<&'g str, Vec<bool>> {
    let mut table: BTreeMap<&str, Vec<bool>> = BTreeMap::new();
    for task in &graph.tasks {
        if let Some(g) = task.execution_group.as_deref() {
            table.entry(g).or_insert_with(|| {
                machine
                    .devices
                    .iter()
                    .map(|d| d.groups.iter().any(|dg| dg == g))
                    .collect()
            });
        }
    }
    table
}

/// Simulates the graph with online (event-driven) scheduling.
///
/// The [`Scheduler`] policy is consulted once per dispatched task, exactly
/// as in the list engine, but at the virtual time the dispatch happens and
/// considering only tasks that are actually ready.
pub fn simulate_dynamic(
    graph: &TaskGraph,
    machine: &SimMachine,
    scheduler: &mut dyn Scheduler,
    options: &SimOptions,
) -> Result<SimReport, RtError> {
    if machine.is_empty() {
        return Err(RtError::EmptyMachine);
    }

    let n = graph.len();
    let mut timelines: Vec<Timeline> = vec![Timeline::new(); machine.len()];
    let mut host_bus = Timeline::new();
    let mut data: DataRegistry = graph.data.clone();
    let mut trace = Trace::new();
    let mut assignments: Vec<(TaskId, DeviceId)> = Vec::with_capacity(n);

    let pipeline = options.pipeline;
    let routing = pipeline.routing();
    let mut link_timelines: Vec<BucketedTimeline> =
        vec![BucketedTimeline::default(); machine.links.len()];
    let mut link_use: Vec<LinkUse> = vec![LinkUse::default(); machine.links.len()];
    let mut link_trace = Trace::new();
    let mut handle_ready: BTreeMap<HandleId, SimTime> = BTreeMap::new();

    // Dispatch tables: variant speedups and group eligibility resolved
    // once, so the hot loop never touches strings.
    let variants = variant_table(graph, machine);
    let groups = group_table(graph, machine);
    let eligible = |task_idx: usize, dev: usize| -> bool {
        let task = &graph.tasks[task_idx];
        variants[task.codelet][dev].is_some()
            && task
                .execution_group
                .as_deref()
                .is_none_or(|g| groups[g][dev])
    };

    // Readiness bookkeeping: a max-heap keyed (priority desc, submission
    // order asc) replaces the re-sorted ready `Vec` — pushing a ready task
    // and popping the dispatch candidate are both O(log n), where the old
    // sort-plus-`remove(i)` scan was quadratic in the pool size.
    let mut pending_deps: Vec<usize> = (0..n)
        .map(|t| graph.dependencies(TaskId(t)).len())
        .collect();
    let mut ready: std::collections::BinaryHeap<ReadyKey> = graph
        .sources()
        .into_iter()
        .map(|t| ReadyKey {
            priority: graph.tasks[t.0].priority,
            id: t.0,
        })
        .collect();
    let mut skipped: Vec<ReadyKey> = Vec::new();
    let mut candidates: Vec<DeviceId> = Vec::with_capacity(machine.len());
    let mut completed = 0usize;

    /// Completion events carry the finished task.
    struct Completion(TaskId);
    let mut events: EventQueue<Completion> = EventQueue::new();

    // Pre-validate: every task must have at least one eligible device
    // (otherwise the run can never finish).
    for t in 0..n {
        if !(0..machine.len()).any(|d| eligible(t, d)) {
            let task = &graph.tasks[t];
            return Err(RtError::NoEligibleDevice {
                task: TaskId(t),
                codelet: graph.codelets[task.codelet].name.clone(),
                execution_group: task.execution_group.clone(),
            });
        }
    }

    // Dispatch loop: bind ready tasks to *idle* devices at the current
    // time (late binding — the defining property of online scheduling),
    // then advance to the next completion event. Tasks pop in (priority
    // desc, submission order) order; a task with no idle compatible device
    // is parked in `skipped` until the next event. Dispatching only makes
    // devices busier, so a popped-and-skipped task can never become
    // dispatchable within the same round — the old restart-the-scan loop
    // and this single pass produce identical dispatch sequences, and the
    // round ends early the moment no device is idle at all.
    loop {
        let now = events.now();
        let mut idle = (0..machine.len())
            .filter(|&d| timelines[d].free_at() <= now)
            .count();
        while idle > 0 {
            let Some(key) = ready.pop() else { break };
            let tid = TaskId(key.id);
            let task = &graph.tasks[tid.0];
            let codelet = &graph.codelets[task.codelet];
            // Idle, variant-compatible, group-compatible devices only.
            candidates.clear();
            candidates.extend(
                (0..machine.len())
                    .filter(|&d| timelines[d].free_at() <= now && eligible(tid.0, d))
                    .map(DeviceId),
            );
            if candidates.is_empty() {
                // No idle compatible device right now; revisit this task
                // at the next completion event.
                skipped.push(key);
                continue;
            }

            let free_at = |d: DeviceId| timelines[d.0].free_at();
            let speedup_of =
                |d: DeviceId| variants[task.codelet][d.0].expect("candidate implies variant");
            let est_finish = |d: DeviceId| {
                let dev = &machine.devices[d.0];
                let mut transfer = Duration::ZERO;
                for a in &task.accesses {
                    transfer = transfer + data.probe_acquire(machine, a.handle, d, a.mode);
                }
                let compute = Duration::new(task.flops / (dev.flops_dp * speedup_of(d)));
                let (_, end) = timelines[d.0].probe(now, transfer + compute);
                end
            };
            let transfer_cost = |d: DeviceId| {
                let mut t = Duration::ZERO;
                for a in &task.accesses {
                    t = t + data.probe_acquire_via(machine, a.handle, d, a.mode, routing);
                }
                t
            };
            let est_compute = |d: DeviceId| {
                let dev = &machine.devices[d.0];
                Duration::new(task.flops / (dev.flops_dp * speedup_of(d)))
            };
            let ctx = ScheduleContext {
                machine,
                task,
                codelet_name: &codelet.name,
                ready: now,
                candidates: &candidates,
                free_at: &free_at,
                est_finish: &est_finish,
                transfer_cost: &transfer_cost,
                est_compute: &est_compute,
            };
            let chosen = scheduler.pick(&ctx);

            // Charge the placement.
            let dev = &machine.devices[chosen.0];
            let speedup = variants[task.codelet][chosen.0].expect("candidate implies variant");
            let compute = Duration::new(task.flops / (dev.flops_dp * speedup));
            let end = if pipeline.is_active() {
                let mut arrival = SimTime::ZERO;
                for a in &task.accesses {
                    let plan = data.plan_acquire(machine, a.handle, chosen, a.mode, routing);
                    let floor = if pipeline.prefetch {
                        handle_ready
                            .get(&a.handle)
                            .copied()
                            .unwrap_or(SimTime::ZERO)
                    } else {
                        now
                    };
                    let done = run_plan_on_links(
                        &plan,
                        floor,
                        pipeline.link_contention,
                        &mut link_timelines,
                        &mut link_use,
                        &mut link_trace,
                        &format!("{}:{}:in", task.label, data.meta(a.handle).label),
                    );
                    data.commit(&plan);
                    data.finish_access(a.handle, chosen, a.mode);
                    arrival = arrival.max(done);
                }
                let (start, end) = timelines[chosen.0].reserve(now.max(arrival), compute);
                trace.record(chosen, task.label.clone(), SpanKind::Compute, start, end);
                end
            } else {
                let mut transfer = Duration::ZERO;
                for a in &task.accesses {
                    transfer = transfer + data.acquire(machine, a.handle, chosen, a.mode);
                }
                let dispatch_ready = if options.shared_host_bus && transfer > Duration::ZERO {
                    now.max(host_bus.free_at())
                } else {
                    now
                };
                let (start, end) = timelines[chosen.0].reserve(dispatch_ready, transfer + compute);
                if transfer > Duration::ZERO {
                    if options.shared_host_bus {
                        host_bus.reserve(start, transfer);
                    }
                    trace.record(
                        chosen,
                        format!("{}:in", task.label),
                        SpanKind::Transfer,
                        start,
                        start + transfer,
                    );
                }
                trace.record(
                    chosen,
                    task.label.clone(),
                    SpanKind::Compute,
                    start + transfer,
                    end,
                );
                end
            };
            for a in &task.accesses {
                if a.mode.writes() {
                    handle_ready.insert(a.handle, end);
                }
            }
            assignments.push((tid, chosen));
            events.schedule(end, Completion(tid));
            if timelines[chosen.0].free_at() > now {
                // The dispatch occupied a device; once none are idle the
                // rest of the pool cannot dispatch until the next event.
                idle -= 1;
            }
        }
        // Parked tasks return to the pool for the next round.
        ready.extend(skipped.drain(..));

        // Advance to the next completion.
        match events.pop() {
            None => break,
            Some((_, Completion(done))) => {
                completed += 1;
                for &dep in graph.dependents(done) {
                    pending_deps[dep.0] -= 1;
                    if pending_deps[dep.0] == 0 {
                        ready.push(ReadyKey {
                            priority: graph.tasks[dep.0].priority,
                            id: dep.0,
                        });
                    }
                }
            }
        }
    }
    debug_assert_eq!(completed, n, "all tasks completed");

    // Flush outputs, as in the list engine.
    if options.flush_outputs {
        let mut written: Vec<HandleId> = graph
            .tasks
            .iter()
            .flat_map(|t| t.accesses.iter())
            .filter(|a| a.mode.writes())
            .map(|a| a.handle)
            .collect();
        written.sort_unstable();
        written.dedup();
        for h in written {
            if pipeline.is_active() {
                let plan = data.plan_flush(machine, h);
                let floor = handle_ready.get(&h).copied().unwrap_or(SimTime::ZERO);
                run_plan_on_links(
                    &plan,
                    floor,
                    pipeline.link_contention,
                    &mut link_timelines,
                    &mut link_use,
                    &mut link_trace,
                    &format!("{}:out", data.meta(h).label),
                );
                data.commit(&plan);
            } else if let Some(owner) = data
                .valid_on(h)
                .iter()
                .find(|d| **d != crate::data::HOST)
                .copied()
            {
                let dur = data.flush_to_host(machine, h);
                if dur > Duration::ZERO {
                    let (s, e) = timelines[owner.0].reserve(SimTime::ZERO, dur);
                    trace.record(
                        owner,
                        format!("{}:out", data.meta(h).label),
                        SpanKind::Transfer,
                        s,
                        e,
                    );
                }
            }
        }
    }

    let makespan = trace.makespan().max(link_trace.makespan());
    publish_sim_telemetry("dynamic", machine, &link_use, makespan);
    let energy = energy(machine, &trace);
    Ok(SimReport {
        makespan,
        device_names: machine.devices.iter().map(|d| d.pu_id.clone()).collect(),
        assignments,
        energy,
        bytes_to_devices: data.bytes_to_devices(),
        bytes_to_host: data.bytes_to_host(),
        bytes_peer: data.bytes_peer(),
        perfmodel: crate::perfmodel::PerfModel::new(),
        policy: scheduler.name(),
        link_names: machine.links.iter().map(|l| l.name.clone()).collect(),
        link_trace,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{AccessMode, HandleId};
    use crate::scheduler::{EagerScheduler, HeftScheduler};
    use crate::task::{Codelet, DataAccess, Variant};
    use pdl_discover::synthetic;

    fn acc(h: HandleId, mode: AccessMode) -> DataAccess {
        DataAccess { handle: h, mode }
    }

    fn independent_graph(n: usize, flops: f64) -> TaskGraph {
        let mut g = TaskGraph::new();
        let c = g.add_codelet(Codelet::new("k").with_variant(Variant::new("x86")));
        for i in 0..n {
            let h = g.register_data(format!("d{i}"), 8.0);
            g.submit(
                c,
                format!("t{i}"),
                flops,
                vec![acc(h, AccessMode::Write)],
                None,
            );
        }
        g
    }

    #[test]
    fn completes_every_task_once() {
        let machine = SimMachine::from_platform(&synthetic::xeon_x5550_host());
        let g = independent_graph(33, 1e9);
        let r =
            simulate_dynamic(&g, &machine, &mut EagerScheduler, &SimOptions::default()).unwrap();
        assert_eq!(r.assignments.len(), 33);
        let mut ids: Vec<usize> = r.assignments.iter().map(|(t, _)| t.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 33);
    }

    #[test]
    fn matches_list_engine_on_independent_work() {
        // With no dependencies and a uniform machine, both engines produce
        // the same makespan.
        let machine = SimMachine::from_platform(&synthetic::xeon_x5550_host());
        let g = independent_graph(64, 9.576e9);
        let dynamic =
            simulate_dynamic(&g, &machine, &mut EagerScheduler, &SimOptions::default()).unwrap();
        let list =
            crate::sim_engine::simulate(&g, &machine, &mut EagerScheduler, &SimOptions::default())
                .unwrap();
        assert!(
            (dynamic.makespan.seconds() - list.makespan.seconds()).abs() < 1e-9,
            "dynamic {} vs list {}",
            dynamic.makespan,
            list.makespan
        );
    }

    #[test]
    fn respects_dependencies() {
        let machine = SimMachine::from_platform(&synthetic::xeon_x5550_host());
        let mut g = TaskGraph::new();
        let c = g.add_codelet(Codelet::new("k").with_variant(Variant::new("x86")));
        let h = g.register_data("chain", 8.0);
        for i in 0..5 {
            g.submit(
                c,
                format!("t{i}"),
                9.576e9,
                vec![acc(h, AccessMode::ReadWrite)],
                None,
            );
        }
        let r =
            simulate_dynamic(&g, &machine, &mut EagerScheduler, &SimOptions::default()).unwrap();
        // Pure chain: 5 seconds regardless of 8 cores.
        assert!((r.makespan.seconds() - 5.0).abs() < 1e-9);
        // Completion order in the trace respects the chain.
        let spans: Vec<_> = r
            .trace
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Compute)
            .collect();
        for w in spans.windows(2) {
            assert!(w[1].start >= w[0].end);
        }
    }

    #[test]
    fn online_and_list_engines_are_comparable() {
        // Online late binding is myopic (it only uses idle devices *now*),
        // list scheduling has lookahead (it may queue behind a fast busy
        // device). Neither dominates; both must produce valid schedules in
        // the same ballpark on a mixed chain + independent workload.
        let machine = SimMachine::from_platform(&synthetic::xeon_2gpu_testbed());
        let mut g = TaskGraph::new();
        let c = g.add_codelet(
            Codelet::new("k")
                .with_variant(Variant::new("x86"))
                .with_variant(Variant::new("gpu").requiring("Cuda")),
        );
        let chain = g.register_data("chain", 8.0);
        for i in 0..4 {
            g.submit(
                c,
                format!("chain{i}"),
                50e9,
                vec![acc(chain, AccessMode::ReadWrite)],
                None,
            );
        }
        for i in 0..16 {
            let h = g.register_data(format!("free{i}"), 8.0);
            g.submit(
                c,
                format!("free{i}"),
                10e9,
                vec![acc(h, AccessMode::Write)],
                None,
            );
        }
        let dynamic =
            simulate_dynamic(&g, &machine, &mut HeftScheduler, &SimOptions::default()).unwrap();
        let list =
            crate::sim_engine::simulate(&g, &machine, &mut HeftScheduler, &SimOptions::default())
                .unwrap();
        assert_eq!(dynamic.assignments.len(), list.assignments.len());
        let ratio = dynamic.makespan.seconds() / list.makespan.seconds();
        assert!(
            (0.5..=2.0).contains(&ratio),
            "dynamic {} vs list {} (ratio {ratio})",
            dynamic.makespan,
            list.makespan
        );
    }

    #[test]
    fn priorities_order_dispatch() {
        // One device, three ready tasks with distinct priorities: trace
        // order must follow priority, not submission order.
        let mut b = pdl_core::platform::Platform::builder("one");
        let m = b.master("host");
        let w = b.worker(m, "w0").unwrap();
        b.prop(
            w,
            pdl_core::property::Property::fixed("ARCHITECTURE", "x86"),
        );
        b.prop(
            w,
            pdl_core::property::Property::fixed("PEAK_GFLOPS_DP", "10")
                .with_unit(pdl_core::units::Unit::GigaFlopPerSec),
        );
        let machine = SimMachine::from_platform(&b.build().unwrap());

        let mut g = TaskGraph::new();
        let c = g.add_codelet(Codelet::new("k").with_variant(Variant::new("x86")));
        let mk = |g: &mut TaskGraph, name: &str, prio: i32| {
            let h = g.register_data(name.to_string(), 8.0);
            g.submit_prioritized(
                c,
                name.to_string(),
                1e9,
                vec![acc(h, AccessMode::Write)],
                None,
                prio,
            )
        };
        mk(&mut g, "low", -1);
        mk(&mut g, "high", 5);
        mk(&mut g, "mid", 2);
        let r =
            simulate_dynamic(&g, &machine, &mut EagerScheduler, &SimOptions::default()).unwrap();
        let order: Vec<&str> = r
            .trace
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Compute)
            .map(|s| s.label.as_str())
            .collect();
        assert_eq!(order, ["high", "mid", "low"]);
    }

    #[test]
    fn empty_machine_and_missing_variant_errors() {
        let machine = SimMachine::from_platform(&synthetic::xeon_x5550_host());
        let mut g = TaskGraph::new();
        let c = g.add_codelet(Codelet::new("spe-only").with_variant(Variant::new("spe")));
        let h = g.register_data("d", 8.0);
        g.submit(c, "t", 1.0, vec![acc(h, AccessMode::Write)], None);
        let err = simulate_dynamic(&g, &machine, &mut EagerScheduler, &SimOptions::default())
            .unwrap_err();
        assert!(matches!(err, RtError::NoEligibleDevice { .. }));
    }

    #[test]
    fn empty_graph_is_fine() {
        let machine = SimMachine::from_platform(&synthetic::xeon_x5550_host());
        let g = TaskGraph::new();
        let r =
            simulate_dynamic(&g, &machine, &mut EagerScheduler, &SimOptions::default()).unwrap();
        assert_eq!(r.makespan, SimTime::ZERO);
        assert!(r.assignments.is_empty());
    }
}
