//! # hetero-rt — a StarPU-style heterogeneous task runtime
//!
//! The paper's Cascabel compiler generates programs for the `StarPU`
//! runtime-system (§IV-D). This crate is the reproduction's substitute: the
//! same concepts — codelets with per-architecture implementation variants,
//! data handles managed across distinct memory spaces, pluggable scheduling
//! policies — with two execution engines:
//!
//! * [`sim_engine`] — list-scheduling in **virtual time** over a
//!   PDL-derived [`simhw::machine::SimMachine`]; regenerates the paper's
//!   Figure 5 without its hardware.
//! * [`thread_engine`] — **real** execution of task closures on a thread
//!   pool with identical dependency semantics, for functional testing.
//!
//! ```
//! use hetero_rt::prelude::*;
//!
//! let platform = pdl_discover::synthetic::xeon_2gpu_testbed();
//! let machine = simhw::machine::SimMachine::from_platform(&platform);
//!
//! let mut graph = TaskGraph::new();
//! let dgemm = graph.add_codelet(
//!     Codelet::new("dgemm")
//!         .with_variant(Variant::new("x86"))
//!         .with_variant(Variant::new("gpu").requiring("Cuda")),
//! );
//! let c = graph.register_data("C", 512e6);
//! graph.submit(dgemm, "tile", 1e12, vec![DataAccess {
//!     handle: c,
//!     mode: AccessMode::ReadWrite,
//! }], None);
//!
//! let report = simulate(&graph, &machine, &mut HeftScheduler, &SimOptions::default()).unwrap();
//! assert!(report.makespan.seconds() > 0.0);
//! ```
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod data;
pub mod dyn_engine;
pub mod graph;
pub mod perfmodel;
pub mod scheduler;
pub mod sharded_data;
pub mod sim_engine;
pub mod task;
pub mod thread_engine;
pub mod trace_bridge;

/// Commonly used items.
pub mod prelude {
    pub use crate::data::{AccessMode, DataRegistry, HandleId, Routing, TransferHop, TransferPlan};
    pub use crate::dyn_engine::simulate_dynamic;
    pub use crate::graph::TaskGraph;
    pub use crate::perfmodel::PerfModel;
    pub use crate::scheduler::{
        by_name, DmdaScheduler, EagerScheduler, EnergyAwareScheduler, HeftScheduler,
        RandomScheduler, RoundRobinScheduler, ScheduleContext, Scheduler,
    };
    pub use crate::sharded_data::ShardedDataRegistry;
    pub use crate::sim_engine::{simulate, RtError, SimOptions, SimReport, TransferPipeline};
    pub use crate::task::{Codelet, DataAccess, Task, TaskId, Variant};
    pub use crate::thread_engine::{
        from_graph, ExecReport, Placement, PlacementGroup, SingleQueueExecutor, ThreadTask,
        ThreadedExecutor, WorkerStats,
    };
    pub use crate::trace_bridge::sim_report_to_trace;
    pub use hetero_trace::TraceSink;
}
