//! Task graphs with implicit data-driven dependencies.
//!
//! Tasks are submitted in program order; the graph derives dependencies
//! from their data accesses exactly like `StarPU`'s sequential-consistency
//! mode: a task depends on the last writer of everything it reads (RAW) and
//! on all previous readers/writers of everything it writes (WAR/WAW).
//! "Explicit task outlining with parameter access-specifiers helps compilers
//! and runtime-systems to derive inter-task data-dependencies" (§IV-A).

use crate::data::{DataRegistry, HandleId};
use crate::task::{Codelet, DataAccess, Task, TaskId};
use std::collections::BTreeMap;

/// A complete submitted program: codelets, data and tasks with edges.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    /// Codelet table.
    pub codelets: Vec<Codelet>,
    /// Data registry (sizes + coherence state used at simulation time).
    pub data: DataRegistry,
    /// Tasks in submission order.
    pub tasks: Vec<Task>,
    /// dependencies\[t\] = tasks that must finish before `t` starts.
    dependencies: Vec<Vec<TaskId>>,
    /// dependents\[t\] = tasks waiting on `t`.
    dependents: Vec<Vec<TaskId>>,
    /// Last writer per handle (submission-time tracking).
    last_writer: BTreeMap<HandleId, TaskId>,
    /// Readers since the last write, per handle.
    readers_since_write: BTreeMap<HandleId, Vec<TaskId>>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty graph pre-sized for `tasks` submissions: the task,
    /// dependency and dependent vectors are allocated once up front, so
    /// million-task submission loops never re-grow them.
    pub fn with_capacity(tasks: usize) -> Self {
        TaskGraph {
            tasks: Vec::with_capacity(tasks),
            dependencies: Vec::with_capacity(tasks),
            dependents: Vec::with_capacity(tasks),
            ..Self::default()
        }
    }

    /// Registers a codelet, returning its index for task submission.
    pub fn add_codelet(&mut self, codelet: Codelet) -> usize {
        self.codelets.push(codelet);
        self.codelets.len() - 1
    }

    /// Registers a datum.
    pub fn register_data(&mut self, label: impl Into<String>, size_bytes: f64) -> HandleId {
        self.data.register(label, size_bytes)
    }

    /// Submits a task; dependencies are derived from `accesses` against all
    /// previously submitted tasks.
    pub fn submit(
        &mut self,
        codelet: usize,
        label: impl Into<String>,
        flops: f64,
        accesses: Vec<DataAccess>,
        execution_group: Option<String>,
    ) -> TaskId {
        self.submit_prioritized(codelet, label, flops, accesses, execution_group, 0)
    }

    /// [`submit`](Self::submit) with an explicit scheduling priority
    /// (higher = dispatched earlier by the online engine).
    pub fn submit_prioritized(
        &mut self,
        codelet: usize,
        label: impl Into<String>,
        flops: f64,
        accesses: Vec<DataAccess>,
        execution_group: Option<String>,
        priority: i32,
    ) -> TaskId {
        assert!(codelet < self.codelets.len(), "unknown codelet index");
        let id = TaskId(self.tasks.len());
        let mut deps: Vec<TaskId> = Vec::new();

        for a in &accesses {
            if a.mode.reads() {
                // RAW: depend on the last writer.
                if let Some(&w) = self.last_writer.get(&a.handle) {
                    deps.push(w);
                }
            }
            if a.mode.writes() {
                // WAW: depend on the last writer; WAR: on readers since.
                if let Some(&w) = self.last_writer.get(&a.handle) {
                    deps.push(w);
                }
                if let Some(readers) = self.readers_since_write.get(&a.handle) {
                    deps.extend(readers.iter().copied());
                }
            }
        }
        deps.sort_unstable();
        deps.dedup();
        deps.retain(|&d| d != id);

        // Update submission-time tracking.
        for a in &accesses {
            if a.mode.writes() {
                self.last_writer.insert(a.handle, id);
                self.readers_since_write.insert(a.handle, Vec::new());
            } else if a.mode.reads() {
                self.readers_since_write
                    .entry(a.handle)
                    .or_default()
                    .push(id);
            }
        }

        self.dependents.push(Vec::new());
        for &d in &deps {
            self.dependents[d.0].push(id);
        }
        self.dependencies.push(deps);
        self.tasks.push(Task {
            id,
            codelet,
            label: label.into(),
            flops,
            accesses,
            execution_group,
            priority,
        });
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Tasks `t` must wait for.
    pub fn dependencies(&self, t: TaskId) -> &[TaskId] {
        &self.dependencies[t.0]
    }

    /// Tasks waiting on `t`.
    pub fn dependents(&self, t: TaskId) -> &[TaskId] {
        &self.dependents[t.0]
    }

    /// Tasks with no dependencies (sources).
    pub fn sources(&self) -> Vec<TaskId> {
        (0..self.tasks.len())
            .map(TaskId)
            .filter(|t| self.dependencies[t.0].is_empty())
            .collect()
    }

    /// A topological order (submission order is always one, since edges only
    /// point backwards in submission time).
    pub fn topological_order(&self) -> Vec<TaskId> {
        (0..self.tasks.len()).map(TaskId).collect()
    }

    /// Total FLOPs over all tasks.
    pub fn total_flops(&self) -> f64 {
        self.tasks.iter().map(|t| t.flops).sum()
    }

    /// Critical-path FLOPs: the heaviest dependency chain. A lower bound on
    /// any schedule's compute span given infinite parallelism.
    pub fn critical_path_flops(&self) -> f64 {
        let mut best = vec![0.0f64; self.tasks.len()];
        for t in 0..self.tasks.len() {
            let deps_max = self.dependencies[t]
                .iter()
                .map(|d| best[d.0])
                .fold(0.0f64, f64::max);
            best[t] = deps_max + self.tasks[t].flops;
        }
        best.into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::AccessMode;
    use crate::task::Variant;

    fn graph_with_codelet() -> (TaskGraph, usize) {
        let mut g = TaskGraph::new();
        let c = g.add_codelet(Codelet::new("k").with_variant(Variant::new("x86")));
        (g, c)
    }

    fn acc(h: HandleId, mode: AccessMode) -> DataAccess {
        DataAccess { handle: h, mode }
    }

    #[test]
    fn raw_dependency() {
        let (mut g, c) = graph_with_codelet();
        let a = g.register_data("a", 8.0);
        let t0 = g.submit(c, "w", 1.0, vec![acc(a, AccessMode::Write)], None);
        let t1 = g.submit(c, "r", 1.0, vec![acc(a, AccessMode::Read)], None);
        assert_eq!(g.dependencies(t1), &[t0]);
        assert_eq!(g.dependents(t0), &[t1]);
    }

    #[test]
    fn war_and_waw_dependencies() {
        let (mut g, c) = graph_with_codelet();
        let a = g.register_data("a", 8.0);
        let w1 = g.submit(c, "w1", 1.0, vec![acc(a, AccessMode::Write)], None);
        let r1 = g.submit(c, "r1", 1.0, vec![acc(a, AccessMode::Read)], None);
        let r2 = g.submit(c, "r2", 1.0, vec![acc(a, AccessMode::Read)], None);
        let w2 = g.submit(c, "w2", 1.0, vec![acc(a, AccessMode::Write)], None);
        // w2 waits on the last writer (WAW) and all readers since (WAR).
        assert_eq!(g.dependencies(w2), &[w1, r1, r2]);
    }

    #[test]
    fn independent_reads_run_in_parallel() {
        let (mut g, c) = graph_with_codelet();
        let a = g.register_data("a", 8.0);
        let r1 = g.submit(c, "r1", 1.0, vec![acc(a, AccessMode::Read)], None);
        let r2 = g.submit(c, "r2", 1.0, vec![acc(a, AccessMode::Read)], None);
        assert!(g.dependencies(r1).is_empty());
        assert!(g.dependencies(r2).is_empty());
        assert_eq!(g.sources(), vec![r1, r2]);
    }

    #[test]
    fn readwrite_chains_serialize() {
        let (mut g, c) = graph_with_codelet();
        let acc_h = g.register_data("acc", 8.0);
        let t0 = g.submit(c, "t0", 1.0, vec![acc(acc_h, AccessMode::ReadWrite)], None);
        let t1 = g.submit(c, "t1", 1.0, vec![acc(acc_h, AccessMode::ReadWrite)], None);
        let t2 = g.submit(c, "t2", 1.0, vec![acc(acc_h, AccessMode::ReadWrite)], None);
        assert_eq!(g.dependencies(t1), &[t0]);
        assert_eq!(g.dependencies(t2), &[t1]);
    }

    #[test]
    fn duplicate_deps_merged() {
        let (mut g, c) = graph_with_codelet();
        let a = g.register_data("a", 8.0);
        let b = g.register_data("b", 8.0);
        let w = g.submit(
            c,
            "w",
            1.0,
            vec![acc(a, AccessMode::Write), acc(b, AccessMode::Write)],
            None,
        );
        let r = g.submit(
            c,
            "r",
            1.0,
            vec![acc(a, AccessMode::Read), acc(b, AccessMode::Read)],
            None,
        );
        assert_eq!(g.dependencies(r), &[w]); // one edge, not two
    }

    #[test]
    fn dgemm_tile_pattern() {
        // C[i][j] accumulated over k: tasks on the same C tile serialize,
        // different C tiles are independent.
        let (mut g, c) = graph_with_codelet();
        let c00 = g.register_data("C00", 8.0);
        let c01 = g.register_data("C01", 8.0);
        let a0 = g.register_data("A0", 8.0);
        let b0 = g.register_data("B0", 8.0);
        let reads = |h| acc(h, AccessMode::Read);
        let t_00_k0 = g.submit(
            c,
            "c00k0",
            1.0,
            vec![reads(a0), reads(b0), acc(c00, AccessMode::ReadWrite)],
            None,
        );
        let t_00_k1 = g.submit(
            c,
            "c00k1",
            1.0,
            vec![reads(a0), reads(b0), acc(c00, AccessMode::ReadWrite)],
            None,
        );
        let t_01_k0 = g.submit(
            c,
            "c01k0",
            1.0,
            vec![reads(a0), reads(b0), acc(c01, AccessMode::ReadWrite)],
            None,
        );
        assert_eq!(g.dependencies(t_00_k1), &[t_00_k0]);
        assert!(g.dependencies(t_01_k0).is_empty());
    }

    #[test]
    fn critical_path_and_totals() {
        let (mut g, c) = graph_with_codelet();
        let a = g.register_data("a", 8.0);
        let b = g.register_data("b", 8.0);
        // Chain on `a` of 3 × 10 flops; independent task on `b` of 5.
        for i in 0..3 {
            g.submit(
                c,
                format!("chain{i}"),
                10.0,
                vec![acc(a, AccessMode::ReadWrite)],
                None,
            );
        }
        g.submit(c, "solo", 5.0, vec![acc(b, AccessMode::Write)], None);
        assert_eq!(g.total_flops(), 35.0);
        assert_eq!(g.critical_path_flops(), 30.0);
    }

    #[test]
    #[should_panic(expected = "unknown codelet")]
    fn bad_codelet_index_panics() {
        let mut g = TaskGraph::new();
        g.submit(0, "x", 1.0, vec![], None);
    }

    #[test]
    fn topological_order_is_submission_order() {
        let (mut g, c) = graph_with_codelet();
        let a = g.register_data("a", 8.0);
        for i in 0..5 {
            g.submit(
                c,
                format!("t{i}"),
                1.0,
                vec![acc(a, AccessMode::ReadWrite)],
                None,
            );
        }
        let order = g.topological_order();
        for (pos, t) in order.iter().enumerate() {
            for d in g.dependencies(*t) {
                let dpos = order.iter().position(|x| x == d).unwrap();
                assert!(dpos < pos);
            }
        }
    }
}
