//! Bridges virtual-time simulation reports into [`hetero_trace`] form.
//!
//! The [`sim_engine`](crate::sim_engine) and
//! [`dyn_engine`](crate::dyn_engine) record occupancy spans in virtual
//! seconds on a [`simhw`] machine. This module converts a
//! [`SimReport`](crate::sim_engine::SimReport) into a
//! [`RunTrace`] — one lane per device, labeled with the device's PDL PU id
//! and first logic group, timestamps in **virtual nanoseconds**
//! ([`TimeUnit::VirtualNanos`]) — so the same Chrome-trace and run-summary
//! exporters serve real and simulated runs alike.
//!
//! When the report carries a link trace (pipelined transfer mode, see
//! [`TransferPipeline`](crate::sim_engine::TransferPipeline)), each
//! interconnect link gets its own lane in the `"links"` group, so the
//! Chrome export shows transfers overlapping compute on separate rows.
//! Lanes serialize occupancy, so a link whose transfers overlap (the
//! contention-free model lets them) is split into numbered channels
//! (`"PCIe:host-gpu0 #2"`, …) by greedy interval coloring.

use crate::sim_engine::SimReport;
use hetero_trace::{
    EventKind, LaneLabel, RunTrace, TaskInfo, TimeUnit, TraceEvent, TraceMeta, WorkerTrace,
};
use simhw::machine::SimMachine;
use simhw::trace::SpanKind;

/// Virtual seconds → virtual nanoseconds (rounded).
fn virtual_ns(seconds: f64) -> u64 {
    (seconds * 1e9).round().max(0.0) as u64
}

/// Converts a simulation report into a [`RunTrace`] in virtual time.
///
/// Every recorded span (compute *and* transfer) becomes one task of the
/// trace, with `category` `"task"` or `"transfer"`; lane labels come from
/// the machine's devices (PU id + first logic group). The prelude holds a
/// single `simulate` phase spanning the whole makespan.
pub fn sim_report_to_trace(report: &SimReport, machine: &SimMachine) -> RunTrace {
    let mut lanes: Vec<LaneLabel> = machine
        .devices
        .iter()
        .map(|d| LaneLabel {
            name: d.pu_id.clone(),
            group: d.groups.first().cloned(),
        })
        .collect();

    // Each span is a task of its own: the sim trace has no stable task
    // indices, and transfers have none at all.
    let mut tasks: Vec<TaskInfo> = Vec::with_capacity(report.trace.spans().len());
    let mut per_lane: Vec<Vec<TraceEvent>> = vec![Vec::new(); machine.devices.len().max(1)];
    for span in report.trace.spans() {
        let idx = tasks.len() as u32;
        let device = span.device.0.min(per_lane.len() - 1);
        tasks.push(TaskInfo {
            label: span.label.clone(),
            category: match span.kind {
                SpanKind::Compute => "task".to_string(),
                SpanKind::Transfer => "transfer".to_string(),
            },
            group: machine
                .devices
                .get(span.device.0)
                .and_then(|d| d.groups.first().cloned()),
        });
        per_lane[device].push(TraceEvent {
            ts: virtual_ns(span.start.seconds()),
            kind: EventKind::TaskStart { task: idx },
        });
        per_lane[device].push(TraceEvent {
            ts: virtual_ns(span.end.seconds()),
            kind: EventKind::TaskEnd { task: idx },
        });
    }

    // Link lanes follow the device lanes. The link trace indexes a
    // separate device-id space (machine.links), and — unlike device
    // timelines — its spans may overlap when link contention is off, so
    // each link is split into as few serialized channels as cover its
    // spans (greedy interval coloring over start-sorted spans).
    let mut by_link: std::collections::BTreeMap<usize, Vec<&simhw::trace::Span>> =
        std::collections::BTreeMap::new();
    for span in report.link_trace.spans() {
        by_link.entry(span.device.0).or_default().push(span);
    }
    for (link, mut spans) in by_link {
        spans.sort_by_key(|s| (s.start, s.end));
        let mut channels: Vec<(simhw::time::SimTime, Vec<&simhw::trace::Span>)> = Vec::new();
        for span in spans {
            match channels.iter_mut().find(|(end, _)| *end <= span.start) {
                Some((end, ch)) => {
                    *end = span.end;
                    ch.push(span);
                }
                None => channels.push((span.end, vec![span])),
            }
        }
        let name = report
            .link_names
            .get(link)
            .cloned()
            .unwrap_or_else(|| format!("link{link}"));
        for (channel, (_, ch)) in channels.into_iter().enumerate() {
            lanes.push(LaneLabel {
                name: if channel == 0 {
                    name.clone()
                } else {
                    format!("{name} #{}", channel + 1)
                },
                group: Some("links".to_string()),
            });
            let mut events = Vec::with_capacity(ch.len() * 2);
            for span in ch {
                let idx = tasks.len() as u32;
                tasks.push(TaskInfo {
                    label: span.label.clone(),
                    category: "transfer".to_string(),
                    group: Some("links".to_string()),
                });
                events.push(TraceEvent {
                    ts: virtual_ns(span.start.seconds()),
                    kind: EventKind::TaskStart { task: idx },
                });
                events.push(TraceEvent {
                    ts: virtual_ns(span.end.seconds()),
                    kind: EventKind::TaskEnd { task: idx },
                });
            }
            per_lane.push(events);
        }
    }

    // Device timelines serialize occupancy, so sorting by timestamp with
    // ends before starts at shared boundaries restores a valid per-lane
    // event order.
    for events in &mut per_lane {
        events.sort_by_key(|e| {
            (
                e.ts,
                match e.kind {
                    EventKind::TaskEnd { .. } => 0u8,
                    _ => 1u8,
                },
            )
        });
    }

    let makespan_ns = virtual_ns(report.makespan.seconds());
    RunTrace {
        meta: TraceMeta {
            platform: Some(machine.name.clone()),
            lanes,
            tasks,
            time_unit: TimeUnit::VirtualNanos,
        },
        prelude: vec![
            TraceEvent {
                ts: 0,
                kind: EventKind::PhaseStart {
                    name: "simulate".to_string(),
                },
            },
            TraceEvent {
                ts: makespan_ns,
                kind: EventKind::PhaseEnd {
                    name: "simulate".to_string(),
                },
            },
        ],
        workers: per_lane
            .into_iter()
            .enumerate()
            .map(|(worker, events)| WorkerTrace {
                worker,
                events,
                overwritten: 0,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::AccessMode;
    use crate::graph::TaskGraph;
    use crate::scheduler::HeftScheduler;
    use crate::sim_engine::{simulate, SimOptions, TransferPipeline};
    use crate::task::{Codelet, DataAccess, Variant};

    #[test]
    fn bridged_trace_validates_and_labels_devices() {
        let platform = pdl_discover::synthetic::xeon_2gpu_testbed();
        let machine = SimMachine::from_platform(&platform);
        let mut graph = TaskGraph::new();
        let dgemm = graph.add_codelet(
            Codelet::new("dgemm")
                .with_variant(Variant::new("x86"))
                .with_variant(Variant::new("gpu").requiring("Cuda")),
        );
        let c = graph.register_data("C", 64e6);
        for i in 0..6 {
            graph.submit(
                dgemm,
                format!("tile{i}"),
                1e10,
                vec![DataAccess {
                    handle: c,
                    mode: AccessMode::Read,
                }],
                None,
            );
        }
        let report = simulate(&graph, &machine, &mut HeftScheduler, &SimOptions::default())
            .expect("simulation runs");

        let trace = sim_report_to_trace(&report, &machine);
        assert_eq!(trace.meta.time_unit, TimeUnit::VirtualNanos);
        assert_eq!(trace.meta.lanes.len(), machine.devices.len());
        assert_eq!(trace.meta.tasks.len(), report.trace.spans().len());
        assert!(trace
            .meta
            .lanes
            .iter()
            .zip(&machine.devices)
            .all(|(lane, dev)| lane.name == dev.pu_id));
        let stats = trace.validate().expect("bridged trace is well-formed");
        assert_eq!(stats.tasks as usize, report.trace.spans().len());
        // Busy time per lane reconciles with the sim's own accounting.
        let busy = report.trace.busy_by_device();
        for (d, ns) in stats.busy_ns.iter().enumerate() {
            let expected = busy
                .get(&simhw::machine::DeviceId(d))
                .map(|dur| virtual_ns(dur.seconds()))
                .unwrap_or(0);
            assert_eq!(*ns, expected, "device {d} busy mismatch");
        }
    }

    #[test]
    fn link_lanes_split_into_channels_and_validate() {
        let platform = pdl_discover::synthetic::xeon_2gpu_testbed();
        let machine = SimMachine::from_platform(&platform);
        let mut graph = TaskGraph::new();
        let k = graph
            .add_codelet(Codelet::new("k").with_variant(Variant::new("gpu").requiring("Cuda")));
        for i in 0..3 {
            let h = graph.register_data(format!("in{i}"), 600e6);
            graph.submit(
                k,
                format!("t{i}"),
                1e10,
                vec![DataAccess {
                    handle: h,
                    mode: AccessMode::Read,
                }],
                None,
            );
        }
        // Contention off: transfers on one link may overlap, forcing the
        // bridge to split that link into numbered channels.
        let report = simulate(
            &graph,
            &machine,
            &mut HeftScheduler,
            &SimOptions {
                pipeline: TransferPipeline {
                    prefetch: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("simulation runs");
        assert!(!report.link_trace.spans().is_empty());

        let trace = sim_report_to_trace(&report, &machine);
        let link_lanes: Vec<&LaneLabel> = trace
            .meta
            .lanes
            .iter()
            .filter(|l| l.group.as_deref() == Some("links"))
            .collect();
        assert!(!link_lanes.is_empty());
        // Link lanes are named after PDL interconnects.
        assert!(link_lanes.iter().any(|l| l.name.starts_with("PCIe:")));
        // Every lane — devices and link channels — survives validation,
        // i.e. channel splitting serialized the overlapping spans.
        assert_eq!(trace.meta.lanes.len(), trace.workers.len());
        let stats = trace.validate().expect("link lanes are well-formed");
        assert_eq!(
            stats.tasks as usize,
            report.trace.spans().len() + report.link_trace.spans().len()
        );
    }
}
